//! Facade API suite: the whole lifecycle — build → query → insert/delete →
//! rebuild → re-query — exercised through [`Hopi`] and [`OnlineHopi`] only,
//! including the typed error paths of [`HopiError`].

use hopi::graph::TransitiveClosure;
use hopi::prelude::*;

fn library() -> Hopi {
    Hopi::builder()
        .parse([
            (
                "survey",
                r#"<article>
                     <related>
                       <cite xlink:href="systems"/>
                       <cite xlink:href="theory#thm1"/>
                     </related>
                   </article>"#,
            ),
            (
                "systems",
                r#"<article><body><sec id="eval"/></body><cite xlink:href="theory"/></article>"#,
            ),
            ("theory", r#"<article><thm id="thm1"/></article>"#),
        ])
        .expect("fixture parses")
}

fn oracle_check(hopi: &Hopi) {
    let g = hopi.collection().element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
        for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
            assert_eq!(hopi.connected(u, v), tc.contains(u, v), "pair ({u},{v})");
        }
    }
}

#[test]
fn build_query_maintain_rebuild_requery() {
    let mut hopi = library();
    oracle_check(&hopi);

    // Query.
    let survey = hopi.resolve("survey", "").unwrap();
    let thm = hopi.resolve("theory", "thm1").unwrap();
    assert!(hopi.connected(survey, thm));
    assert_eq!(hopi.query("//article//thm").unwrap(), vec![thm]);

    // Insert a document through the XML fast path (href resolved against
    // the collection), then through the explicit-links path.
    let review = hopi
        .insert_xml(
            "review",
            r#"<article><cite xlink:href="survey"/></article>"#,
        )
        .unwrap();
    let review_root = hopi.collection().global_id(review, 0);
    assert!(hopi.connected(review_root, thm), "review → survey → theory");
    oracle_check(&hopi);

    let mut appendix = XmlDocument::new("appendix", "article");
    let cite = appendix.add_element(0, "cite");
    let appendix_id = hopi
        .insert_document(
            appendix,
            &DocumentLinks {
                outgoing: vec![(cite, survey)],
                incoming: vec![],
            },
        )
        .unwrap();
    oracle_check(&hopi);

    // Link churn.
    let theory_root = hopi.resolve("theory", "").unwrap();
    let appendix_root = hopi.collection().global_id(appendix_id, 0);
    hopi.insert_link(theory_root, appendix_root).unwrap();
    assert!(hopi.connected(survey, appendix_root), "cycle closed");
    oracle_check(&hopi);
    hopi.delete_link(theory_root, appendix_root).unwrap();
    assert!(!hopi.connected(survey, appendix_root));
    oracle_check(&hopi);

    // Delete, rebuild, re-query.
    hopi.delete_document(review).unwrap();
    oracle_check(&hopi);
    let churned = hopi.stats().cover_entries;
    let report = hopi.rebuild().clone();
    assert_eq!(report.cover_size, hopi.stats().cover_entries);
    assert!(hopi.stats().cover_entries <= churned);
    oracle_check(&hopi);
    assert_eq!(hopi.query("//article//thm").unwrap(), vec![thm]);
    assert!(hopi.query("//review//*").unwrap().is_empty());
}

#[test]
fn error_paths_are_typed() {
    let mut hopi = library();

    // Malformed path expressions.
    for bad in ["", "article", "//", "//a///b"] {
        assert!(
            matches!(hopi.query(bad), Err(HopiError::Path(_))),
            "query({bad:?}) should be a path error"
        );
    }

    // Unknown document ids (never existed / already deleted).
    assert!(matches!(
        hopi.delete_document(77),
        Err(HopiError::UnknownDocument(77))
    ));
    let theory = hopi.resolve("theory", "").unwrap();
    let theory_doc = hopi.collection().doc_of(theory).unwrap();
    hopi.delete_document(theory_doc).unwrap();
    assert!(matches!(
        hopi.delete_document(theory_doc),
        Err(HopiError::UnknownDocument(_))
    ));
    assert!(matches!(
        hopi.modify_document(
            theory_doc,
            XmlDocument::new("x", "r"),
            &DocumentLinks::default()
        ),
        Err(HopiError::UnknownDocument(_))
    ));

    // Unresolvable refs: by name and in inserted XML.
    assert!(matches!(
        hopi.resolve("no-such-doc", ""),
        Err(HopiError::UnresolvedRef { .. })
    ));
    assert!(matches!(
        hopi.resolve("survey", "no-such-anchor"),
        Err(HopiError::UnresolvedRef { .. })
    ));
    let err = hopi
        .insert_xml("orphan", r#"<a><cite xlink:href="missing#x"/></a>"#)
        .unwrap_err();
    assert!(matches!(err, HopiError::UnresolvedRef { .. }), "{err}");
    assert!(
        hopi.resolve("orphan", "").is_err(),
        "failed insert must not leave a document behind"
    );

    // Malformed XML.
    assert!(matches!(
        hopi.insert_xml("broken", "<a><b></a>"),
        Err(HopiError::Xml(_))
    ));
    // Duplicate names are rejected before parsing.
    assert!(matches!(
        hopi.insert_xml("survey", "<a/>"),
        Err(HopiError::DuplicateDocumentName(_))
    ));

    // Link endpoint validation.
    let survey = hopi.resolve("survey", "").unwrap();
    assert!(matches!(
        hopi.insert_link(survey, 9_999),
        Err(HopiError::UnknownElement(9_999))
    ));
    assert!(matches!(
        hopi.insert_link(survey, survey + 1),
        Err(HopiError::SameDocumentLink { .. })
    ));
    assert!(matches!(
        hopi.delete_link(survey, survey + 1),
        Err(HopiError::UnknownLink { .. })
    ));
    let mut doc = XmlDocument::new("tiny", "r");
    doc.add_element(0, "s");
    assert!(matches!(
        hopi.insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(9, survey)],
                incoming: vec![],
            }
        ),
        Err(HopiError::InvalidLocalElement { local: 9, .. })
    ));

    // Distance queries without distance_aware(true).
    assert!(matches!(
        hopi.distance(0, 1),
        Err(HopiError::DistanceDisabled)
    ));
    assert!(matches!(
        hopi.query_ranked("//a//b"),
        Err(HopiError::DistanceDisabled)
    ));

    // After all those rejections the engine is still consistent.
    oracle_check(&hopi);
}

#[test]
fn query_options_tune_evaluation() {
    let tuned = Hopi::builder()
        .probe_budget(1)
        .query_options(QueryOptions {
            probe_budget: 1,
            top_k: Some(1),
        })
        .distance_aware(true)
        .parse([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s><x/></s></r>"#),
        ])
        .unwrap();
    let wide = Hopi::builder()
        .distance_aware(true)
        .parse([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s><x/></s></r>"#),
        ])
        .unwrap();
    // Budgets flip the probe/enumerate strategy but never the answer.
    for q in ["//r//x", "//cite//*", "/r/cite"] {
        assert_eq!(tuned.query(q).unwrap(), wide.query(q).unwrap(), "{q}");
    }
    // top_k truncates ranked retrieval.
    assert_eq!(tuned.query_ranked("//r//*").unwrap().len(), 1);
    assert!(wide.query_ranked("//r//*").unwrap().len() > 1);
}

#[test]
fn online_engine_full_lifecycle() {
    let online = OnlineHopi::new(library());
    let (survey, thm) = online.read(|h| {
        (
            h.resolve("survey", "").unwrap(),
            h.resolve("theory", "thm1").unwrap(),
        )
    });
    assert!(online.connected(survey, thm));
    assert_eq!(online.query("//article//thm").unwrap(), vec![thm]);

    // Typed errors cross the concurrent boundary too.
    assert!(matches!(
        online.query("not a path"),
        Err(HopiError::Path(_))
    ));
    assert!(matches!(
        online.delete_document(99),
        Err(HopiError::UnknownDocument(99))
    ));
    assert!(matches!(
        online.distance(0, 1),
        Err(HopiError::DistanceDisabled)
    ));

    // Concurrent readers while a writer inserts and deletes.
    let n = online.read(|h| h.collection().elem_id_bound() as u32);
    std::thread::scope(|scope| {
        for t in 0..3 {
            let online = online.clone();
            scope.spawn(move || {
                for i in 0..400u32 {
                    let u = (i * 37 + t) % n;
                    let v = (i * 61 + t * 13) % n;
                    let _ = online.connected(u, v);
                }
            });
        }
        let writer = online.clone();
        scope.spawn(move || {
            let d = writer
                .insert_xml("note", r#"<note><cite xlink:href="survey"/></note>"#)
                .unwrap();
            writer
                .insert_link(thm, writer.read(|h| h.collection().global_id(d, 0)))
                .unwrap();
            writer.delete_document(d).unwrap();
        });
    });
    online.read(oracle_check);

    // Background rebuild with concurrent updates lands in an exact state.
    let handle = online.rebuild_in_background();
    let mid = online
        .insert_xml("mid-rebuild", r#"<m><cite xlink:href="systems"/></m>"#)
        .unwrap();
    let report = handle.join().expect("rebuild thread");
    assert!(report.cover_size > 0);
    let mid_root = online.read(|h| h.collection().global_id(mid, 0));
    let systems = online.read(|h| h.resolve("systems", "").unwrap());
    assert!(online.connected(mid_root, systems));
    online.read(oracle_check);
}

#[test]
fn rebuild_recovers_churned_cover() {
    let mut hopi = Hopi::build({
        let mut c = Collection::new();
        for i in 0..8 {
            let mut d = XmlDocument::new(format!("d{i}"), "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        c
    })
    .unwrap();
    // Churn through the greedy §6.1 insertion to degrade the cover.
    for i in 0..8u32 {
        for j in 0..8u32 {
            if i != j && (i + j) % 3 == 0 {
                let from = hopi.collection().global_id(i, 1);
                let to = hopi.collection().global_id(j, 0);
                hopi.insert_link(from, to).unwrap();
            }
        }
    }
    oracle_check(&hopi);
    let churned = hopi.degradation();
    assert!(churned.entries > 0);
    assert!(hopi.should_rebuild(&RebuildPolicy {
        max_entries_per_element: 0.0
    }));
    hopi.rebuild();
    assert!(
        hopi.stats().cover_entries <= churned.entries,
        "rebuild should not grow the cover"
    );
    oracle_check(&hopi);
}

#[test]
fn distance_cover_tracks_incremental_inserts() {
    let mut hopi = Hopi::builder()
        .distance_aware(true)
        .parse([
            ("a", r#"<r><s/><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><sec><p/></sec></r>"#),
        ])
        .unwrap();

    // Insert a document with both link directions, then a standalone link.
    let mut doc = XmlDocument::new("c", "r");
    let child = doc.add_element(0, "x");
    doc.add_element(child, "y");
    let a_root = hopi.resolve("a", "").unwrap();
    let b_root = hopi.resolve("b", "").unwrap();
    let c = hopi
        .insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(child, b_root)],
                incoming: vec![(a_root, 0)],
            },
        )
        .unwrap();
    let c_root = hopi.collection().global_id(c, 0);
    hopi.insert_link(b_root + 1, c_root).unwrap(); // b/sec -> c

    // Every pairwise distance must match a freshly computed closure.
    let dc = hopi::graph::DistanceClosure::from_graph(&hopi.collection().element_graph());
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(hopi.distance(u, v).unwrap(), dc.dist(u, v), "dist({u},{v})");
        }
    }

    // Ranked retrieval rides the maintained cover.
    let ranked = hopi.query_ranked("//r//y").unwrap();
    assert!(!ranked.is_empty());
}

#[test]
fn query_plans_are_explained_and_counted() {
    let hopi = library();
    let snap = hopi.snapshot();

    // EXPLAIN returns the same answer plus a per-step plan.
    let (result, report) = hopi.query_explained("//article//thm").unwrap();
    assert_eq!(result, hopi.query("//article//thm").unwrap());
    assert_eq!(report.steps.len(), 2);
    assert!(report.steps[1].plan.is_some(), "connection step has a plan");
    let parsed = hopi::query::parse_path("//article//thm").unwrap();
    assert!(report.render(&parsed).contains("strategy="));

    // Snapshot queries tally into the engine-shared plan counters,
    // visible through SnapshotStats.
    let before = snap.stats().plan.total();
    snap.query("//article//thm").unwrap();
    let (snap_result, _) = snap.query_explained("//article//thm").unwrap();
    assert_eq!(snap_result, result);
    let after = snap.stats().plan.total();
    assert!(
        after >= before + 2,
        "plan counters advance: {before} -> {after}"
    );
    assert_eq!(
        hopi.plan_counts().total(),
        after,
        "engine shares the counters"
    );
}

#[test]
fn snapshot_is_immutable_and_matches_engine() {
    let mut hopi = library();
    let snap = hopi.snapshot();
    let thm = snap.resolve("theory", "thm1").unwrap();
    assert_eq!(snap.query("//article//thm").unwrap(), vec![thm]);
    assert_eq!(snap.cover_entries(), hopi.stats().cover_entries);
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(snap.connected(u, v), hopi.connected(u, v), "({u},{v})");
        }
        assert_eq!(snap.descendants(u), hopi.descendants(u));
        assert_eq!(snap.ancestors(u), hopi.ancestors(u));
    }
    assert!(matches!(
        snap.distance(0, 1),
        Err(HopiError::DistanceDisabled)
    ));

    // Mutating the engine does not disturb a captured snapshot…
    let note = hopi
        .insert_xml("note", r#"<note><cite xlink:href="theory"/></note>"#)
        .unwrap();
    let note_root = hopi.collection().global_id(note, 0);
    assert!(hopi.connected(note_root, thm));
    assert!(
        !snap.connected(note_root, thm),
        "snapshot is frozen in time"
    );
    // …while a fresh snapshot sees the new state.
    assert!(hopi.snapshot().connected(note_root, thm));
}

#[test]
fn snapshot_serves_distance_and_ranked_queries() {
    let hopi = Hopi::builder()
        .distance_aware(true)
        .parse([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s/></r>"#),
        ])
        .unwrap();
    let snap = hopi.snapshot();
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                snap.distance(u, v).unwrap(),
                hopi.distance(u, v).unwrap(),
                "dist({u},{v})"
            );
        }
    }
    let ranked_live = hopi.query_ranked("//r//s").unwrap();
    let ranked_snap = snap.query_ranked("//r//s").unwrap();
    assert_eq!(ranked_live.len(), ranked_snap.len());
    for (a, b) in ranked_live.iter().zip(&ranked_snap) {
        assert_eq!((a.element, a.distance), (b.element, b.distance));
    }
}

#[test]
fn online_reads_are_served_from_refreshed_snapshots() {
    let online = OnlineHopi::new(library());
    let (survey, thm) = {
        let snap = online.snapshot();
        (
            snap.resolve("survey", "").unwrap(),
            snap.resolve("theory", "thm1").unwrap(),
        )
    };
    assert!(online.connected(survey, thm));

    // A held snapshot is a stable epoch; the convenience reads pick up
    // each mutation immediately after it returns.
    let epoch = online.snapshot();
    let note = online
        .insert_xml("note", r#"<note><cite xlink:href="theory"/></note>"#)
        .unwrap();
    let note_root = online.snapshot().collection().global_id(note, 0);
    assert!(online.connected(note_root, thm), "refreshed after insert");
    assert!(!epoch.connected(note_root, thm), "old epoch unchanged");
    online.delete_document(note).unwrap();
    assert!(!online.connected(note_root, thm), "refreshed after delete");

    // Batched updates publish once at the end.
    let (x, y) = online
        .update_batch(|h| {
            let x = h
                .insert_xml("x", r#"<x><cite xlink:href="theory"/></x>"#)
                .unwrap();
            let y = h
                .insert_xml("y", r#"<y><cite xlink:href="x"/></y>"#)
                .unwrap();
            (x, y)
        })
        .expect("non-durable batch cannot fail");
    let snap = online.snapshot();
    let (xr, yr) = (
        snap.collection().global_id(x, 0),
        snap.collection().global_id(y, 0),
    );
    assert!(snap.connected(yr, xr) && snap.connected(yr, thm));
    online.read(oracle_check);
}

#[test]
fn save_frozen_open_round_trips() {
    let hopi = library();
    let path = std::env::temp_dir().join(format!("hopi_facade_frozen_{}.idx", std::process::id()));
    hopi.save_frozen(&path).unwrap();

    // Facade open auto-detects the frozen layout and thaws it.
    let reopened = Hopi::open(hopi.collection().clone(), &path).unwrap();
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(reopened.connected(u, v), hopi.connected(u, v), "({u},{v})");
        }
        assert_eq!(reopened.descendants(u), hopi.descendants(u));
    }
    assert_eq!(reopened.stats().cover_entries, hopi.stats().cover_entries);

    // The pure read-only path loads a FrozenCover directly, no thaw.
    let frozen = hopi::store::load_frozen(&path).unwrap();
    for u in 0..n {
        for v in 0..n {
            assert_eq!(frozen.connected(u, v), hopi.connected(u, v));
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_frozen_distance_round_trips() {
    let hopi = Hopi::builder()
        .distance_aware(true)
        .parse([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s/></r>"#),
        ])
        .unwrap();
    let path = std::env::temp_dir().join(format!(
        "hopi_facade_frozen_dist_{}.idx",
        std::process::id()
    ));
    hopi.save_frozen(&path).unwrap();
    let reopened = Hopi::open(hopi.collection().clone(), &path).unwrap();
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                reopened.distance(u, v).unwrap(),
                hopi.distance(u, v).unwrap(),
                "dist({u},{v})"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_insert_link_is_noop_for_all_reported_state() {
    let mut hopi = Hopi::builder()
        .distance_aware(true)
        .parse([("a", r#"<r><s/></r>"#), ("b", r#"<r><s/></r>"#)])
        .unwrap();
    let (a_s, b_root) = (1, 2);
    let added = hopi.insert_link(a_s, b_root).unwrap();
    assert!(added > 0);
    let before = hopi.stats();
    // Second insert: no new entries, no distance-cover re-relaxation, no
    // extra link.
    assert_eq!(hopi.insert_link(a_s, b_root).unwrap(), 0);
    let after = hopi.stats();
    assert_eq!(after.cover_entries, before.cover_entries);
    assert_eq!(after.distance_entries, before.distance_entries);
    assert_eq!(after.links, before.links);
    oracle_check(&hopi);
}

#[test]
fn save_open_round_trips_distance_and_config() {
    let hopi = Hopi::builder()
        .distance_aware(true)
        .parse([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s/></r>"#),
        ])
        .unwrap();
    let path = std::env::temp_dir().join(format!("hopi_facade_dist_{}.idx", std::process::id()));
    hopi.save(&path).unwrap();

    // Plain open restores distance queries from the DIST column.
    let reopened = Hopi::open(hopi.collection().clone(), &path).unwrap();
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(reopened.connected(u, v), hopi.connected(u, v));
            assert_eq!(
                reopened.distance(u, v).unwrap(),
                hopi.distance(u, v).unwrap(),
                "dist({u},{v})"
            );
        }
    }

    // Builder-based open keeps the chosen build configuration.
    let tuned = Hopi::builder()
        .partitioner(PartitionerChoice::Flat)
        .probe_budget(7)
        .open(hopi.collection().clone(), &path)
        .unwrap();
    assert!(matches!(
        tuned.config().partitioner,
        PartitionerChoice::Flat
    ));
    assert_eq!(tuned.query_options().probe_budget, 7);
    std::fs::remove_file(&path).ok();
}
