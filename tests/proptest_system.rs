//! System-level property tests: arbitrary collections, arbitrary build
//! configurations, arbitrary update sequences — the index must always agree
//! with the closure oracle.

use hopi::graph::TransitiveClosure;
use hopi::prelude::*;
use proptest::prelude::*;

/// Strategy: a random collection blueprint.
#[derive(Debug, Clone)]
struct CollectionPlan {
    docs: Vec<usize>,              // element count per doc
    links: Vec<(usize, u32, usize, u32)>, // (doc_a, raw_elem, doc_b, raw_elem)
}

fn arb_plan() -> impl Strategy<Value = CollectionPlan> {
    let docs = proptest::collection::vec(1usize..6, 2..8);
    docs.prop_flat_map(|docs| {
        let n = docs.len();
        let links =
            proptest::collection::vec((0..n, 0u32..8, 0..n, 0u32..8), 0..12);
        (Just(docs), links).prop_map(|(docs, links)| CollectionPlan { docs, links })
    })
}

fn realize(plan: &CollectionPlan) -> Collection {
    let mut c = Collection::new();
    for (i, &n) in plan.docs.iter().enumerate() {
        let mut d = XmlDocument::new(format!("d{i}"), "r");
        for k in 1..n {
            // Chain/stars mix: attach to element k/2.
            d.add_element((k / 2) as u32, "e");
        }
        c.add_document(d);
    }
    for &(da, ea, db, eb) in &plan.links {
        if da == db {
            continue;
        }
        let (da, db) = (da as u32, db as u32);
        let la = ea % c.document(da).unwrap().len() as u32;
        let lb = eb % c.document(db).unwrap().len() as u32;
        c.add_link(c.global_id(da, la), c.global_id(db, lb));
    }
    c
}

fn oracle_check(c: &Collection, index: &HopiIndex) -> Result<(), TestCaseError> {
    let g = c.element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
        for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
            prop_assert_eq!(index.connected(u, v), tc.contains(u, v), "pair ({},{})", u, v);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_collection_psg_join(plan in arb_plan()) {
        let c = realize(&plan);
        let (index, _) = build_index(&c, &BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            join: JoinAlgorithm::Psg,
            ..Default::default()
        });
        oracle_check(&c, &index)?;
    }

    #[test]
    fn arbitrary_collection_incremental_join(plan in arb_plan()) {
        let c = realize(&plan);
        let (index, _) = build_index(&c, &BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            join: JoinAlgorithm::Incremental,
            ..Default::default()
        });
        oracle_check(&c, &index)?;
    }

    #[test]
    fn psg_and_incremental_answer_identically(plan in arb_plan()) {
        let c = realize(&plan);
        let base = BuildConfig {
            partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                max_connections_per_partition: 60,
                ..Default::default()
            }),
            join: JoinAlgorithm::Psg,
            ..Default::default()
        };
        let (a, _) = build_index(&c, &base);
        let (b, _) = build_index(&c, &BuildConfig {
            join: JoinAlgorithm::Incremental,
            ..base
        });
        let n = c.elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(a.connected(u, v), b.connected(u, v));
            }
        }
    }

    #[test]
    fn deletion_sequence_stays_exact(plan in arb_plan(), order in proptest::collection::vec(0usize..100, 1..5)) {
        let mut c = realize(&plan);
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let mut live: Vec<DocId> = c.doc_ids().collect();
        for pick in order {
            if live.len() <= 1 {
                break;
            }
            let victim = live.remove(pick % live.len());
            delete_document(&mut c, &mut index, victim);
            oracle_check(&c, &index)?;
        }
    }

    #[test]
    fn insertion_sequence_stays_exact(plan in arb_plan(), extra in proptest::collection::vec((0usize..100, 0usize..100), 1..5)) {
        let mut c = realize(&plan);
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        for (i, (da, db)) in extra.into_iter().enumerate() {
            let docs: Vec<DocId> = c.doc_ids().collect();
            let a = docs[da % docs.len()];
            let b = docs[db % docs.len()];
            if a != b {
                let (from, to) = (c.global_id(a, 0), c.global_id(b, 0));
                insert_link(&mut c, &mut index, from, to);
            } else {
                let mut d = XmlDocument::new(format!("x{i}"), "r");
                d.add_element(0, "s");
                let to = c.global_id(a, 0);
                insert_document(&mut c, &mut index, d, &DocumentLinks {
                    outgoing: vec![(1, to)],
                    incoming: vec![],
                });
            }
            oracle_check(&c, &index)?;
        }
    }

    #[test]
    fn store_agrees_with_cover(plan in arb_plan()) {
        let c = realize(&plan);
        let (index, _) = build_index(&c, &BuildConfig::default());
        let store = LinLoutStore::from_cover(index.cover());
        let n = c.elem_id_bound() as u32;
        for u in 0..n {
            prop_assert_eq!(store.descendants(u), index.descendants(u));
            prop_assert_eq!(store.ancestors(u), index.ancestors(u));
        }
    }
}
