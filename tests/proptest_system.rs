//! System-level property tests: arbitrary collections, arbitrary build
//! configurations, arbitrary update sequences — the engine must always
//! agree with the closure oracle.

use hopi::graph::TransitiveClosure;
use hopi::prelude::*;
use proptest::prelude::*;

/// Strategy: a random collection blueprint.
#[derive(Debug, Clone)]
struct CollectionPlan {
    docs: Vec<usize>,                     // element count per doc
    links: Vec<(usize, u32, usize, u32)>, // (doc_a, raw_elem, doc_b, raw_elem)
}

fn arb_plan() -> impl Strategy<Value = CollectionPlan> {
    let docs = proptest::collection::vec(1usize..6, 2..8);
    docs.prop_flat_map(|docs| {
        let n = docs.len();
        let links = proptest::collection::vec((0..n, 0u32..8, 0..n, 0u32..8), 0..12);
        (Just(docs), links).prop_map(|(docs, links)| CollectionPlan { docs, links })
    })
}

fn realize(plan: &CollectionPlan) -> Collection {
    let mut c = Collection::new();
    for (i, &n) in plan.docs.iter().enumerate() {
        let mut d = XmlDocument::new(format!("d{i}"), "r");
        for k in 1..n {
            // Chain/stars mix: attach to element k/2.
            d.add_element((k / 2) as u32, "e");
        }
        c.add_document(d);
    }
    for &(da, ea, db, eb) in &plan.links {
        if da == db {
            continue;
        }
        let (da, db) = (da as u32, db as u32);
        let la = ea % c.document(da).unwrap().len() as u32;
        let lb = eb % c.document(db).unwrap().len() as u32;
        c.add_link(c.global_id(da, la), c.global_id(db, lb));
    }
    c
}

fn oracle_check(hopi: &Hopi) -> Result<(), TestCaseError> {
    let g = hopi.collection().element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
        for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
            prop_assert_eq!(
                hopi.connected(u, v),
                tc.contains(u, v),
                "pair ({},{})",
                u,
                v
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_collection_psg_join(plan in arb_plan()) {
        let hopi = Hopi::builder()
            .partitioner(PartitionerChoice::PerDocument)
            .join(JoinAlgorithm::Psg)
            .build(realize(&plan))
            .unwrap();
        oracle_check(&hopi)?;
    }

    #[test]
    fn arbitrary_collection_incremental_join(plan in arb_plan()) {
        let hopi = Hopi::builder()
            .partitioner(PartitionerChoice::PerDocument)
            .join(JoinAlgorithm::Incremental)
            .build(realize(&plan))
            .unwrap();
        oracle_check(&hopi)?;
    }

    #[test]
    fn psg_and_incremental_answer_identically(plan in arb_plan()) {
        let c = realize(&plan);
        let base = || Hopi::builder().partitioner(PartitionerChoice::Tc(TcPartitionerConfig {
            max_connections_per_partition: 60,
            ..Default::default()
        }));
        let a = base().join(JoinAlgorithm::Psg).build(c.clone()).unwrap();
        let b = base().join(JoinAlgorithm::Incremental).build(c).unwrap();
        let n = a.collection().elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(a.connected(u, v), b.connected(u, v));
            }
        }
    }

    #[test]
    fn deletion_sequence_stays_exact(plan in arb_plan(), order in proptest::collection::vec(0usize..100, 1..5)) {
        let mut hopi = Hopi::build(realize(&plan)).unwrap();
        let mut live: Vec<DocId> = hopi.collection().doc_ids().collect();
        for pick in order {
            if live.len() <= 1 {
                break;
            }
            let victim = live.remove(pick % live.len());
            hopi.delete_document(victim).unwrap();
            oracle_check(&hopi)?;
        }
    }

    #[test]
    fn insertion_sequence_stays_exact(plan in arb_plan(), extra in proptest::collection::vec((0usize..100, 0usize..100), 1..5)) {
        let mut hopi = Hopi::build(realize(&plan)).unwrap();
        for (i, (da, db)) in extra.into_iter().enumerate() {
            let docs: Vec<DocId> = hopi.collection().doc_ids().collect();
            let a = docs[da % docs.len()];
            let b = docs[db % docs.len()];
            if a != b {
                let from = hopi.collection().global_id(a, 0);
                let to = hopi.collection().global_id(b, 0);
                hopi.insert_link(from, to).unwrap();
            } else {
                let mut d = XmlDocument::new(format!("x{i}"), "r");
                d.add_element(0, "s");
                let to = hopi.collection().global_id(a, 0);
                hopi.insert_document(d, &DocumentLinks {
                    outgoing: vec![(1, to)],
                    incoming: vec![],
                }).unwrap();
            }
            oracle_check(&hopi)?;
        }
    }

    #[test]
    fn frozen_cover_agrees_with_live_cover(plan in arb_plan()) {
        // The frozen CSR snapshot must answer connected / descendants /
        // ancestors exactly like the mutable cover it was frozen from.
        use hopi::core::FrozenCover;
        let hopi = Hopi::build(realize(&plan)).unwrap();
        let live = hopi.index().cover();
        let frozen = FrozenCover::from_cover(live);
        prop_assert_eq!(frozen.size(), live.size());
        let n = hopi.collection().elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(frozen.connected(u, v), live.connected(u, v), "pair ({},{})", u, v);
            }
            prop_assert_eq!(frozen.descendants(u), live.descendants(u), "descendants {}", u);
            prop_assert_eq!(frozen.ancestors(u), live.ancestors(u), "ancestors {}", u);
        }
    }

    #[test]
    fn frozen_distance_agrees_with_live_cover(plan in arb_plan()) {
        // Same property for the distance annotations of a distance-aware
        // engine, plus the frozen persistence round trip.
        use hopi::core::FrozenCover;
        use hopi::store::load_frozen;
        let hopi = Hopi::builder().distance_aware(true).build(realize(&plan)).unwrap();
        let n = hopi.collection().elem_id_bound() as u32;
        let path = std::env::temp_dir().join(format!(
            "hopi_proptest_frozen_{}_{}.idx",
            std::process::id(),
            n
        ));
        hopi.save_frozen(&path).unwrap();
        let frozen = load_frozen(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(frozen.with_dist());
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    frozen.distance(u, v),
                    hopi.distance(u, v).unwrap(),
                    "distance ({},{})", u, v
                );
            }
        }
        let _ = FrozenCover::from_cover(hopi.index().cover()); // plain form still freezes
    }

    #[test]
    fn snapshot_agrees_with_engine_queries(plan in arb_plan()) {
        let hopi = Hopi::build(realize(&plan)).unwrap();
        let snap = hopi.snapshot();
        let n = hopi.collection().elem_id_bound() as u32;
        for u in 0..n {
            prop_assert_eq!(snap.descendants(u), hopi.descendants(u));
        }
        for expr in ["//r//e", "//e//e", "/r/e"] {
            prop_assert_eq!(snap.query(expr).unwrap(), hopi.query(expr).unwrap(), "{}", expr);
        }
    }

    #[test]
    fn duplicate_link_insert_is_noop(plan in arb_plan(), da in 0usize..100, db in 0usize..100) {
        let mut hopi = Hopi::builder().distance_aware(true).build(realize(&plan)).unwrap();
        let docs: Vec<DocId> = hopi.collection().doc_ids().collect();
        let a = docs[da % docs.len()];
        let b = docs[db % docs.len()];
        if a != b {
            let from = hopi.collection().global_id(a, 0);
            let to = hopi.collection().global_id(b, 0);
            hopi.insert_link(from, to).unwrap();
            let stats = hopi.stats();
            prop_assert_eq!(hopi.insert_link(from, to).unwrap(), 0);
            let after = hopi.stats();
            prop_assert_eq!(after.cover_entries, stats.cover_entries);
            prop_assert_eq!(after.distance_entries, stats.distance_entries);
            prop_assert_eq!(after.links, stats.links);
            oracle_check(&hopi)?;
        }
    }

    #[test]
    fn store_agrees_with_engine(plan in arb_plan()) {
        let hopi = Hopi::build(realize(&plan)).unwrap();
        let path = std::env::temp_dir().join(format!(
            "hopi_proptest_store_{}_{}.idx",
            std::process::id(),
            hopi.collection().elem_id_bound()
        ));
        hopi.save(&path).unwrap();
        let reloaded = Hopi::open(hopi.collection().clone(), &path).unwrap();
        std::fs::remove_file(&path).ok();
        let n = hopi.collection().elem_id_bound() as u32;
        for u in 0..n {
            prop_assert_eq!(reloaded.descendants(u), hopi.descendants(u));
            prop_assert_eq!(reloaded.ancestors(u), hopi.ancestors(u));
        }
    }
}
