//! End-to-end integration tests: generate or parse a collection, build the
//! index under every configuration, query it through the in-memory cover
//! *and* the LIN/LOUT store, maintain it incrementally — always checked
//! against a freshly computed transitive-closure oracle.

use hopi::graph::TransitiveClosure;
use hopi::prelude::*;
use hopi::xml::generator::{dblp, inex, random_collection, DblpConfig, InexConfig, RandomConfig};
use hopi::xml::parser::parse_collection;

fn oracle_check(collection: &Collection, index: &HopiIndex) {
    let g = collection.element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
        for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
            assert_eq!(index.connected(u, v), tc.contains(u, v), "pair ({u},{v})");
        }
    }
}

fn configurations() -> Vec<BuildConfig> {
    let mut cfgs = vec![BuildConfig {
        partitioner: PartitionerChoice::Flat,
        ..Default::default()
    }];
    for join in [JoinAlgorithm::Incremental, JoinAlgorithm::Psg] {
        cfgs.push(BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            join,
            ..Default::default()
        });
        cfgs.push(BuildConfig {
            partitioner: PartitionerChoice::Old(OldPartitionerConfig {
                max_nodes_per_partition: 40,
                ..Default::default()
            }),
            join,
            preselect_link_targets: true,
            ..Default::default()
        });
        cfgs.push(BuildConfig {
            partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                max_connections_per_partition: 300,
                ..Default::default()
            }),
            join,
            ..Default::default()
        });
    }
    cfgs
}

#[test]
fn dblp_like_collection_all_configs() {
    let c = dblp(&DblpConfig::scaled(0.003)); // ~19 docs
    for cfg in configurations() {
        let (index, _) = build_index(&c, &cfg);
        oracle_check(&c, &index);
    }
}

#[test]
fn random_cyclic_collections_all_configs() {
    for seed in [3u64, 11, 29] {
        let c = random_collection(&RandomConfig {
            num_docs: 10,
            elements_range: (2, 7),
            num_links: 18,
            num_intra_links: 6,
            allow_cycles: true,
            seed,
        });
        for cfg in configurations() {
            let (index, _) = build_index(&c, &cfg);
            oracle_check(&c, &index);
        }
    }
}

#[test]
fn inex_like_tree_collection() {
    // No links: every configuration degenerates to per-partition covers.
    let c = inex(&InexConfig {
        num_docs: 6,
        mean_elements: 40,
        max_depth: 7,
        seed: 5,
    });
    for cfg in configurations() {
        let (index, report) = build_index(&c, &cfg);
        assert_eq!(report.cross_links, 0);
        assert_eq!(report.join_entries, 0);
        oracle_check(&c, &index);
    }
}

#[test]
fn parsed_collection_roundtrip_through_store() {
    let c = parse_collection([
        ("a", r#"<r><x id="i1"/><l xlink:href="b#t"/></r>"#),
        ("b", r#"<r><y id="t"><z/></y></r>"#),
        ("c", r#"<r><l href="a"/><m idref="nothing"/></r>"#),
    ])
    .unwrap();
    let (index, _) = build_index(&c, &BuildConfig::default());
    oracle_check(&c, &index);

    // Through the database-backed store.
    let store = LinLoutStore::from_cover(index.cover());
    let g = c.element_graph();
    for u in 0..g.id_bound() as u32 {
        for v in 0..g.id_bound() as u32 {
            assert_eq!(store.connected(u, v), index.connected(u, v));
        }
    }

    // Persistence roundtrip.
    let path = std::env::temp_dir().join("hopi_e2e_store.idx");
    hopi::store::save_store(&store, &path).unwrap();
    let loaded = hopi::store::load_store(&path).unwrap();
    assert_eq!(loaded.entry_count(), store.entry_count());
    assert_eq!(loaded.descendants(0), store.descendants(0));
    std::fs::remove_file(path).ok();
}

#[test]
fn full_lifecycle_build_maintain_query() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(1234);
    let mut c = random_collection(&RandomConfig {
        num_docs: 8,
        elements_range: (2, 6),
        num_links: 10,
        num_intra_links: 4,
        allow_cycles: true,
        seed: 9,
    });
    let (mut index, _) = build_index(&c, &BuildConfig::default());
    oracle_check(&c, &index);

    // Mixed workload: inserts, link churn, deletions, modification.
    let mut live: Vec<DocId> = c.doc_ids().collect();
    for round in 0..12 {
        match round % 4 {
            0 => {
                let mut doc = XmlDocument::new(format!("new{round}"), "r");
                doc.add_element(0, "s");
                let target = live[rng.gen_range(0..live.len())];
                let to = c.global_id(target, 0);
                let d = insert_document(
                    &mut c,
                    &mut index,
                    doc,
                    &DocumentLinks {
                        outgoing: vec![(1, to)],
                        incoming: vec![],
                    },
                );
                live.push(d);
            }
            1 => {
                let a = live[rng.gen_range(0..live.len())];
                let b = live[rng.gen_range(0..live.len())];
                if a != b {
                    let (from, to) = (c.global_id(a, 0), c.global_id(b, 0));
                    insert_link(&mut c, &mut index, from, to);
                }
            }
            2 => {
                if let Some(&l) = c.links().first() {
                    delete_link(&mut c, &mut index, l.from, l.to);
                }
            }
            _ => {
                if live.len() > 3 {
                    let victim = live.remove(rng.gen_range(0..live.len()));
                    delete_document(&mut c, &mut index, victim);
                }
            }
        }
        oracle_check(&c, &index);
        index.cover().check_invariants();
    }

    // Finish with a modification.
    let victim = live[0];
    let mut v2 = XmlDocument::new("rebuilt", "r");
    v2.add_element(0, "fresh");
    let new_id = modify_document(&mut c, &mut index, victim, v2, &DocumentLinks::default());
    assert!(c.document(new_id).is_some());
    oracle_check(&c, &index);
}

#[test]
fn compression_beats_closure_on_dblp() {
    // The headline claim: the cover is far smaller than the materialized
    // transitive closure.
    let c = dblp(&DblpConfig::scaled(0.02));
    let closure = TransitiveClosure::from_graph(&c.element_graph());
    let (index, report) = build_index(
        &c,
        &BuildConfig {
            partitioner: PartitionerChoice::Flat,
            ..Default::default()
        },
    );
    let ratio = report.compression_vs(closure.connection_count() as u64);
    assert!(
        ratio > 5.0,
        "flat cover should compress the closure well, got {ratio:.1}x"
    );
    assert_eq!(index.size(), report.cover_size);
}

#[test]
fn distance_index_end_to_end() {
    let c = dblp(&DblpConfig::scaled(0.002));
    let g = c.element_graph();
    let dc = hopi::graph::DistanceClosure::from_graph(&g);
    let cover = DistanceCoverBuilder::new(&dc).build();
    for u in (0..g.id_bound() as u32).step_by(3) {
        for v in (0..g.id_bound() as u32).step_by(3) {
            assert_eq!(cover.distance(u, v), dc.dist(u, v));
        }
    }
    // Store with DIST and compare entry counts with the plain cover: the
    // distance augmentation must not blow up entry counts (paper abstract:
    // "low space overhead for including distance information").
    let tc = TransitiveClosure::from_graph(&g);
    let plain = hopi::core::CoverBuilder::new(&tc).build();
    assert!(
        cover.size() <= plain.size() * 3,
        "distance cover {} vs plain {}",
        cover.size(),
        plain.size()
    );
}
