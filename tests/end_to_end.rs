//! End-to-end integration tests: generate or parse a collection, build the
//! engine under every configuration, query it through the facade *and* a
//! persisted-store round trip, maintain it incrementally — always checked
//! against a freshly computed transitive-closure oracle.

use hopi::graph::TransitiveClosure;
use hopi::prelude::*;
use hopi::xml::generator::{dblp, inex, random_collection, DblpConfig, InexConfig, RandomConfig};
use hopi::xml::parser::parse_collection;

fn oracle_check(hopi: &Hopi) {
    let g = hopi.collection().element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
        for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
            assert_eq!(hopi.connected(u, v), tc.contains(u, v), "pair ({u},{v})");
        }
    }
}

fn configurations() -> Vec<HopiBuilder> {
    let mut cfgs = vec![Hopi::builder().partitioner(PartitionerChoice::Flat)];
    for join in [JoinAlgorithm::Incremental, JoinAlgorithm::Psg] {
        cfgs.push(
            Hopi::builder()
                .partitioner(PartitionerChoice::PerDocument)
                .join(join),
        );
        cfgs.push(
            Hopi::builder()
                .partitioner(PartitionerChoice::Old(OldPartitionerConfig {
                    max_nodes_per_partition: 40,
                    ..Default::default()
                }))
                .join(join)
                .preselect_link_targets(true),
        );
        cfgs.push(
            Hopi::builder()
                .partitioner(PartitionerChoice::Tc(TcPartitionerConfig {
                    max_connections_per_partition: 300,
                    ..Default::default()
                }))
                .join(join),
        );
    }
    cfgs
}

#[test]
fn dblp_like_collection_all_configs() {
    let c = dblp(&DblpConfig::scaled(0.003)); // ~19 docs
    for builder in configurations() {
        let hopi = builder.build(c.clone()).unwrap();
        oracle_check(&hopi);
    }
}

#[test]
fn random_cyclic_collections_all_configs() {
    for seed in [3u64, 11, 29] {
        let c = random_collection(&RandomConfig {
            num_docs: 10,
            elements_range: (2, 7),
            num_links: 18,
            num_intra_links: 6,
            allow_cycles: true,
            seed,
            text: Default::default(),
        });
        for builder in configurations() {
            let hopi = builder.build(c.clone()).unwrap();
            oracle_check(&hopi);
        }
    }
}

#[test]
fn inex_like_tree_collection() {
    // No links: every configuration degenerates to per-partition covers.
    let c = inex(&InexConfig {
        num_docs: 6,
        mean_elements: 40,
        max_depth: 7,
        seed: 5,
        text: Default::default(),
    });
    for builder in configurations() {
        let hopi = builder.build(c.clone()).unwrap();
        assert_eq!(hopi.report().cross_links, 0);
        assert_eq!(hopi.report().join_entries, 0);
        oracle_check(&hopi);
    }
}

#[test]
fn parsed_collection_roundtrip_through_store() {
    let c = parse_collection([
        ("a", r#"<r><x id="i1"/><l xlink:href="b#t"/></r>"#),
        ("b", r#"<r><y id="t"><z/></y></r>"#),
        ("c", r#"<r><l href="a"/><m idref="nothing"/></r>"#),
    ])
    .unwrap();
    let hopi = Hopi::build(c).unwrap();
    oracle_check(&hopi);

    // Persistence round trip: a reopened engine answers identically.
    let path = std::env::temp_dir().join("hopi_e2e_store.idx");
    hopi.save(&path).unwrap();
    let reloaded = Hopi::open(hopi.collection().clone(), &path).unwrap();
    assert_eq!(reloaded.stats().cover_entries, hopi.stats().cover_entries);
    let n = hopi.collection().elem_id_bound() as u32;
    for u in 0..n {
        for v in 0..n {
            assert_eq!(reloaded.connected(u, v), hopi.connected(u, v));
        }
        assert_eq!(reloaded.descendants(u), hopi.descendants(u));
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn full_lifecycle_build_maintain_query() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(1234);
    let c = random_collection(&RandomConfig {
        num_docs: 8,
        elements_range: (2, 6),
        num_links: 10,
        num_intra_links: 4,
        allow_cycles: true,
        seed: 9,
        text: Default::default(),
    });
    let mut hopi = Hopi::build(c).unwrap();
    oracle_check(&hopi);

    // Mixed workload: inserts, link churn, deletions, modification.
    let mut live: Vec<DocId> = hopi.collection().doc_ids().collect();
    for round in 0..12 {
        match round % 4 {
            0 => {
                let mut doc = XmlDocument::new(format!("new{round}"), "r");
                doc.add_element(0, "s");
                let target = live[rng.gen_range(0..live.len())];
                let to = hopi.collection().global_id(target, 0);
                let d = hopi
                    .insert_document(
                        doc,
                        &DocumentLinks {
                            outgoing: vec![(1, to)],
                            incoming: vec![],
                        },
                    )
                    .unwrap();
                live.push(d);
            }
            1 => {
                let a = live[rng.gen_range(0..live.len())];
                let b = live[rng.gen_range(0..live.len())];
                if a != b {
                    let from = hopi.collection().global_id(a, 0);
                    let to = hopi.collection().global_id(b, 0);
                    hopi.insert_link(from, to).unwrap();
                }
            }
            2 => {
                if let Some(&l) = hopi.collection().links().first() {
                    hopi.delete_link(l.from, l.to).unwrap();
                }
            }
            _ => {
                if live.len() > 3 {
                    let victim = live.remove(rng.gen_range(0..live.len()));
                    hopi.delete_document(victim).unwrap();
                }
            }
        }
        oracle_check(&hopi);
        hopi.index().cover().check_invariants();
    }

    // Finish with a modification.
    let victim = live[0];
    let mut v2 = XmlDocument::new("rebuilt", "r");
    v2.add_element(0, "fresh");
    let new_id = hopi
        .modify_document(victim, v2, &DocumentLinks::default())
        .unwrap();
    assert!(hopi.collection().document(new_id).is_some());
    oracle_check(&hopi);
}

#[test]
fn compression_beats_closure_on_dblp() {
    // The headline claim: the cover is far smaller than the materialized
    // transitive closure.
    let c = dblp(&DblpConfig::scaled(0.02));
    let closure = TransitiveClosure::from_graph(&c.element_graph());
    let hopi = Hopi::builder()
        .partitioner(PartitionerChoice::Flat)
        .build(c)
        .unwrap();
    let ratio = hopi
        .report()
        .compression_vs(closure.connection_count() as u64);
    assert!(
        ratio > 5.0,
        "flat cover should compress the closure well, got {ratio:.1}x"
    );
    assert_eq!(hopi.index().size(), hopi.report().cover_size);
}

#[test]
fn distance_index_end_to_end() {
    let c = dblp(&DblpConfig::scaled(0.002));
    let g = c.element_graph();
    let dc = hopi::graph::DistanceClosure::from_graph(&g);
    let hopi = Hopi::builder().distance_aware(true).build(c).unwrap();
    for u in (0..g.id_bound() as u32).step_by(3) {
        for v in (0..g.id_bound() as u32).step_by(3) {
            assert_eq!(hopi.distance(u, v).unwrap(), dc.dist(u, v));
        }
    }
    // The distance augmentation must not blow up entry counts (paper
    // abstract: "low space overhead for including distance information").
    let stats = hopi.stats();
    let distance_entries = stats.distance_entries.expect("distance enabled");
    assert!(
        distance_entries <= stats.cover_entries * 3,
        "distance cover {} vs plain {}",
        distance_entries,
        stats.cover_entries
    );
}
