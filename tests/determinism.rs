//! Determinism and concurrency tests: the build pipeline must produce the
//! same cover regardless of worker-thread count (partition covers are
//! computed concurrently but merged in partition order), and repeated
//! builds must be bit-identical (all randomness is seeded).

use hopi::prelude::*;
use hopi::xml::generator::{dblp, DblpConfig};

fn covers_equal(a: &HopiIndex, b: &HopiIndex, n: u32) -> bool {
    if a.size() != b.size() {
        return false;
    }
    (0..n).all(|u| {
        a.cover().lin(u) == b.cover().lin(u) && a.cover().lout(u) == b.cover().lout(u)
    })
}

#[test]
fn thread_count_does_not_change_the_cover() {
    let c = dblp(&DblpConfig::scaled(0.01));
    let n = c.elem_id_bound() as u32;
    let base = BuildConfig {
        threads: 1,
        ..Default::default()
    };
    let (one, _) = build_index(&c, &base);
    for threads in [2, 4, 8] {
        let (multi, _) = build_index(
            &c,
            &BuildConfig {
                threads,
                ..base.clone()
            },
        );
        assert!(
            covers_equal(&one, &multi, n),
            "cover differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn repeated_builds_are_identical() {
    let c = dblp(&DblpConfig::scaled(0.008));
    let n = c.elem_id_bound() as u32;
    for cfg in [
        BuildConfig::default(),
        BuildConfig {
            partitioner: PartitionerChoice::Old(OldPartitionerConfig::default()),
            join: JoinAlgorithm::Incremental,
            ..Default::default()
        },
    ] {
        let (a, _) = build_index(&c, &cfg);
        let (b, _) = build_index(&c, &cfg);
        assert!(covers_equal(&a, &b, n), "non-deterministic build: {cfg:?}");
    }
}

#[test]
fn generators_are_reproducible_across_scales() {
    for scale in [0.002, 0.01] {
        let a = dblp(&DblpConfig::scaled(scale));
        let b = dblp(&DblpConfig::scaled(scale));
        assert_eq!(a.element_count(), b.element_count());
        assert_eq!(a.links(), b.links());
    }
}
