//! Determinism and concurrency tests: the engine must produce the same
//! cover regardless of worker-thread count (partition covers are computed
//! concurrently but merged in partition order), and repeated builds must be
//! bit-identical (all randomness is seeded).

use hopi::prelude::*;
use hopi::xml::generator::{dblp, DblpConfig};

fn covers_equal(a: &Hopi, b: &Hopi, n: u32) -> bool {
    if a.index().size() != b.index().size() {
        return false;
    }
    (0..n).all(|u| {
        a.index().cover().lin(u) == b.index().cover().lin(u)
            && a.index().cover().lout(u) == b.index().cover().lout(u)
    })
}

#[test]
fn thread_count_does_not_change_the_cover() {
    let c = dblp(&DblpConfig::scaled(0.01));
    let n = c.elem_id_bound() as u32;
    let one = Hopi::builder().threads(1).build(c.clone()).unwrap();
    for threads in [2, 4, 8] {
        let multi = Hopi::builder().threads(threads).build(c.clone()).unwrap();
        assert!(
            covers_equal(&one, &multi, n),
            "cover differs between 1 and {threads} threads"
        );
    }
}

#[test]
fn repeated_builds_are_identical() {
    let c = dblp(&DblpConfig::scaled(0.008));
    let n = c.elem_id_bound() as u32;
    let builders = || {
        [
            Hopi::builder(),
            Hopi::builder()
                .partitioner(PartitionerChoice::Old(OldPartitionerConfig::default()))
                .join(JoinAlgorithm::Incremental),
        ]
    };
    for (first, second) in builders().into_iter().zip(builders()) {
        let config = format!("{:?}", first.clone());
        let a = first.build(c.clone()).unwrap();
        let b = second.build(c.clone()).unwrap();
        assert!(covers_equal(&a, &b, n), "non-deterministic build: {config}");
    }
}

#[test]
fn generators_are_reproducible_across_scales() {
    for scale in [0.002, 0.01] {
        let a = dblp(&DblpConfig::scaled(scale));
        let b = dblp(&DblpConfig::scaled(scale));
        assert_eq!(a.element_count(), b.element_count());
        assert_eq!(a.links(), b.links());
    }
}
