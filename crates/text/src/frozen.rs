//! The frozen term index: postings in two contiguous buffers.
//!
//! Mirrors `FrozenCover`'s CSR layout. Terms are sorted
//! lexicographically; row `t` of the offset array brackets term `t`'s
//! postings inside one concatenated element-id buffer and one parallel
//! term-frequency buffer. Lookup is a binary search over the sorted
//! term table, then two slice borrows — no per-term allocation, and the
//! buffers are position-independent enough to serve from a shared
//! `Arc` across snapshot epochs.

use crate::{PostingsRef, TextIndex, TextSource, TextStats};
use hopi_xml::collection::ElemId;

/// An immutable term index over contiguous buffers.
#[derive(Clone, Debug, Default)]
pub struct FrozenTextIndex {
    /// Terms, sorted lexicographically.
    terms: Vec<String>,
    /// `terms.len() + 1` row offsets into the posting buffers.
    offsets: Vec<u32>,
    /// Concatenated posting element ids, each row sorted ascending.
    elems: Vec<ElemId>,
    /// Term frequencies, parallel to `elems`.
    tfs: Vec<u32>,
    /// Elements carrying text, sorted ascending.
    len_elems: Vec<ElemId>,
    /// Token count per element, parallel to `len_elems`.
    len_vals: Vec<u32>,
    /// Total token occurrences.
    total_tokens: u64,
}

impl FrozenTextIndex {
    /// Freezes a mutable [`TextIndex`] into contiguous buffers.
    pub fn from_index(index: &TextIndex) -> Self {
        let vocab = index.vocabulary();
        let mut order: Vec<u32> = (0..vocab.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| vocab.term(a).cmp(vocab.term(b)));
        let lists = index.posting_lists();
        let total: usize = lists.iter().map(|p| p.elems.len()).sum();
        let mut terms = Vec::with_capacity(order.len());
        let mut offsets = Vec::with_capacity(order.len() + 1);
        let mut elems = Vec::with_capacity(total);
        let mut tfs = Vec::with_capacity(total);
        offsets.push(0);
        for &t in &order {
            terms.push(vocab.term(t).to_string());
            let p = &lists[t as usize];
            elems.extend_from_slice(&p.elems);
            tfs.extend_from_slice(&p.tfs);
            offsets.push(elems.len() as u32);
        }
        let mut lens: Vec<(ElemId, u32)> =
            index.elem_lens().iter().map(|(&e, &l)| (e, l)).collect();
        lens.sort_unstable();
        FrozenTextIndex {
            terms,
            offsets,
            elems,
            tfs,
            len_elems: lens.iter().map(|&(e, _)| e).collect(),
            len_vals: lens.iter().map(|&(_, l)| l).collect(),
            total_tokens: index.total_tokens(),
        }
    }

    /// Number of distinct terms.
    pub fn vocab_len(&self) -> usize {
        self.terms.len()
    }

    /// The sorted term table.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Total bytes of the posting buffers (ids + frequencies).
    pub fn postings_bytes(&self) -> usize {
        self.elems.len() * (std::mem::size_of::<ElemId>() + std::mem::size_of::<u32>())
    }
}

impl TextSource for FrozenTextIndex {
    fn lookup(&self, term: &str) -> Option<PostingsRef<'_>> {
        let t = self
            .terms
            .binary_search_by(|probe| probe.as_str().cmp(term))
            .ok()?;
        let (lo, hi) = (self.offsets[t] as usize, self.offsets[t + 1] as usize);
        Some(PostingsRef {
            elems: &self.elems[lo..hi],
            tfs: &self.tfs[lo..hi],
        })
    }

    fn elem_len(&self, elem: ElemId) -> u32 {
        match self.len_elems.binary_search(&elem) {
            Ok(i) => self.len_vals[i],
            Err(_) => 0,
        }
    }

    fn indexed_elements(&self) -> usize {
        self.len_elems.len()
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    fn stats(&self) -> TextStats {
        TextStats {
            vocabulary: self.terms.len(),
            postings: self.elems.len(),
            postings_bytes: self.postings_bytes(),
            indexed_elements: self.len_elems.len(),
            total_tokens: self.total_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::collection::Collection;
    use hopi_xml::model::XmlDocument;

    fn sample_index() -> TextIndex {
        let mut c = Collection::new();
        let mut d = XmlDocument::new("a", "book");
        let t = d.add_element(0, "title");
        let s = d.add_element(0, "sec");
        d.set_text(t, "XML indexing with HOPI");
        d.set_text(s, "indexing indexing hop");
        c.add_document(d);
        let mut d2 = XmlDocument::new("b", "article");
        let p = d2.add_element(0, "p");
        d2.set_text(p, "two hop cover");
        c.add_document(d2);
        TextIndex::build(&c)
    }

    #[test]
    fn frozen_agrees_with_mutable() {
        let idx = sample_index();
        let frozen = FrozenTextIndex::from_index(&idx);
        assert_eq!(frozen.stats(), idx.stats());
        for t in 0..idx.vocabulary().len() as u32 {
            let term = idx.vocabulary().term(t);
            let (m, f) = (idx.postings(t), frozen.lookup(term).unwrap());
            assert_eq!(m.elems, f.elems, "postings of {term}");
            assert_eq!(m.tfs, f.tfs, "tfs of {term}");
        }
        for e in 0..6 {
            assert_eq!(frozen.elem_len(e), idx.elem_len(e), "len of {e}");
        }
        assert!(frozen.lookup("absent").is_none());
    }

    #[test]
    fn term_table_is_sorted_csr() {
        let frozen = FrozenTextIndex::from_index(&sample_index());
        assert!(frozen.terms().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(frozen.offsets.len(), frozen.vocab_len() + 1);
        assert!(frozen.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*frozen.offsets.last().unwrap() as usize, frozen.elems.len());
    }

    #[test]
    fn empty_index_freezes() {
        let frozen = FrozenTextIndex::from_index(&TextIndex::new());
        assert_eq!(frozen.vocab_len(), 0);
        assert!(frozen.lookup("x").is_none());
        assert_eq!(frozen.stats(), TextStats::default());
        assert!((frozen.avg_elem_len() - 1.0).abs() < 1e-9);
    }
}
