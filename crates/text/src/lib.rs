//! Element-granular term index for content-and-structure queries.
//!
//! HOPI's workload (INEX) mixes structural axes with term predicates —
//! `//section[about(., "xml indexing")]` — so the structure index needs a
//! content-side companion. This crate provides it:
//!
//! * [`TextIndex`] — a mutable term-level inverted index over a
//!   [`Collection`]'s element text: a [`Vocabulary`] (term → term id) plus
//!   per-term posting lists of `(element id, term frequency)`.
//! * [`FrozenTextIndex`] — the same data in two contiguous buffers
//!   (offsets + postings), mirroring `FrozenCover`'s CSR design: one
//!   `u32` offset row per term, postings concatenated in term order.
//! * [`TextSource`] — the object-safe trait query evaluation scores
//!   against, implemented by both forms.
//! * [`Bm25Scorer`] — BM25-style tf·idf with element-length
//!   normalization, fused into ranked retrieval by `hopi_query`.
//!
//! Tokenization ([`tokenize`]) is deliberately plain: Unicode
//! alphanumeric runs, lowercased. Both index forms hand out posting
//! lists as sorted slices so evaluation can intersect them with sorted
//! candidate sets by merge or galloping search.

#![forbid(unsafe_code)]

mod frozen;
mod index;
mod score;

pub use frozen::FrozenTextIndex;
pub use index::{TextIndex, Vocabulary};
pub use score::{Bm25Scorer, B, K1};

use hopi_xml::collection::ElemId;

/// Term identifier (index into a [`Vocabulary`]).
pub type TermId = u32;

/// Splits text into lowercase Unicode-alphanumeric tokens.
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
}

/// One term's posting list: parallel slices of element ids (sorted
/// ascending, unique) and term frequencies.
#[derive(Clone, Copy, Debug)]
pub struct PostingsRef<'a> {
    /// Element ids holding the term, sorted ascending.
    pub elems: &'a [ElemId],
    /// Term frequency per element, parallel to `elems`.
    pub tfs: &'a [u32],
}

impl<'a> PostingsRef<'a> {
    /// Number of postings (the term's document frequency, element-granular).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the term occurs nowhere.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Term frequency in `elem` (0 when absent).
    pub fn tf(&self, elem: ElemId) -> u32 {
        match self.elems.binary_search(&elem) {
            Ok(i) => self.tfs[i],
            Err(_) => 0,
        }
    }
}

/// Size and shape statistics of a term index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TextStats {
    /// Distinct terms.
    pub vocabulary: usize,
    /// Total postings across all terms.
    pub postings: usize,
    /// Bytes held by posting storage (element ids + term frequencies).
    pub postings_bytes: usize,
    /// Elements that carry at least one token.
    pub indexed_elements: usize,
    /// Total token occurrences.
    pub total_tokens: u64,
}

impl TextStats {
    /// Posting storage cost per posting (0 when empty).
    pub fn bytes_per_posting(&self) -> f64 {
        if self.postings == 0 {
            0.0
        } else {
            self.postings_bytes as f64 / self.postings as f64
        }
    }
}

/// What query evaluation needs from a term index, object-safe so the
/// mutable and frozen forms interchange behind `&dyn TextSource`.
pub trait TextSource: Sync {
    /// The term's posting list, `None` when out of vocabulary.
    fn lookup(&self, term: &str) -> Option<PostingsRef<'_>>;

    /// Token count of an element (0 when it carries no text).
    fn elem_len(&self, elem: ElemId) -> u32;

    /// Number of elements carrying any text — the `N` of idf.
    fn indexed_elements(&self) -> usize;

    /// Total token occurrences across all elements.
    fn total_tokens(&self) -> u64;

    /// Size and shape statistics.
    fn stats(&self) -> TextStats;

    /// Document frequency of a term (posting-list length).
    fn df(&self, term: &str) -> usize {
        self.lookup(term).map_or(0, |p| p.len())
    }

    /// Mean token count over indexed elements (1.0 when empty, so
    /// length normalization stays well-defined).
    fn avg_elem_len(&self) -> f64 {
        let n = self.indexed_elements();
        if n == 0 {
            1.0
        } else {
            self.total_tokens() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        let toks: Vec<String> = tokenize("XML-Indexing, 2-hop (HOPI)!").collect();
        assert_eq!(toks, ["xml", "indexing", "2", "hop", "hopi"]);
        assert_eq!(tokenize("").count(), 0);
        assert_eq!(tokenize("  ,,  ").count(), 0);
    }

    #[test]
    fn postings_tf_lookup() {
        let p = PostingsRef {
            elems: &[2, 5, 9],
            tfs: &[1, 3, 2],
        };
        assert_eq!(p.len(), 3);
        assert_eq!(p.tf(5), 3);
        assert_eq!(p.tf(4), 0);
    }

    #[test]
    fn stats_bytes_per_posting() {
        let s = TextStats {
            vocabulary: 2,
            postings: 4,
            postings_bytes: 32,
            indexed_elements: 3,
            total_tokens: 10,
        };
        assert!((s.bytes_per_posting() - 8.0).abs() < 1e-9);
        assert_eq!(TextStats::default().bytes_per_posting(), 0.0);
    }
}
