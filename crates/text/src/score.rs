//! BM25-style scoring of elements against a bag of query terms.
//!
//! The classic Okapi formulation with element-length normalization:
//! elements are the retrieval unit (INEX-style), so `N`, df, and the
//! length prior all speak elements, not documents.

use crate::{PostingsRef, TextSource};
use hopi_xml::collection::ElemId;

/// Term-frequency saturation.
pub const K1: f64 = 1.2;
/// Length-normalization strength.
pub const B: f64 = 0.75;

/// Scores elements against a fixed set of query terms, with per-term
/// posting lists and idf resolved once at construction.
pub struct Bm25Scorer<'a> {
    src: &'a dyn TextSource,
    avg_len: f64,
    /// `(postings, idf)` for each query term found in the vocabulary.
    terms: Vec<(PostingsRef<'a>, f64)>,
}

impl<'a> Bm25Scorer<'a> {
    /// Prepares a scorer for `terms`. Out-of-vocabulary terms
    /// contribute nothing.
    pub fn new(src: &'a dyn TextSource, terms: &[String]) -> Self {
        let n = src.indexed_elements() as f64;
        let resolved = terms
            .iter()
            .filter_map(|t| src.lookup(t))
            .map(|p| {
                let df = p.len() as f64;
                // Robertson-Sparck Jones idf in its always-positive form.
                let idf = (1.0 + (n - df + 0.5) / (df + 0.5)).ln();
                (p, idf)
            })
            .collect();
        Bm25Scorer {
            src,
            avg_len: src.avg_elem_len(),
            terms: resolved,
        }
    }

    /// BM25 score of one element: sum over query terms of
    /// `idf · tf·(k1+1) / (tf + k1·(1−b+b·len/avg_len))`.
    pub fn score(&self, elem: ElemId) -> f64 {
        if self.terms.is_empty() {
            return 0.0;
        }
        let len = f64::from(self.src.elem_len(elem));
        let norm = K1 * (1.0 - B + B * len / self.avg_len);
        let mut score = 0.0;
        for (postings, idf) in &self.terms {
            let tf = f64::from(postings.tf(elem));
            if tf > 0.0 {
                score += idf * tf * (K1 + 1.0) / (tf + norm);
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TextIndex;
    use hopi_xml::collection::Collection;
    use hopi_xml::model::XmlDocument;

    fn sample() -> TextIndex {
        let mut c = Collection::new();
        let mut d = XmlDocument::new("a", "r");
        for (i, text) in [
            "xml indexing",              // elem 1
            "xml xml xml",               // elem 2
            "databases and other words", // elem 3
        ]
        .iter()
        .enumerate()
        {
            let e = d.add_element(0, format!("s{i}"));
            d.set_text(e, *text);
        }
        c.add_document(d);
        TextIndex::build(&c)
    }

    #[test]
    fn matching_elements_outscore_nonmatching() {
        let idx = sample();
        let scorer = Bm25Scorer::new(&idx, &["xml".into(), "indexing".into()]);
        let both = scorer.score(1);
        let one = scorer.score(2);
        let none = scorer.score(3);
        assert!(both > one, "both terms {both} vs one {one}");
        assert!(one > 0.0);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let idx = sample();
        // "indexing" (df 1) should out-weigh "xml" (df 2) at equal tf.
        let rare = Bm25Scorer::new(&idx, &["indexing".into()]).score(1);
        let common = Bm25Scorer::new(&idx, &["xml".into()]).score(1);
        assert!(rare > common, "rare {rare} vs common {common}");
    }

    #[test]
    fn tf_saturates() {
        let idx = sample();
        let scorer = Bm25Scorer::new(&idx, &["xml".into()]);
        // tf 3 at equal-ish length beats tf 1, but by less than 3x (k1 caps it).
        let heavy = scorer.score(2);
        let light = scorer.score(1);
        assert!(heavy > light);
        assert!(heavy < light * 3.0);
    }

    #[test]
    fn out_of_vocabulary_scores_zero() {
        let idx = sample();
        let scorer = Bm25Scorer::new(&idx, &["nonexistent".into()]);
        assert_eq!(scorer.score(1), 0.0);
    }
}
