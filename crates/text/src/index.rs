//! The mutable term index: vocabulary plus growable posting lists.

use crate::{tokenize, PostingsRef, TermId, TextSource, TextStats};
use hopi_xml::collection::{Collection, ElemId};
use hopi_xml::model::XmlDocument;
use rustc_hash::FxHashMap;

/// Interns terms to dense [`TermId`]s.
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    map: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `term`, interning it if new.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.to_string());
        self.map.insert(term.to_string(), id);
        id
    }

    /// Looks a term up without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied()
    }

    /// The term string behind an id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Bytes held by the term strings themselves.
    pub fn term_bytes(&self) -> usize {
        self.terms.iter().map(|t| t.len()).sum()
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct PostingList {
    pub(crate) elems: Vec<ElemId>,
    pub(crate) tfs: Vec<u32>,
}

impl PostingList {
    /// Adds `tf` occurrences of the term in `elem`, keeping `elems`
    /// sorted. Appends are O(1) — the common case, since documents are
    /// indexed in ascending global-id order.
    fn add(&mut self, elem: ElemId, tf: u32) {
        match self.elems.last() {
            Some(&last) if last < elem => {
                self.elems.push(elem);
                self.tfs.push(tf);
            }
            None => {
                self.elems.push(elem);
                self.tfs.push(tf);
            }
            _ => match self.elems.binary_search(&elem) {
                Ok(i) => self.tfs[i] += tf,
                Err(i) => {
                    self.elems.insert(i, elem);
                    self.tfs.insert(i, tf);
                }
            },
        }
    }
}

/// A term-level inverted index over a collection's element text.
///
/// Grows with the collection: [`TextIndex::index_document`] appends one
/// document's text, [`TextIndex::build`] indexes a whole collection.
/// Document removal is handled by rebuilding — posting lists speak
/// global element ids and those are never reused, so a stale posting
/// for a tombstoned element would never be wrong, just wasted space;
/// callers that care rebuild via [`TextIndex::build`].
#[derive(Clone, Debug, Default)]
pub struct TextIndex {
    vocab: Vocabulary,
    postings: Vec<PostingList>,
    elem_lens: FxHashMap<ElemId, u32>,
    total_tokens: u64,
}

impl TextIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes every live document of a collection.
    pub fn build(collection: &Collection) -> Self {
        let mut index = Self::new();
        for d in collection.doc_ids() {
            let base = collection.global_id(d, 0);
            if let Some(doc) = collection.document(d) {
                index.index_document(base, doc);
            }
        }
        index
    }

    /// Indexes one document whose elements start at global id `base`.
    pub fn index_document(&mut self, base: ElemId, doc: &XmlDocument) {
        let mut counts: FxHashMap<TermId, u32> = FxHashMap::default();
        for (local, text) in doc.texts() {
            counts.clear();
            let mut len = 0u32;
            for token in tokenize(text) {
                *counts.entry(self.vocab.intern(&token)).or_insert(0) += 1;
                len += 1;
            }
            if len == 0 {
                continue;
            }
            let elem = base + local;
            self.postings
                .resize_with(self.vocab.len(), Default::default);
            // Sorted term order keeps posting construction deterministic.
            let mut terms: Vec<(TermId, u32)> = counts.iter().map(|(&t, &c)| (t, c)).collect();
            terms.sort_unstable();
            for (term, tf) in terms {
                self.postings[term as usize].add(elem, tf);
            }
            *self.elem_lens.entry(elem).or_insert(0) += len;
            self.total_tokens += u64::from(len);
        }
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The posting list of a term id.
    pub fn postings(&self, term: TermId) -> PostingsRef<'_> {
        let p = &self.postings[term as usize];
        PostingsRef {
            elems: &p.elems,
            tfs: &p.tfs,
        }
    }

    pub(crate) fn posting_lists(&self) -> &[PostingList] {
        &self.postings
    }

    pub(crate) fn elem_lens(&self) -> &FxHashMap<ElemId, u32> {
        &self.elem_lens
    }
}

impl TextSource for TextIndex {
    fn lookup(&self, term: &str) -> Option<PostingsRef<'_>> {
        self.vocab.get(term).map(|id| self.postings(id))
    }

    fn elem_len(&self, elem: ElemId) -> u32 {
        self.elem_lens.get(&elem).copied().unwrap_or(0)
    }

    fn indexed_elements(&self) -> usize {
        self.elem_lens.len()
    }

    fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    fn stats(&self) -> TextStats {
        let postings: usize = self.postings.iter().map(|p| p.elems.len()).sum();
        TextStats {
            vocabulary: self.vocab.len(),
            postings,
            postings_bytes: postings * (std::mem::size_of::<ElemId>() + std::mem::size_of::<u32>()),
            indexed_elements: self.elem_lens.len(),
            total_tokens: self.total_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collection {
        let mut c = Collection::new();
        let mut d = XmlDocument::new("a", "book");
        let t = d.add_element(0, "title");
        let s = d.add_element(0, "sec");
        d.set_text(t, "XML indexing with HOPI");
        d.set_text(s, "indexing indexing hop");
        c.add_document(d); // globals 0..3
        let mut d2 = XmlDocument::new("b", "article");
        let p = d2.add_element(0, "p");
        d2.set_text(p, "two hop cover");
        c.add_document(d2); // globals 3..5
        c
    }

    #[test]
    fn builds_postings_with_frequencies() {
        let idx = TextIndex::build(&sample());
        let p = idx.lookup("indexing").unwrap();
        assert_eq!(p.elems, &[1, 2]);
        assert_eq!(p.tfs, &[1, 2]);
        let hop = idx.lookup("hop").unwrap();
        assert_eq!(hop.elems, &[2, 4]);
        assert_eq!(hop.tfs, &[1, 1]);
        assert!(idx.lookup("absent").is_none());
    }

    #[test]
    fn element_lengths_and_totals() {
        let idx = TextIndex::build(&sample());
        assert_eq!(idx.elem_len(1), 4);
        assert_eq!(idx.elem_len(2), 3);
        assert_eq!(idx.elem_len(0), 0); // no text
        assert_eq!(idx.indexed_elements(), 3);
        assert_eq!(idx.total_tokens(), 10);
        assert!((idx.avg_elem_len() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stats_shape() {
        let idx = TextIndex::build(&sample());
        let s = idx.stats();
        assert_eq!(s.vocabulary, idx.vocabulary().len());
        assert!(s.postings >= s.vocabulary); // every term occurs somewhere
        assert_eq!(s.postings_bytes, s.postings * 8);
    }

    #[test]
    fn incremental_matches_batch() {
        let c = sample();
        let batch = TextIndex::build(&c);
        let mut inc = TextIndex::new();
        for d in c.doc_ids() {
            inc.index_document(c.global_id(d, 0), c.document(d).unwrap());
        }
        assert_eq!(batch.stats(), inc.stats());
        for term in ["xml", "indexing", "hop", "cover"] {
            let (b, i) = (batch.lookup(term).unwrap(), inc.lookup(term).unwrap());
            assert_eq!(b.elems, i.elems);
            assert_eq!(b.tfs, i.tfs);
        }
    }
}
