//! CLI subcommand implementations, driving the [`Hopi`] engine facade.

use crate::load::{flag_value, load_dir, positional};
use hopi_build::{Hopi, HopiBuilder, JoinAlgorithm, PartitionerChoice};
use hopi_partition::OldPartitionerConfig;
use hopi_xml::generator::{dblp, inex, DblpConfig, InexConfig};
use hopi_xml::CollectionStats;
use std::path::Path;
use std::time::Instant;

/// Formats an element id as `docname#local <tag>` for terminal output.
fn describe_element(
    collection: &hopi_xml::Collection,
    e: hopi_xml::ElemId,
) -> Result<String, String> {
    let (d, local) = collection
        .to_local(e)
        .ok_or_else(|| format!("element {e} is not live in the collection"))?;
    let doc = collection
        .document(d)
        .ok_or_else(|| format!("document {d} is not live in the collection"))?;
    Ok(format!(
        "{}#{} <{}>",
        doc.name,
        local,
        doc.element(local).tag
    ))
}

/// `hopi gen --kind dblp|inex --scale F --out DIR`
pub fn generate(args: &[String]) -> Result<(), String> {
    let kind = flag_value(args, "--kind").unwrap_or_else(|| "dblp".into());
    let scale: f64 = flag_value(args, "--scale")
        .unwrap_or_else(|| "0.01".into())
        .parse()
        .map_err(|e| format!("bad --scale: {e}"))?;
    let out = flag_value(args, "--out").ok_or("missing --out DIR")?;
    let collection = match kind.as_str() {
        "dblp" => dblp(&DblpConfig::scaled(scale)),
        "inex" => inex(&InexConfig::scaled(scale)),
        other => return Err(format!("unknown --kind '{other}' (dblp|inex)")),
    };
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create '{out}': {e}"))?;
    let mut written = 0usize;
    for d in collection.doc_ids() {
        let doc = collection
            .document(d)
            .ok_or_else(|| format!("generated document {d} is not live"))?;
        let xml = collection
            .serialize_document(d)
            .ok_or_else(|| format!("generated document {d} does not serialize"))?;
        std::fs::write(Path::new(&out).join(format!("{}.xml", doc.name)), xml)
            .map_err(|e| format!("write failed: {e}"))?;
        written += 1;
    }
    println!(
        "wrote {written} documents ({} elements, {} links) to {out}",
        collection.element_count(),
        collection.links().len()
    );
    Ok(())
}

/// `hopi stats --dir DIR [--index FILE]`, `hopi stats --addr HOST:PORT`,
/// or `hopi stats --slow [--addr HOST:PORT]`
pub fn stats(args: &[String]) -> Result<(), String> {
    // `--slow` interrogates a *running* server's slow-query log instead
    // of a collection directory.
    if args.iter().any(|a| a == "--slow") {
        let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7070".into());
        return slow_log(&addr);
    }
    // `--addr` without `--slow` asks a running server for its health and
    // serving statistics.
    if let Some(addr) = flag_value(args, "--addr") {
        return remote_stats(&addr);
    }
    let dir =
        flag_value(args, "--dir").ok_or("missing --dir DIR (or --addr HOST:PORT for a server)")?;
    let collection = load_dir(&dir)?;
    let s = CollectionStats::of(&collection);
    println!("{s}");
    println!(
        "  {:.1} elements/doc, {:.2} links/doc",
        s.elements_per_doc(),
        s.links_per_doc()
    );
    // With an index on the side, add engine + serving-snapshot statistics
    // (the offline view of the server's GET /stats endpoint).
    if let Some(index_path) = flag_value(args, "--index") {
        let hopi = Hopi::open(collection, Path::new(&index_path))
            .map_err(|e| format!("load failed: {e}"))?;
        let es = hopi.stats();
        println!(
            "index: {} cover entries ({:.2} per element){}",
            es.cover_entries,
            es.entries_per_element,
            match es.distance_entries {
                Some(d) => format!(", {d} distance entries"),
                None => String::new(),
            }
        );
        println!(
            "text: {} terms, {} postings ({} bytes, {:.2} per posting), \
             {} texted elements, {} tokens",
            es.text.vocabulary,
            es.text.postings,
            es.text.postings_bytes,
            es.text.postings_bytes as f64 / es.text.postings.max(1) as f64,
            es.text.indexed_elements,
            es.text.total_tokens
        );
        let snap = hopi.snapshot();
        let ss = snap.stats();
        println!(
            "snapshot: epoch {}, {} nodes, {} cover entries, distance-aware: {}",
            ss.epoch, ss.nodes, ss.cover_entries, ss.distance_aware
        );
    }
    Ok(())
}

/// Connects to a running server, folding every failure (malformed
/// address, refused connection, timeout) into one human-readable line
/// that names the address — the caller propagates it for a non-zero exit.
fn connect_server(addr: &str) -> Result<hopi_server::Client, String> {
    use std::net::ToSocketAddrs;
    let sock = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut it| it.next())
        .ok_or_else(|| {
            format!("bad server address '{addr}' (expected HOST:PORT, e.g. 127.0.0.1:7070)")
        })?;
    hopi_server::Client::connect(sock)
        .map_err(|e| format!("cannot reach hopi server at {addr}: {e}"))
}

/// `hopi stats --addr HOST:PORT` — health and serving statistics from a
/// running server (`GET /healthz` + `GET /stats`): degraded/read-only
/// state, WAL health, snapshot epoch, and collection sizes.
fn remote_stats(addr: &str) -> Result<(), String> {
    use hopi_server::json::{parse, Json};
    let mut client = connect_server(addr)?;
    let health = client
        .get("/healthz")
        .map_err(|e| format!("GET /healthz from {addr} failed: {e}"))?;
    let hbody = parse(&health.body).map_err(|e| format!("bad /healthz JSON: {e}"))?;
    let degraded = hbody
        .get("degraded")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let read_only = hbody
        .get("read_only")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    print!("server at {addr}: ");
    if degraded {
        let reason = hbody
            .get("reason")
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        println!(
            "DEGRADED ({}) — reads only, healthz {}",
            reason, health.status
        );
    } else {
        println!(
            "healthy{} (healthz {})",
            if read_only { ", read-only" } else { "" },
            health.status
        );
    }
    let resp = client
        .get("/stats")
        .map_err(|e| format!("GET /stats from {addr} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /stats -> {}: {}", resp.status, resp.body));
    }
    let s = parse(&resp.body).map_err(|e| format!("bad /stats JSON: {e}"))?;
    let u = |name: &str| s.get(name).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "  epoch {}: {} docs, {} elements, {} links, {} cover entries",
        u("epoch"),
        u("documents"),
        u("elements"),
        u("links"),
        u("cover_entries")
    );
    let durable = s.get("durable").and_then(Json::as_bool).unwrap_or(false);
    if let Some(wal) = s.get("wal").filter(|_| durable) {
        let wu = |name: &str| wal.get(name).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "  wal: healthy={}, seq {} (durable {}), {} records since checkpoint at seq {}",
            wal.get("healthy").and_then(Json::as_bool).unwrap_or(false),
            wu("appended_seq"),
            wu("durable_seq"),
            wu("records_since_checkpoint"),
            wu("last_checkpoint_seq")
        );
    } else {
        println!("  wal: none (not durable)");
    }
    Ok(())
}

/// `hopi stats --slow [--addr HOST:PORT]` — fetches `GET /debug/slow`
/// from a running server and pretty-prints the captured requests,
/// slowest first, with their trace ids and per-stage breakdowns.
fn slow_log(addr: &str) -> Result<(), String> {
    use hopi_server::json::{parse, Json};
    let mut client = connect_server(addr)?;
    let resp = client
        .get("/debug/slow")
        .map_err(|e| format!("GET /debug/slow failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /debug/slow -> {}: {}", resp.status, resp.body));
    }
    let body = parse(&resp.body).map_err(|e| format!("bad /debug/slow JSON: {e}"))?;
    let threshold = body
        .get("threshold_micros")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let entries = body.get("slow").and_then(Json::as_arr).unwrap_or_default();
    println!(
        "slow-query log at {addr}: {} captured (threshold {threshold}µs)",
        entries.len()
    );
    for e in entries {
        let trace = e.get("trace").and_then(Json::as_str).unwrap_or("?");
        let endpoint = e.get("endpoint").and_then(Json::as_str).unwrap_or("?");
        let micros = e.get("micros").and_then(Json::as_u64).unwrap_or(0);
        let epoch = e.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        print!("  {micros:>8}µs  {trace}  {endpoint}  epoch={epoch}");
        if let Some(detail) = e.get("detail").and_then(Json::as_str) {
            print!("  {detail}");
        }
        println!();
        if let Some(stages) = e.get("stages").and_then(Json::as_obj) {
            let breakdown: Vec<String> = stages
                .iter()
                .filter_map(|(stage, us)| Some(format!("{stage}={}µs", us.as_u64()?)))
                .collect();
            if !breakdown.is_empty() {
                println!("            stages: {}", breakdown.join(" "));
            }
        }
    }
    Ok(())
}

fn builder_for_mode(mode: &str) -> Result<HopiBuilder, String> {
    match mode {
        "default" => Ok(Hopi::builder()),
        "flat" => Ok(Hopi::builder().partitioner(PartitionerChoice::Flat)),
        "old" => Ok(Hopi::builder()
            .partitioner(PartitionerChoice::Old(OldPartitionerConfig::default()))
            .join(JoinAlgorithm::Incremental)),
        other => Err(format!("unknown --mode '{other}' (default|flat|old)")),
    }
}

/// `hopi build --dir DIR --out FILE [--mode default|flat|old] [--frozen]`
pub fn build(args: &[String]) -> Result<(), String> {
    let dir = flag_value(args, "--dir").ok_or("missing --dir DIR")?;
    let out = flag_value(args, "--out").ok_or("missing --out FILE")?;
    let mode = flag_value(args, "--mode").unwrap_or_else(|| "default".into());
    let frozen = args.iter().any(|a| a == "--frozen");
    let collection = load_dir(&dir)?;
    let t = Instant::now();
    let hopi = builder_for_mode(&mode)?
        .build(collection)
        .map_err(|e| format!("build failed: {e}"))?;
    println!(
        "built: {} partitions, {} cover entries in {:?}",
        hopi.report().partitions,
        hopi.report().cover_size,
        t.elapsed()
    );
    if frozen {
        hopi.save_frozen(Path::new(&out))
            .map_err(|e| format!("save failed: {e}"))?;
        println!("persisted frozen CSR cover to {out}");
    } else {
        hopi.save(Path::new(&out))
            .map_err(|e| format!("save failed: {e}"))?;
        println!("persisted LIN/LOUT tables to {out}");
    }
    Ok(())
}

/// `hopi query --dir DIR --index FILE [--explain | --ranked [--k N]] EXPR`
///
/// Supports content-and-structure expressions (`//sec[contains(., "xml")]`,
/// `about(...)`). With `--ranked` the matches come back best-first with
/// their fused distance + BM25 score (needs a distance-aware index).
pub fn query(args: &[String]) -> Result<(), String> {
    let explain = args.iter().any(|a| a == "--explain");
    let ranked = args.iter().any(|a| a == "--ranked");
    if explain && ranked {
        return Err("--explain and --ranked are mutually exclusive".into());
    }
    // `--explain`/`--ranked` are bare switches; drop them before positional
    // parsing (which assumes every `--flag` carries a value).
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--explain" && *a != "--ranked")
        .cloned()
        .collect();
    let dir = flag_value(&args, "--dir").ok_or("missing --dir DIR")?;
    let index_path = flag_value(&args, "--index").ok_or("missing --index FILE")?;
    let k: Option<usize> = match flag_value(&args, "--k") {
        Some(raw) => Some(raw.parse().map_err(|e| format!("bad --k: {e}"))?),
        None => None,
    };
    let expr_src = positional(&args).ok_or("missing path expression")?;
    let collection = load_dir(&dir)?;
    let hopi =
        Hopi::open(collection, Path::new(&index_path)).map_err(|e| format!("load failed: {e}"))?;

    if ranked {
        let t = Instant::now();
        let mut matches = hopi.query_ranked(&expr_src).map_err(|e| format!("{e}"))?;
        if let Some(k) = k {
            matches.truncate(k);
        }
        let elapsed = t.elapsed();
        for m in &matches {
            println!(
                "{:8.4}  (distance {}, text {:.4})  {}",
                m.score(),
                m.distance,
                m.text_score,
                describe_element(hopi.collection(), m.element)?
            );
        }
        eprintln!("{} matches in {elapsed:?}", matches.len());
        return Ok(());
    }

    let t = Instant::now();
    let (result, report) = if explain {
        let (result, report) = hopi
            .query_explained(&expr_src)
            .map_err(|e| format!("{e}"))?;
        (result, Some(report))
    } else {
        (hopi.query(&expr_src).map_err(|e| format!("{e}"))?, None)
    };
    let elapsed = t.elapsed();
    for &e in &result {
        println!("{}", describe_element(hopi.collection(), e)?);
    }
    if let Some(report) = report {
        let parsed = hopi_query::parse_path(&expr_src).map_err(|e| format!("{e}"))?;
        eprint!("{}", report.render(&parsed));
    }
    eprintln!("{} matches in {elapsed:?}", result.len());
    Ok(())
}

/// `hopi serve --dir DIR [--index FILE] [--port N] [--threads N]
/// [--frozen] [--distance] [--wal STATEDIR] [--wal-sync group|per-op|none]
/// [--queue-capacity N] [--queue-deadline MS]`
///
/// Serves the collection over HTTP (see `hopi-server` for the endpoint
/// surface). With `--wal STATEDIR` the server runs durably: every
/// mutation is group-committed to `STATEDIR/wal.log` before it is
/// acknowledged, `POST /admin/checkpoint` snapshots the state atomically,
/// and on startup an existing checkpoint + WAL tail is recovered
/// (`--dir` then only seeds the very first boot). Blocks until stdin
/// reaches EOF or a `quit` line arrives — the CLI's shutdown signal —
/// then drains in-flight requests and exits.
pub fn serve(args: &[String]) -> Result<(), String> {
    use hopi_build::{DurableConfig, OnlineHopi, SyncPolicy};
    use hopi_server::ServerConfig;
    use std::io::BufRead;
    use std::io::Write as _;

    // --dir is the bootstrap source; a --wal directory that already holds
    // a checkpoint recovers without it, so only require it when used.
    let dir = flag_value(args, "--dir");
    let require_dir =
        || -> Result<String, String> { dir.clone().ok_or_else(|| "missing --dir DIR".into()) };
    let port: u16 = flag_value(args, "--port")
        .unwrap_or_else(|| "7070".into())
        .parse()
        .map_err(|e| format!("bad --port: {e}"))?;
    let threads: usize = flag_value(args, "--threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    let frozen = args.iter().any(|a| a == "--frozen");
    let distance = args.iter().any(|a| a == "--distance");
    // Milliseconds on the flag (human-facing), micros internally.
    let slow_threshold_micros: u64 = match flag_value(args, "--slow-threshold") {
        Some(ms) => ms
            .parse::<u64>()
            .map(|ms| ms.saturating_mul(1000))
            .map_err(|e| format!("bad --slow-threshold (milliseconds): {e}"))?,
        None => hopi_server::DEFAULT_SLOW_THRESHOLD_MICROS,
    };
    let queue_capacity: usize = flag_value(args, "--queue-capacity")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|e| format!("bad --queue-capacity: {e}"))?;
    let queue_deadline_millis: u64 = flag_value(args, "--queue-deadline")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|e| format!("bad --queue-deadline (milliseconds): {e}"))?;
    let wal_dir = flag_value(args, "--wal");
    let wal_sync = match flag_value(args, "--wal-sync").as_deref() {
        None | Some("group") => SyncPolicy::GroupCommit,
        Some("per-op") => SyncPolicy::PerOp,
        Some("none") => SyncPolicy::Never,
        Some(other) => return Err(format!("unknown --wal-sync '{other}' (group|per-op|none)")),
    };

    let builder = Hopi::builder().distance_aware(distance);
    let online = match wal_dir {
        Some(state_dir) => {
            let config = DurableConfig::new(&state_dir).policy(wal_sync);
            let recovering = hopi_build::is_durable_dir(Path::new(&state_dir));
            let t = Instant::now();
            let index = flag_value(args, "--index");
            let online = if recovering {
                // The checkpoint + WAL win over --dir/--index.
                if index.is_some() {
                    eprintln!("note: --index is ignored; recovering from the durable state dir");
                }
                OnlineHopi::open_durable(&config, builder, None)
            } else {
                // First boot: seed from the XML directory, through the
                // prebuilt index when one is given.
                let collection = load_dir(&require_dir()?)?;
                match index {
                    Some(index_path) => {
                        let hopi = builder
                            .open(collection, Path::new(&index_path))
                            .map_err(|e| format!("load failed: {e}"))?;
                        OnlineHopi::bootstrap_durable(&config, hopi)
                    }
                    None => OnlineHopi::open_durable(&config, builder, Some(collection)),
                }
            }
            .map_err(|e| format!("durable open failed: {e}"))?;
            let stats = online.read(|h| h.stats());
            let wal = online.wal_stats().expect("durable engine has WAL stats");
            eprintln!(
                "{} durable state in {state_dir}: {} docs, {} cover entries, \
                 WAL seq {} (checkpoint at {}) in {:?}",
                if recovering {
                    "recovered"
                } else {
                    "initialized"
                },
                stats.documents,
                stats.cover_entries,
                wal.appended_seq,
                wal.last_checkpoint_seq,
                t.elapsed()
            );
            online
        }
        None => {
            let collection = load_dir(&require_dir()?)?;
            let hopi = match flag_value(args, "--index") {
                Some(index_path) => builder
                    .open(collection, Path::new(&index_path))
                    .map_err(|e| format!("load failed: {e}"))?,
                None => {
                    let t = Instant::now();
                    let built = builder
                        .build(collection)
                        .map_err(|e| format!("build failed: {e}"))?;
                    eprintln!(
                        "built {} cover entries in {:?} (pass --index FILE to skip this)",
                        built.report().cover_size,
                        t.elapsed()
                    );
                    built
                }
            };
            OnlineHopi::new(hopi)
        }
    };

    let durable = online.is_durable();
    let handle = hopi_server::serve(
        online,
        ServerConfig {
            addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
            threads,
            read_only: frozen,
            slow_threshold_micros,
            queue_capacity,
            queue_deadline_millis,
        },
    )
    .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    println!("hopi-server listening on http://{}", handle.addr());
    println!(
        "  {} worker threads, {}{}; endpoints: /healthz /stats /metrics /debug/slow \
         /connected /connected_many /distance /descendants /ancestors /query /documents \
         /links /admin/rebuild /admin/save /admin/checkpoint",
        handle.state().workers,
        if frozen {
            "frozen (read-only)"
        } else {
            "read-write"
        },
        if durable { ", durable (WAL)" } else { "" },
    );
    println!("  close stdin or type 'quit' for graceful shutdown");
    std::io::stdout().flush().ok();

    // Block on the shutdown signal: stdin EOF (the supervisor closed the
    // pipe) or an explicit `quit` line.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
        }
    }
    if durable {
        // Graceful exit: checkpoint so the next boot skips WAL replay. A
        // kill -9 skips this — recovery replays the log instead.
        match handle.state().engine.checkpoint() {
            Ok(ck) => println!("checkpointed at WAL seq {}", ck.seq),
            Err(e) => eprintln!("checkpoint on shutdown failed: {e}"),
        }
    }
    handle.shutdown();
    println!("shut down cleanly");
    Ok(())
}

/// `hopi check --dir DIR --index FILE [--samples N]`
pub fn check(args: &[String]) -> Result<(), String> {
    use rand::prelude::*;
    let dir = flag_value(args, "--dir").ok_or("missing --dir DIR")?;
    let index_path = flag_value(args, "--index").ok_or("missing --index FILE")?;
    let samples: usize = flag_value(args, "--samples")
        .unwrap_or_else(|| "10000".into())
        .parse()
        .map_err(|e| format!("bad --samples: {e}"))?;
    let collection = load_dir(&dir)?;
    let hopi =
        Hopi::open(collection, Path::new(&index_path)).map_err(|e| format!("load failed: {e}"))?;
    let graph = hopi.collection().element_graph();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc4ec);
    let n = graph.id_bound() as u32;
    for i in 0..samples {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let expect = hopi_graph::traversal::is_reachable(&graph, u, v);
        if hopi.connected(u, v) != expect {
            return Err(format!(
                "MISMATCH on pair ({u}, {v}) after {i} checks: index says {}, graph says {expect}",
                hopi.connected(u, v)
            ));
        }
    }
    println!("OK: {samples} sampled pairs agree with the BFS oracle");
    Ok(())
}
