//! Loading collections from directories of XML files, and tiny argv
//! parsing helpers.

use hopi_xml::parser::parse_collection;
use hopi_xml::Collection;
use std::path::{Path, PathBuf};

/// Extracts `--flag value` from an argv slice.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// First argument that is not a `--flag` or a flag value.
pub fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a.clone());
    }
    None
}

/// Loads every `*.xml` file of a directory (sorted by name for
/// deterministic ids) into a collection. The file stem becomes the document
/// name for `href` resolution.
pub fn load_dir(dir: &str) -> Result<Collection, String> {
    let path = Path::new(dir);
    if !path.is_dir() {
        return Err(format!("'{dir}' is not a directory"));
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read '{dir}': {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.xml files in '{dir}'"));
    }
    let mut docs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for f in &files {
        let name = f
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("bad file name {f:?}"))?
            .to_string();
        let content = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f:?}: {e}"))?;
        docs.push((name, content));
    }
    parse_collection(docs.iter().map(|(n, c)| (n.as_str(), c.as_str())))
        .map_err(|e| format!("parse error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = argv(&["--dir", "d", "--out", "o.idx", "expr"]);
        assert_eq!(flag_value(&a, "--dir").as_deref(), Some("d"));
        assert_eq!(flag_value(&a, "--out").as_deref(), Some("o.idx"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(positional(&a).as_deref(), Some("expr"));
    }

    #[test]
    fn positional_none_when_only_flags() {
        let a = argv(&["--dir", "d"]);
        assert_eq!(positional(&a), None);
    }

    #[test]
    fn load_dir_roundtrip() {
        let dir = std::env::temp_dir().join("hopi_cli_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.xml"), r#"<r><x href="b"/></r>"#).unwrap();
        std::fs::write(dir.join("b.xml"), "<r/>").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not xml").unwrap();
        let c = load_dir(dir.to_str().unwrap()).unwrap();
        assert_eq!(c.doc_count(), 2);
        assert_eq!(c.links().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_dir_errors() {
        assert!(load_dir("/definitely/not/a/dir").is_err());
        let empty = std::env::temp_dir().join("hopi_cli_empty_test");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(load_dir(empty.to_str().unwrap()).is_err());
        std::fs::remove_dir_all(empty).ok();
    }
}
