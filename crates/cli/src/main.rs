//! `hopi` — command-line interface for the HOPI XML connection index.
//!
//! ```text
//! hopi gen   --kind dblp|inex --scale 0.01 --out DIR     generate a sample collection
//! hopi stats --dir DIR                                    Table-1 style statistics
//! hopi build --dir DIR --out FILE [--mode default|flat|old] [--frozen]
//! hopi query --dir DIR --index FILE [--explain | --ranked [--k N]] EXPR
//!                                                         evaluate a path expression
//! hopi check --dir DIR --index FILE [--samples N]         verify index vs BFS oracle
//! hopi serve --dir DIR [--index FILE] [--port N] [--threads N] [--frozen]
//! ```
//!
//! A "collection directory" is a directory of `*.xml` files; the file stem
//! is the document name used for cross-document `href` resolution.

#![forbid(unsafe_code)]

mod commands;
mod load;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "gen" => commands::generate(rest),
        "stats" => commands::stats(rest),
        "build" => commands::build(rest),
        "query" => commands::query(rest),
        "check" => commands::check(rest),
        "serve" => commands::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hopi — 2-hop connection index for XML document collections (ICDE 2005)

USAGE:
  hopi gen   --kind dblp|inex --scale F --out DIR   generate a sample collection
  hopi stats --dir DIR [--index FILE]               collection statistics (Table 1)
                                                    (--index: engine + snapshot stats)
  hopi stats --addr HOST:PORT                       a running server's health + stats
                                                    (degraded/read-only, WAL health)
  hopi stats --slow [--addr HOST:PORT]              a running server's slow-query log
                                                    (trace ids + per-stage breakdowns)
  hopi build --dir DIR --out FILE [--mode default|flat|old] [--frozen]
                                                    build and persist the index
                                                    (--frozen: CSR serving blob)
  hopi query --dir DIR --index FILE [--explain | --ranked [--k N]] EXPR
                                                    evaluate a path expression, e.g.
                                                    \"//article//sec[contains(., \\\"xml\\\")]\"
                                                    (--explain: per-step plan on stderr;
                                                    --ranked: fused distance+BM25 top-k)
  hopi check --dir DIR --index FILE [--samples N]   verify the index against a
                                                    BFS reachability oracle
  hopi serve --dir DIR [--index FILE] [--port N] [--threads N] [--frozen] [--distance]
             [--slow-threshold MS] [--queue-capacity N] [--queue-deadline MS]
                                                    serve the collection over HTTP
                                                    (--frozen: read-only; --slow-threshold:
                                                    slow-query log cutoff, default 10ms;
                                                    --queue-capacity/--queue-deadline:
                                                    admission control, overflow answers 429;
                                                    shutdown on stdin EOF or 'quit' line)";
