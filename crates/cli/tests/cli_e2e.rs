//! End-to-end CLI test: gen → stats → build → query → check, driving the
//! compiled `hopi` binary the way a user would.

use std::path::PathBuf;
use std::process::Command;

fn hopi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hopi"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hopi_cli_e2e_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow() {
    let docs = tempdir("docs");
    let index = docs.join("out.idx");

    // gen
    let out = hopi()
        .args(["gen", "--kind", "dblp", "--scale", "0.003", "--out"])
        .arg(&docs)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let xml_files = std::fs::read_dir(&docs)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "xml")
        })
        .count();
    assert!(
        xml_files > 5,
        "expected generated XML files, got {xml_files}"
    );

    // stats
    let out = hopi().args(["stats", "--dir"]).arg(&docs).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("docs"), "stats output: {text}");

    // build
    let out = hopi()
        .args(["build", "--dir"])
        .arg(&docs)
        .args(["--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(index.exists());

    // stats --index: engine + serving-snapshot statistics
    let out = hopi()
        .args(["stats", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cover entries"), "stats --index: {text}");
    assert!(text.contains("snapshot: epoch 0"), "stats --index: {text}");
    // The generated collection carries Zipf text; the term index reports it.
    assert!(text.contains("text: "), "stats --index: {text}");
    assert!(text.contains("texted elements"), "stats --index: {text}");

    // query
    let out = hopi()
        .args(["query", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .arg("//article//author")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("matches"), "query stderr: {stderr}");

    // Content-and-structure query: `term0` is the generator's hottest
    // Zipf term, so the predicate finds texted authors.
    let out = hopi()
        .args(["query", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .arg(r#"//article//author[contains(., "term0")]"#)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("matches"), "content query stderr: {stderr}");

    // query --ranked needs a distance-aware index; this one is plain, so
    // the CLI reports the typed engine error instead of panicking.
    let out = hopi()
        .args(["query", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .arg("--ranked")
        .arg("//article//author")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("distance_aware"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // query --explain: same matches, plus a per-step plan on stderr.
    let out = hopi()
        .args(["query", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .arg("--explain")
        .arg("//article//author")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("strategy="), "explain stderr: {stderr}");
    assert!(stderr.contains("step 0"), "explain stderr: {stderr}");

    // check (index vs BFS oracle)
    let out = hopi()
        .args(["check", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .args(["--samples", "5000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    std::fs::remove_dir_all(&docs).ok();
}

/// `hopi serve`: boots on a random port, answers over HTTP, and shuts
/// down gracefully when stdin closes (exit code 0).
#[test]
fn serve_boots_answers_and_shuts_down_on_stdin_eof() {
    use std::io::{BufRead, BufReader, Read, Write};

    let docs = tempdir("serve");
    std::fs::write(docs.join("a.xml"), r#"<r><x href="b"/></r>"#).unwrap();
    std::fs::write(docs.join("b.xml"), "<r><sec/></r>").unwrap();

    let mut child = hopi()
        .args(["serve", "--dir"])
        .arg(&docs)
        .args(["--port", "0", "--threads", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn hopi serve");

    // The bound address is announced on stdout once serving starts.
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            stdout.read_line(&mut line).unwrap() > 0,
            "serve exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("hopi-server listening on http://") {
            break rest.to_string();
        }
    };

    // One raw HTTP exchange: /healthz answers 200 with a JSON body.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to serve");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    stream.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "healthz: {resp}");
    assert!(resp.contains("\"ok\":true"), "healthz: {resp}");

    // Closing stdin is the graceful-shutdown signal.
    drop(child.stdin.take());
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status:?}");
    std::fs::remove_dir_all(&docs).ok();
}

#[test]
fn helpful_errors() {
    let out = hopi().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = hopi()
        .args(["stats", "--dir", "/no/such/dir"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = hopi().args(["build", "--dir"]).output().unwrap();
    assert!(!out.status.success());

    let out = hopi().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn query_parse_error_reported() {
    let docs = tempdir("parse_err");
    std::fs::write(docs.join("a.xml"), "<r/>").unwrap();
    let index = docs.join("i.idx");
    assert!(hopi()
        .args(["build", "--dir"])
        .arg(&docs)
        .args(["--out"])
        .arg(&index)
        .output()
        .unwrap()
        .status
        .success());
    let out = hopi()
        .args(["query", "--dir"])
        .arg(&docs)
        .args(["--index"])
        .arg(&index)
        .arg("not-a-path")
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&docs).ok();
}

/// `hopi serve --wal`: acked HTTP mutations survive a SIGKILL. Boots a
/// durable server, mutates, kills the process without checkpointing,
/// restarts on the same state directory, and verifies recovery.
#[test]
fn serve_wal_survives_kill_dash_nine() {
    use std::io::{BufRead, BufReader, Read, Write};

    // Keep the stdout reader alive alongside the child: dropping it would
    // close the pipe and make the server's own prints fail.
    fn spawn_durable(
        docs: &PathBuf,
        state: &PathBuf,
    ) -> (
        std::process::Child,
        String,
        BufReader<std::process::ChildStdout>,
    ) {
        let mut child = hopi()
            .args(["serve", "--dir"])
            .arg(docs)
            .args(["--wal"])
            .arg(state)
            .args(["--port", "0", "--threads", "2"])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn hopi serve --wal");
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        let addr = loop {
            line.clear();
            assert!(
                stdout.read_line(&mut line).unwrap() > 0,
                "serve exited before announcing its address"
            );
            if let Some(rest) = line.trim().strip_prefix("hopi-server listening on http://") {
                break rest.to_string();
            }
        };
        (child, addr, stdout)
    }

    fn exchange(addr: &str, request: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        resp
    }

    let docs = tempdir("wal_docs");
    let state = tempdir("wal_state");
    std::fs::write(docs.join("a.xml"), r#"<r><x href="b"/></r>"#).unwrap();
    std::fs::write(docs.join("b.xml"), "<r><sec/></r>").unwrap();

    let (mut child, addr, _stdout) = spawn_durable(&docs, &state);
    // Mutate over HTTP: insert a document citing b, and a raw link.
    let body = r#"<note><cite xlink:href="b"/></note>"#;
    let resp = exchange(
        &addr,
        &format!(
            "POST /documents?name=survivor HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "insert: {resp}");
    let resp = exchange(
        &addr,
        "POST /links?from=3&to=0 HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\
         Connection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "link: {resp}");

    // kill -9: no graceful shutdown, no checkpoint.
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Restart on the same state directory; the WAL tail replays.
    let (mut child, addr, mut stdout2) = spawn_durable(&docs, &state);
    let resp = exchange(
        &addr,
        "GET /stats HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 200"), "stats: {resp}");
    assert!(resp.contains("\"durable\":true"), "stats: {resp}");
    assert!(resp.contains("\"documents\":3"), "stats: {resp}");
    // The inserted document's root (element 4) still reaches b's sec (3)
    // through its citation, and the raw link 3 → 0 survived.
    let resp = exchange(
        &addr,
        "GET /connected?u=4&v=3 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.contains("\"connected\":true"), "doc replay: {resp}");
    let resp = exchange(
        &addr,
        "GET /connected?u=3&v=0 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.contains("\"connected\":true"), "link replay: {resp}");

    // Graceful shutdown this time (writes a checkpoint on the way out).
    drop(child.stdin.take());
    let mut rest = String::new();
    stdout2.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("checkpointed at WAL seq"), "shutdown: {rest}");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status:?}");

    std::fs::remove_dir_all(&docs).ok();
    std::fs::remove_dir_all(&state).ok();
}
