//! Document modification (paper §6.3): "HOPI can simply drop the complete
//! document and reinsert the modified version using the algorithms of the
//! previous subsections."

use crate::delete::delete_document;
use crate::insert::{insert_document, DocumentLinks};
use hopi_core::HopiIndex;
use hopi_xml::{Collection, DocId, XmlDocument};

/// Replaces document `di` with `new_doc` (drop + reinsert). `links`
/// describes the modified document's connections to the rest of the
/// collection. Returns the *new* document id (ids are never reused).
pub fn modify_document(
    collection: &mut Collection,
    index: &mut HopiIndex,
    di: DocId,
    new_doc: XmlDocument,
    links: &DocumentLinks,
) -> DocId {
    delete_document(collection, index, di);
    insert_document(collection, index, new_doc, links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::TransitiveClosure;
    use hopi_partition::{build_index, BuildConfig};

    fn assert_exact(c: &Collection, index: &HopiIndex) {
        let g = c.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        // Dead id slots are skipped: reflexive queries on deleted elements
        // are vacuously true in the cover (`u == v`), and the index contract
        // only covers live elements.
        for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
            for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
                assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn modify_restructures_document() {
        let mut c = Collection::new();
        let mut d0 = XmlDocument::new("d0", "r");
        d0.add_element(0, "s");
        c.add_document(d0);
        let mut d1 = XmlDocument::new("d1", "r");
        d1.add_element(0, "s");
        c.add_document(d1);
        c.add_link(c.global_id(0, 1), c.global_id(1, 0));
        let (mut index, _) = build_index(&c, &BuildConfig::default());

        // Restructure d1: deeper tree, now linking back to d0.
        let mut new_d1 = XmlDocument::new("d1v2", "r");
        let a = new_d1.add_element(0, "a");
        let b = new_d1.add_element(a, "b");
        let d0_s = c.global_id(0, 1);
        let new_id = modify_document(
            &mut c,
            &mut index,
            1,
            new_d1,
            &DocumentLinks {
                outgoing: vec![(b, 0)], // back link to d0 root
                incoming: vec![(d0_s, 0)],
            },
        );
        assert_eq!(new_id, 2);
        assert_eq!(c.doc_count(), 2);
        assert_exact(&c, &index);
        // The back link closed a cycle: d0 root reaches itself via d1v2.
        assert!(index.connected(c.global_id(new_id, 0), 0));
        index.cover().check_invariants();
    }

    #[test]
    fn modify_isolated_document() {
        let mut c = Collection::new();
        c.add_document(XmlDocument::new("solo", "r"));
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let mut v2 = XmlDocument::new("solo-v2", "r");
        v2.add_element(0, "extra");
        let new_id = modify_document(&mut c, &mut index, 0, v2, &DocumentLinks::default());
        assert_eq!(c.doc_count(), 1);
        assert!(index.connected(c.global_id(new_id, 0), c.global_id(new_id, 1)));
        assert_exact(&c, &index);
    }
}
