//! Deletions (paper §6.2).
//!
//! Deleting a document `d_i` must remove exactly the connections that have
//! *no* remaining path — "even if the center for a connection is in
//! `V_E(d_i)`, there may be another path between these nodes", and
//! conversely connections may die whose center survives. Two algorithms:
//!
//! * **Theorem 2 (fast)** — applicable when `d_i` *separates* the
//!   document-level graph: every ancestor document reaches every descendant
//!   document only through `d_i`. Then every `VA → VD` connection dies with
//!   `d_i`, and it suffices to strip `V_di ∪ VD` from the `Lout` labels of
//!   `VA` and `V_di ∪ VA` from the `Lin` labels of `VD`.
//! * **Theorem 3 (general)** — recompute a *partial* closure `Ĉ` seeded at
//!   the element-level ancestors `A_di` of the deleted elements, build a
//!   cover `L̂` over it, and splice: `L'out(a) := L̂out(a)` for `a ∈ A_di`,
//!   `L'in(d) := (Lin(d) \ A_di) ∪ L̂in(d)` for `d ∈ D_di`.
//!
//! Single-link deletion reuses the Theorem 3 scheme with the link endpoints
//! in place of the document.

use hopi_core::HopiIndex;
use hopi_core::{CoverBuilder, TwoHopCover};
use hopi_graph::closure::partial_closure;
use hopi_graph::{traversal, FixedBitSet, TransitiveClosure};
use hopi_xml::{Collection, DocId, ElemId};
use rustc_hash::FxHashSet;

/// Which deletion algorithm ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeletionAlgorithm {
    /// Theorem 2: the document separated the document-level graph.
    FastSeparator,
    /// Theorem 3: partial closure recomputation.
    General,
}

/// Result of a document deletion.
#[derive(Clone, Debug)]
pub struct DeletionOutcome {
    /// Algorithm used.
    pub algorithm: DeletionAlgorithm,
    /// Label entries removed (net change can differ: General also adds).
    pub entries_removed: usize,
    /// Seed count of the partial recomputation (General only).
    pub recompute_seeds: usize,
}

/// Does `d_i` separate the document-level graph? (paper §6.2)
///
/// True iff after removing `d_i` no (proper) ancestor document can reach any
/// (proper) descendant document. "The separation criterion serves as an
/// efficient test for whether we can simply drop the deleted document or
/// need to take additional measures" — cost is two BFS passes over `G_D`.
pub fn separates(collection: &Collection, di: DocId) -> bool {
    let (mut gd, _) = collection.document_graph();
    if !gd.is_alive(di) {
        return true;
    }
    let anc = {
        let mut a = traversal::reaching_to(&gd, di);
        a.remove(di);
        a
    };
    let desc = {
        let mut d = traversal::reachable_from(&gd, di);
        d.remove(di);
        d
    };
    if anc.is_empty() || desc.is_empty() {
        return true;
    }
    // A document that is both ancestor and descendant (cycle through d_i)
    // trivially keeps an ancestor→descendant connection (itself).
    if anc.intersects(&desc) {
        return false;
    }
    gd.remove_node(di);
    let reached = traversal::reachable_from_many(&gd, anc.iter());
    !reached.intersects(&desc)
}

/// Deletes a document, dispatching to the Theorem 2 fast path when the
/// separator test passes and to the Theorem 3 general algorithm otherwise.
pub fn delete_document(
    collection: &mut Collection,
    index: &mut HopiIndex,
    di: DocId,
) -> DeletionOutcome {
    if separates(collection, di) {
        delete_document_fast(collection, index, di)
    } else {
        delete_document_general(collection, index, di)
    }
}

/// Theorem 2 fast deletion. Caller must have verified [`separates`].
pub fn delete_document_fast(
    collection: &mut Collection,
    index: &mut HopiIndex,
    di: DocId,
) -> DeletionOutcome {
    let before = index.size();
    let (gd, _) = collection.document_graph();
    let mut anc_docs = traversal::reaching_to(&gd, di);
    anc_docs.remove(di);
    let mut desc_docs = traversal::reachable_from(&gd, di);
    desc_docs.remove(di);

    let vdi = elements_of_doc(collection, di);
    let va = elements_of_docs(collection, &anc_docs);
    let vd = elements_of_docs(collection, &desc_docs);

    let cover = index.cover_mut();
    // Strip V_di ∪ VD centers from Lout of every a ∈ VA.
    for &a in &va {
        cover.retain_out(a, |c| !vdi.contains(&c) && !vd.contains(&c));
    }
    // Strip V_di ∪ VA centers from Lin of every d ∈ VD.
    for &d in &vd {
        cover.retain_in(d, |c| !vdi.contains(&c) && !va.contains(&c));
    }
    // Drop the deleted elements' own labels and all their occurrences as
    // centers anywhere else.
    for &e in &vdi {
        cover.purge_node(e);
    }
    collection.remove_document(di);
    DeletionOutcome {
        algorithm: DeletionAlgorithm::FastSeparator,
        entries_removed: before - index.size(),
        recompute_seeds: 0,
    }
}

/// Theorem 3 general deletion: partial closure recomputation from the
/// element-level ancestors of the deleted elements.
pub fn delete_document_general(
    collection: &mut Collection,
    index: &mut HopiIndex,
    di: DocId,
) -> DeletionOutcome {
    let vdi = elements_of_doc(collection, di);
    let vdi_set: FxHashSet<ElemId> = vdi.iter().copied().collect();
    delete_general_impl(collection, index, &vdi_set, |collection| {
        collection.remove_document(di);
    })
}

/// Deletes a single inter-document link, updating the index with the same
/// partial-recomputation scheme ("a similar algorithm can be applied for
/// deleting a single edge from the index").
pub fn delete_link(
    collection: &mut Collection,
    index: &mut HopiIndex,
    from: ElemId,
    to: ElemId,
) -> DeletionOutcome {
    // Treat the link source as the "deleted region": connections that may
    // die all pass through `from → to`.
    let affected: FxHashSet<ElemId> = [from, to].into_iter().collect();
    delete_general_impl(collection, index, &affected, |collection| {
        collection.remove_link(from, to);
    })
}

/// Shared Theorem 3 machinery.
///
/// `affected` is the element set whose incident connections may die (the
/// deleted document's elements, or a deleted link's endpoints);
/// `apply_removal` performs the structural change on the collection.
/// Elements in `affected` that survive the removal keep their labels
/// refreshed; elements that die are purged.
fn delete_general_impl(
    collection: &mut Collection,
    index: &mut HopiIndex,
    affected: &FxHashSet<ElemId>,
    apply_removal: impl FnOnce(&mut Collection),
) -> DeletionOutcome {
    let before = index.size();

    // A_di / D_di: ancestors and descendants of the affected elements under
    // the *old* cover (paper: "A_di := {a | ∃v ∈ V_E(d_i): (a,v) ∈ T}";
    // V_E(d_i) itself is included there, we track it via `affected`).
    let cover = index.cover_mut();
    let mut a_di: FxHashSet<ElemId> = FxHashSet::default();
    let mut d_di: FxHashSet<ElemId> = FxHashSet::default();
    for &e in affected {
        a_di.extend(cover.ancestors(e));
        d_di.extend(cover.descendants(e));
    }

    // Structural removal, then the surviving graph G'.
    apply_removal(collection);
    let g = collection.element_graph();
    let dead = |e: ElemId| !g.is_alive(e);

    // Partial closure Ĉ from the surviving seeds.
    let seeds: Vec<ElemId> = a_di.iter().copied().filter(|&e| !dead(e)).collect();
    let rows = partial_closure(&g, &seeds);

    // Synthetic closure: full rows for seeds, reflexive rows elsewhere.
    let n = g.id_bound();
    let mut desc_rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
    let alive: Vec<bool> = (0..n as u32).map(|e| g.is_alive(e)).collect();
    for (&s, row) in &rows {
        desc_rows[s as usize] = row.clone();
    }
    let partial = TransitiveClosure::from_desc_rows(desc_rows, alive);
    let hat: TwoHopCover = CoverBuilder::new(&partial).build();

    let cover = index.cover_mut();
    // Purge dead elements entirely.
    for &e in affected {
        if dead(e) {
            cover.purge_node(e);
        }
    }
    // L' := L ∪ L̂ …
    cover.merge(&hat);
    // … except: L'out(a) := L̂out(a) for a ∈ A_di,
    for &a in &a_di {
        if dead(a) {
            continue;
        }
        cover.set_lout(a, hat.lout(a));
    }
    // … and L'in(d) := (Lin(d) \ A_di) ∪ L̂in(d) for d ∈ D_di.
    for &d in &d_di {
        if dead(d) {
            continue;
        }
        let hat_lin: FxHashSet<ElemId> = hat.lin(d).iter().copied().collect();
        cover.retain_in(d, |c| !a_di.contains(&c) || hat_lin.contains(&c));
    }
    DeletionOutcome {
        algorithm: DeletionAlgorithm::General,
        entries_removed: before.saturating_sub(index.size()),
        recompute_seeds: seeds.len(),
    }
}

fn elements_of_doc(collection: &Collection, d: DocId) -> Vec<ElemId> {
    let doc = collection.document(d).expect("live document");
    let base = collection.global_id(d, 0);
    (0..doc.len() as u32).map(|l| base + l).collect()
}

fn elements_of_docs(collection: &Collection, docs: &FixedBitSet) -> FxHashSet<ElemId> {
    let mut out = FxHashSet::default();
    for d in docs.iter() {
        if collection.document(d).is_some() {
            out.extend(elements_of_doc(collection, d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_partition::{build_index, BuildConfig};
    use hopi_xml::generator::{random_collection, RandomConfig};
    use hopi_xml::XmlDocument;

    fn assert_exact(c: &Collection, index: &HopiIndex) {
        let g = c.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        // Dead id slots are skipped: reflexive queries on deleted elements
        // are vacuously true in the cover (`u == v`), and the index contract
        // only covers live elements.
        for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
            for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
                assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
            }
        }
    }

    /// Figure 6 shape: 1 -> 2 -> 3 chain of documents; 2 separates.
    /// Extra pair 4 -> 5 -> 6 with a bypass 4 -> 6: 5 does not separate.
    fn figure6() -> Collection {
        let mut c = Collection::new();
        for i in 0..7 {
            let mut d = XmlDocument::new(format!("d{i}"), "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        let link = |c: &mut Collection, a: u32, b: u32| {
            let from = c.global_id(a, 1);
            let to = c.global_id(b, 0);
            c.add_link(from, to);
        };
        link(&mut c, 1, 2);
        link(&mut c, 2, 3);
        link(&mut c, 4, 5);
        link(&mut c, 5, 6);
        link(&mut c, 4, 6); // bypass
        c
    }

    #[test]
    fn separator_test_matches_figure_6() {
        let c = figure6();
        assert!(separates(&c, 2), "doc 2 separates the chain");
        assert!(!separates(&c, 5), "doc 5 is bypassed");
        assert!(separates(&c, 0), "isolated doc trivially separates");
        assert!(separates(&c, 1), "no ancestors → separates");
        assert!(separates(&c, 3), "no descendants → separates");
    }

    #[test]
    fn separator_false_on_cycles() {
        let mut c = figure6();
        // close a cycle 3 -> 1 through new link; now 2 sits on a cycle.
        let from = c.global_id(3, 1);
        let to = c.global_id(1, 0);
        c.add_link(from, to);
        assert!(!separates(&c, 2));
    }

    #[test]
    fn fast_delete_separator_document() {
        let mut c = figure6();
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let outcome = delete_document(&mut c, &mut index, 2);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::FastSeparator);
        assert_exact(&c, &index);
        index.cover().check_invariants();
        assert!(outcome.entries_removed > 0);
    }

    #[test]
    fn general_delete_bypassed_document() {
        let mut c = figure6();
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let outcome = delete_document(&mut c, &mut index, 5);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::General);
        assert!(outcome.recompute_seeds > 0);
        // 4 must still reach 6 via the bypass.
        assert!(index.connected(c.global_id(4, 0), c.global_id(6, 0)));
        assert_exact(&c, &index);
        index.cover().check_invariants();
    }

    #[test]
    fn general_delete_on_cycle_member() {
        let mut c = figure6();
        let from = c.global_id(3, 1);
        let to = c.global_id(1, 0);
        c.add_link(from, to);
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let outcome = delete_document(&mut c, &mut index, 2);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::General);
        assert_exact(&c, &index);
    }

    #[test]
    fn delete_isolated_document() {
        let mut c = figure6();
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let outcome = delete_document(&mut c, &mut index, 0);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::FastSeparator);
        assert_exact(&c, &index);
    }

    #[test]
    fn delete_link_with_bypass() {
        let mut c = figure6();
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        // Delete 4 -> 6 bypass: 4 still reaches 6 via 5.
        let from = c.global_id(4, 1);
        let to = c.global_id(6, 0);
        // figure6 adds 4->6 with source (4,1)? No: bypass used (4,1)->(6,0)
        // same as 4->5 source. Both links share the source element.
        delete_link(&mut c, &mut index, from, to);
        assert!(index.connected(c.global_id(4, 0), c.global_id(6, 0)));
        assert_exact(&c, &index);
    }

    #[test]
    fn delete_link_severs_unique_path() {
        let mut c = figure6();
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let from = c.global_id(1, 1);
        let to = c.global_id(2, 0);
        delete_link(&mut c, &mut index, from, to);
        assert!(!index.connected(c.global_id(1, 0), c.global_id(3, 0)));
        assert_exact(&c, &index);
        index.cover().check_invariants();
    }

    #[test]
    fn random_deletion_storm_stays_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        let mut c = random_collection(&RandomConfig {
            num_docs: 14,
            elements_range: (2, 6),
            num_links: 22,
            num_intra_links: 5,
            allow_cycles: true,
            seed: 77,
            text: Default::default(),
        });
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        let mut live: Vec<DocId> = c.doc_ids().collect();
        for _ in 0..8 {
            let pick = live.remove(rng.gen_range(0..live.len()));
            delete_document(&mut c, &mut index, pick);
            assert_exact(&c, &index);
            index.cover().check_invariants();
            if live.len() <= 2 {
                break;
            }
        }
    }
}
