//! Online operation: serving queries 24×7 while maintaining and rebuilding
//! the index.
//!
//! Paper §1.1: "This is an important issue because of the need for 24x7
//! availability in virtually all applications (e.g., in business portals or
//! intranet search engines) so that indexes need to be built without
//! interrupting the service of queries. It matters whether an index can be
//! built within an hour in a background process with small memory
//! consumption and little interference with concurrent queries…"
//!
//! [`OnlineIndex`] wraps a collection + HOPI index behind a reader/writer
//! lock (`parking_lot`): reads are concurrent and lock-free of each other;
//! incremental updates take the write lock briefly; and
//! [`OnlineIndex::rebuild_in_background`] runs the full §4 build pipeline on
//! a *snapshot* outside the lock, swapping the fresh index in atomically —
//! queries keep being served from the old index for the entire build and
//! never observe a half-built state. Updates arriving mid-rebuild are
//! queued and replayed incrementally onto the fresh index before the swap.

use crate::delete::delete_document;
use crate::insert::{insert_document, insert_link, DocumentLinks};
use hopi_core::HopiIndex;
use hopi_partition::{build_index, BuildConfig, BuildReport};
use hopi_xml::{Collection, DocId, ElemId, XmlDocument};
use parking_lot::RwLock;
use std::sync::Arc;

/// One collection-level update, as captured while a background rebuild is
/// running and replayed onto the fresh index before the swap.
pub enum CollectionUpdate {
    /// A link was inserted between two pre-existing documents.
    InsertLink(ElemId, ElemId),
    /// A document was inserted, with its links.
    InsertDocument(XmlDocument, DocumentLinks),
    /// A document was deleted.
    DeleteDocument(DocId),
}

struct State {
    collection: Collection,
    index: HopiIndex,
}

/// A concurrently queryable HOPI deployment with non-blocking rebuilds.
#[derive(Clone)]
pub struct OnlineIndex {
    state: Arc<RwLock<State>>,
}

impl OnlineIndex {
    /// Builds the initial index and wraps everything for online use.
    pub fn new(collection: Collection, config: &BuildConfig) -> (Self, BuildReport) {
        let (index, report) = build_index(&collection, config);
        (
            OnlineIndex {
                state: Arc::new(RwLock::new(State { collection, index })),
            },
            report,
        )
    }

    /// Concurrent reachability query.
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.state.read().index.connected(u, v)
    }

    /// Concurrent descendant enumeration.
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.state.read().index.descendants(u)
    }

    /// Current cover size.
    pub fn size(&self) -> usize {
        self.state.read().index.size()
    }

    /// Runs a closure under the read lock with access to collection and
    /// index (for multi-call consistency).
    pub fn read<R>(&self, f: impl FnOnce(&Collection, &HopiIndex) -> R) -> R {
        let guard = self.state.read();
        f(&guard.collection, &guard.index)
    }

    /// Incremental link insertion (brief write lock). Duplicate links are
    /// a no-op (`Ok(0)`); invalid endpoints come back as
    /// [`crate::insert::LinkError`].
    pub fn insert_link(&self, from: ElemId, to: ElemId) -> Result<usize, crate::LinkError> {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        insert_link(collection, index, from, to)
    }

    /// Incremental document insertion (brief write lock). Returns the new
    /// document id.
    pub fn insert_document(&self, doc: XmlDocument, links: &DocumentLinks) -> DocId {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        insert_document(collection, index, doc, links)
    }

    /// Incremental document deletion (brief write lock).
    pub fn delete_document(&self, d: DocId) {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        delete_document(collection, index, d);
    }

    /// Rebuilds the index in a background thread from a snapshot of the
    /// collection, then swaps it in atomically. Queries continue against
    /// the old index during the build; updates arriving mid-build are
    /// replayed incrementally onto the fresh index before the swap.
    ///
    /// Returns a join handle yielding the fresh build's report.
    pub fn rebuild_in_background(
        &self,
        config: BuildConfig,
    ) -> std::thread::JoinHandle<BuildReport> {
        let this = self.clone();
        std::thread::spawn(move || this.rebuild_blocking(&config))
    }

    /// The rebuild body (also callable synchronously): snapshot → build
    /// outside the lock → catch up on concurrent updates → swap.
    pub fn rebuild_blocking(&self, config: &BuildConfig) -> BuildReport {
        // 1. Snapshot under the read lock.
        let snapshot = self.state.read().collection.clone();
        let snapshot_links: rustc_hash::FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();
        let snapshot_docs: Vec<DocId> = snapshot.doc_ids().collect();

        // 2. Build outside any lock — "in a background process … with
        // little interference with concurrent queries".
        let (mut fresh, report) = build_index(&snapshot, config);

        // 3. Swap under the write lock, replaying the delta between the
        // snapshot and the live collection onto the fresh index.
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        let delta = collection_delta(&snapshot_docs, &snapshot_links, collection);
        if !delta_replays_exactly(&snapshot, collection, &delta) {
            // Rare: the window contained updates whose replay would not
            // reproduce the live id assignment (a document created *and*
            // deleted mid-build, or a link between two mid-build
            // documents). Fall back to rebuilding from the live
            // collection — still a consistent swap, just under the lock.
            let (rebuilt, report) = build_index(collection, config);
            *index = rebuilt;
            return report;
        }
        let mut fresh_collection = snapshot;
        for update in delta {
            match update {
                CollectionUpdate::InsertLink(f, t) => {
                    insert_link(&mut fresh_collection, &mut fresh, f, t)
                        .expect("replayed link endpoints are live");
                }
                CollectionUpdate::InsertDocument(doc, links) => {
                    insert_document(&mut fresh_collection, &mut fresh, doc, &links);
                }
                CollectionUpdate::DeleteDocument(d) => {
                    delete_document(&mut fresh_collection, &mut fresh, d);
                }
            }
        }
        *index = fresh;
        report
    }
}

/// Would replaying `delta` onto `snapshot` reproduce the live collection's
/// id assignment exactly?
///
/// Replay appends inserted documents in order, so ids and element bases
/// stay aligned with the live collection only if live's post-snapshot
/// documents are exactly that appended sequence (no holes left by
/// documents created *and* deleted during the window) and no inserted
/// document links to a document appended after it. When this returns
/// `false`, replaying would corrupt or fail — rebuild from the live
/// collection instead.
pub fn delta_replays_exactly(
    snapshot: &Collection,
    live: &Collection,
    delta: &[CollectionUpdate],
) -> bool {
    let mut available: rustc_hash::FxHashSet<DocId> = snapshot.doc_ids().collect();
    let mut next_doc = snapshot.doc_id_bound() as DocId;
    let mut next_elem = snapshot.elem_id_bound() as ElemId;
    for update in delta {
        match update {
            CollectionUpdate::DeleteDocument(d) => {
                available.remove(d);
            }
            CollectionUpdate::InsertLink(from, to) => {
                let ok = [*from, *to]
                    .into_iter()
                    .all(|e| live.doc_of(e).is_some_and(|d| available.contains(&d)));
                if !ok {
                    return false;
                }
            }
            CollectionUpdate::InsertDocument(doc, links) => {
                // Replay will assign id `next_doc` and element base
                // `next_elem`; live must agree.
                let live_doc = match live.document(next_doc) {
                    Some(d) => d,
                    None => return false,
                };
                if live_doc.len() != doc.len() || live.global_id(next_doc, 0) != next_elem {
                    return false;
                }
                // Every linked-to document must already exist at replay
                // time.
                let endpoint_ok =
                    |e: ElemId| live.doc_of(e).is_some_and(|d| available.contains(&d));
                if !links.outgoing.iter().all(|&(_, t)| endpoint_ok(t))
                    || !links.incoming.iter().all(|&(s, _)| endpoint_ok(s))
                {
                    return false;
                }
                available.insert(next_doc);
                next_doc += 1;
                next_elem += doc.len() as ElemId;
            }
        }
    }
    next_doc as usize == live.doc_id_bound() && next_elem as usize == live.elem_id_bound()
}

/// Computes the update sequence that transforms the snapshot into the live
/// collection: deleted documents, inserted documents (with their links),
/// and new links between pre-existing documents. `snapshot_docs` and
/// `snapshot_links` describe the snapshot's live documents and links.
pub fn collection_delta(
    snapshot_docs: &[DocId],
    snapshot_links: &rustc_hash::FxHashSet<(ElemId, ElemId)>,
    live: &Collection,
) -> Vec<CollectionUpdate> {
    let mut updates = Vec::new();
    // Deletions: snapshot docs no longer live.
    for &d in snapshot_docs {
        if live.document(d).is_none() {
            updates.push(CollectionUpdate::DeleteDocument(d));
        }
    }
    // Insertions: live docs beyond the snapshot (ids are never reused, so
    // any doc id not in the snapshot list is new).
    let snapshot_set: rustc_hash::FxHashSet<DocId> = snapshot_docs.iter().copied().collect();
    for d in live.doc_ids() {
        if !snapshot_set.contains(&d) {
            let doc = live.document(d).expect("live doc").clone();
            let base = live.global_id(d, 0);
            let len = doc.len() as u32;
            let mut links = DocumentLinks::default();
            for l in live.links() {
                if (base..base + len).contains(&l.from) {
                    links.outgoing.push((l.from - base, l.to));
                } else if (base..base + len).contains(&l.to) {
                    links.incoming.push((l.from, l.to - base));
                }
            }
            updates.push(CollectionUpdate::InsertDocument(doc, links));
        }
    }
    // New links between pre-existing documents.
    for l in live.links() {
        let fd = live.doc_of(l.from).expect("live");
        let td = live.doc_of(l.to).expect("live");
        if snapshot_set.contains(&fd)
            && snapshot_set.contains(&td)
            && !snapshot_links.contains(&(l.from, l.to))
        {
            updates.push(CollectionUpdate::InsertLink(l.from, l.to));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::TransitiveClosure;
    use hopi_xml::generator::{dblp, DblpConfig};

    fn assert_exact(online: &OnlineIndex) {
        online.read(|c, index| {
            let g = c.element_graph();
            let tc = TransitiveClosure::from_graph(&g);
            for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
                for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
                    assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
                }
            }
        });
    }

    /// Builds the delta for a snapshot/live pair the way
    /// `rebuild_blocking` does.
    fn delta_of(snapshot: &Collection, live: &Collection) -> Vec<CollectionUpdate> {
        let docs: Vec<DocId> = snapshot.doc_ids().collect();
        let links: rustc_hash::FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();
        collection_delta(&docs, &links, live)
    }

    fn two_doc_snapshot() -> Collection {
        let mut c = Collection::new();
        for name in ["a", "b"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        c
    }

    #[test]
    fn plain_delta_replays_exactly() {
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let mut doc = XmlDocument::new("new", "r");
        doc.add_element(0, "s");
        let d = live.add_document(doc);
        live.add_link(live.global_id(d, 1), live.global_id(0, 0));
        live.add_link(live.global_id(1, 0), live.global_id(0, 1));
        let delta = delta_of(&snapshot, &live);
        assert!(delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn hole_from_mid_window_delete_is_detected() {
        // A document created *and* deleted during the window leaves a doc
        // id (and element id) hole replay cannot reproduce.
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let ghost = live.add_document(XmlDocument::new("ghost", "r"));
        let keeper = live.add_document(XmlDocument::new("keeper", "r"));
        live.remove_document(ghost);
        let delta = delta_of(&snapshot, &live);
        assert!(!delta_replays_exactly(&snapshot, &live, &delta));
        let _ = keeper;
    }

    #[test]
    fn forward_link_between_new_documents_is_detected() {
        // A link from one mid-window document to a later one cannot be
        // applied while replaying the first insertion.
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let x = live.add_document(XmlDocument::new("x", "r"));
        let y = live.add_document(XmlDocument::new("y", "r"));
        live.add_link(live.global_id(x, 0), live.global_id(y, 0));
        let delta = delta_of(&snapshot, &live);
        assert!(!delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn fallback_rebuild_after_unreplayable_window() {
        // Force the unreplayable shape through the real API: snapshot is
        // taken by rebuild_blocking itself, so simulate by mutating between
        // two rebuilds — insert + delete leaves the hole in the live
        // collection relative to the *next* snapshot... which is replayable;
        // instead drive rebuild_blocking directly on a state containing a
        // hole and verify it stays exact.
        let c = two_doc_snapshot();
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let ghost =
            online.insert_document(XmlDocument::new("ghost", "r"), &DocumentLinks::default());
        online.delete_document(ghost);
        online.rebuild_blocking(&BuildConfig::default());
        assert_exact(&online);
    }

    #[test]
    fn serves_queries_and_updates() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let mut doc = XmlDocument::new("fresh", "r");
        doc.add_element(0, "s");
        let target = online.read(|c, _| c.global_id(0, 0));
        let d = online.insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(1, target)],
                incoming: vec![],
            },
        );
        let new_root = online.read(|c, _| c.global_id(d, 0));
        assert!(online.connected(new_root, target));
        assert_exact(&online);
        online.delete_document(d);
        assert_exact(&online);
    }

    #[test]
    fn rebuild_catches_up_with_concurrent_updates() {
        let c = dblp(&DblpConfig::scaled(0.003));
        let (online, first) = OnlineIndex::new(c, &BuildConfig::default());
        // Degrade the cover with churn.
        let docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        for i in 0..15 {
            let a = docs[i % docs.len()];
            let b = docs[(i * 7 + 1) % docs.len()];
            if a != b {
                let (from, to) = online.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                online.insert_link(from, to).unwrap();
            }
        }
        // Kick off the background rebuild, then keep updating while it runs.
        let handle = online.rebuild_in_background(BuildConfig::default());
        let mut doc = XmlDocument::new("mid-rebuild", "r");
        doc.add_element(0, "s");
        let target = online.read(|c, _| c.global_id(docs[0], 0));
        let d = online.insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(1, target)],
                incoming: vec![],
            },
        );
        // Queries are served throughout.
        assert!(online.connected(online.read(|c, _| c.global_id(d, 0)), target));
        let report = handle.join().expect("rebuild thread");
        assert!(report.cover_size > 0);
        // After the swap the index reflects every update, including the
        // document inserted mid-rebuild.
        assert!(online.connected(online.read(|c, _| c.global_id(d, 0)), target));
        assert_exact(&online);
        let _ = first;
    }

    #[test]
    fn rebuild_shrinks_churned_cover() {
        let c = dblp(&DblpConfig::scaled(0.003));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        for i in 0..40 {
            let a = docs[(i * 3) % docs.len()];
            let b = docs[(i * 11 + 2) % docs.len()];
            if a != b {
                let (from, to) = online.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                online.insert_link(from, to).unwrap();
            }
        }
        let churned = online.size();
        online.rebuild_blocking(&BuildConfig::default());
        assert!(
            online.size() < churned,
            "rebuild {} !< churned {churned}",
            online.size()
        );
        assert_exact(&online);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let n = online.read(|c, _| c.elem_id_bound() as u32);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let online = online.clone();
                scope.spawn(move || {
                    for i in 0..500u32 {
                        let u = (i * 37 + t) % n;
                        let v = (i * 61 + t * 13) % n;
                        let _ = online.connected(u, v);
                    }
                });
            }
            let writer = online.clone();
            scope.spawn(move || {
                let docs: Vec<DocId> = writer.read(|c, _| c.doc_ids().collect());
                for i in 0..10 {
                    let a = docs[i % docs.len()];
                    let b = docs[(i + 1) % docs.len()];
                    if a != b {
                        let (from, to) = writer.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                        writer.insert_link(from, to).unwrap();
                    }
                }
            });
        });
        assert_exact(&online);
    }
}
