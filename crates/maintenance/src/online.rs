//! Online operation: serving queries 24×7 while maintaining and rebuilding
//! the index.
//!
//! Paper §1.1: "This is an important issue because of the need for 24x7
//! availability in virtually all applications (e.g., in business portals or
//! intranet search engines) so that indexes need to be built without
//! interrupting the service of queries. It matters whether an index can be
//! built within an hour in a background process with small memory
//! consumption and little interference with concurrent queries…"
//!
//! [`OnlineIndex`] wraps a collection + HOPI index behind a reader/writer
//! lock (`parking_lot`): reads are concurrent and lock-free of each other;
//! incremental updates take the write lock briefly; and
//! [`OnlineIndex::rebuild_in_background`] runs the full §4 build pipeline on
//! a *snapshot* outside the lock, swapping the fresh index in atomically —
//! queries keep being served from the old index for the entire build and
//! never observe a half-built state. Updates arriving mid-rebuild are
//! queued and replayed incrementally onto the fresh index before the swap.

use crate::delete::delete_document;
use crate::insert::{insert_document, insert_link, DocumentLinks};
use hopi_core::HopiIndex;
use hopi_partition::{build_index, BuildConfig, BuildReport};
use hopi_xml::{Collection, DocId, ElemId, XmlDocument};
use parking_lot::RwLock;
use std::sync::Arc;

/// One collection-level update: the vocabulary shared by mid-rebuild
/// catch-up replay (captured while a background rebuild runs, replayed
/// onto the fresh index before the swap) and the durable write-ahead log
/// (`hopi_store::wal::WalRecord` is its persisted twin).
pub enum CollectionUpdate {
    /// A link was inserted between two pre-existing documents.
    InsertLink(ElemId, ElemId),
    /// An inter-document link was deleted.
    DeleteLink(ElemId, ElemId),
    /// A document was inserted, with its links.
    InsertDocument(XmlDocument, DocumentLinks),
    /// A document was deleted.
    DeleteDocument(DocId),
    /// A document was replaced by a new version (drop + reinsert, paper
    /// §6.3; the replacement is assigned a fresh document id).
    ModifyDocument(DocId, XmlDocument, DocumentLinks),
}

struct State {
    collection: Collection,
    index: HopiIndex,
}

/// A concurrently queryable HOPI deployment with non-blocking rebuilds.
#[derive(Clone)]
pub struct OnlineIndex {
    state: Arc<RwLock<State>>,
}

impl OnlineIndex {
    /// Builds the initial index and wraps everything for online use.
    pub fn new(collection: Collection, config: &BuildConfig) -> (Self, BuildReport) {
        let (index, report) = build_index(&collection, config);
        (
            OnlineIndex {
                state: Arc::new(RwLock::new(State { collection, index })),
            },
            report,
        )
    }

    /// Concurrent reachability query.
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.state.read().index.connected(u, v)
    }

    /// Concurrent descendant enumeration.
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.state.read().index.descendants(u)
    }

    /// Current cover size.
    pub fn size(&self) -> usize {
        self.state.read().index.size()
    }

    /// Runs a closure under the read lock with access to collection and
    /// index (for multi-call consistency).
    pub fn read<R>(&self, f: impl FnOnce(&Collection, &HopiIndex) -> R) -> R {
        let guard = self.state.read();
        f(&guard.collection, &guard.index)
    }

    /// Incremental link insertion (brief write lock). Duplicate links are
    /// a no-op (`Ok(0)`); invalid endpoints come back as
    /// [`crate::insert::LinkError`].
    pub fn insert_link(&self, from: ElemId, to: ElemId) -> Result<usize, crate::LinkError> {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        insert_link(collection, index, from, to)
    }

    /// Incremental document insertion (brief write lock). Returns the new
    /// document id.
    pub fn insert_document(&self, doc: XmlDocument, links: &DocumentLinks) -> DocId {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        insert_document(collection, index, doc, links)
    }

    /// Incremental document deletion (brief write lock).
    pub fn delete_document(&self, d: DocId) {
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        delete_document(collection, index, d);
    }

    /// Rebuilds the index in a background thread from a snapshot of the
    /// collection, then swaps it in atomically. Queries continue against
    /// the old index during the build; updates arriving mid-build are
    /// replayed incrementally onto the fresh index before the swap.
    ///
    /// Returns a join handle yielding the fresh build's report.
    pub fn rebuild_in_background(
        &self,
        config: BuildConfig,
    ) -> std::thread::JoinHandle<BuildReport> {
        let this = self.clone();
        std::thread::spawn(move || this.rebuild_blocking(&config))
    }

    /// The rebuild body (also callable synchronously): snapshot → build
    /// outside the lock → catch up on concurrent updates → swap.
    pub fn rebuild_blocking(&self, config: &BuildConfig) -> BuildReport {
        // 1. Snapshot under the read lock.
        let snapshot = self.state.read().collection.clone();
        let snapshot_links: rustc_hash::FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();
        let snapshot_docs: Vec<DocId> = snapshot.doc_ids().collect();

        // 2. Build outside any lock — "in a background process … with
        // little interference with concurrent queries".
        let (mut fresh, report) = build_index(&snapshot, config);

        // 3. Swap under the write lock, replaying the delta between the
        // snapshot and the live collection onto the fresh index.
        let mut guard = self.state.write();
        let State { collection, index } = &mut *guard;
        let delta = collection_delta(&snapshot_docs, &snapshot_links, collection);
        if !delta_replays_exactly(&snapshot, collection, &delta) {
            // Rare: the window contained updates whose replay would not
            // reproduce the live id assignment (a document created *and*
            // deleted mid-build, or a link between two mid-build
            // documents). Fall back to rebuilding from the live
            // collection — still a consistent swap, just under the lock.
            let (rebuilt, report) = build_index(collection, config);
            *index = rebuilt;
            return report;
        }
        let mut fresh_collection = snapshot;
        for update in delta {
            if apply_update(&mut fresh_collection, &mut fresh, update).is_err() {
                // A surprising delta (endpoints that are not live, a
                // missing link, …) must never panic the rebuild thread:
                // fall back to the in-lock rebuild from the live
                // collection, which is always consistent.
                let (rebuilt, report) = build_index(collection, config);
                *index = rebuilt;
                return report;
            }
        }
        *index = fresh;
        report
    }
}

/// Applies one replayed update to a collection/index pair, reporting
/// (instead of panicking on) updates that do not fit the current state —
/// the caller falls back to a full rebuild.
pub fn apply_update(
    collection: &mut Collection,
    index: &mut HopiIndex,
    update: CollectionUpdate,
) -> Result<(), String> {
    match update {
        CollectionUpdate::InsertLink(f, t) => insert_link(collection, index, f, t)
            .map(|_| ())
            .map_err(|e| format!("insert link {f} → {t}: {e:?}")),
        CollectionUpdate::DeleteLink(f, t) => {
            if !collection.has_link(f, t) {
                return Err(format!("delete link {f} → {t}: no such link"));
            }
            crate::delete::delete_link(collection, index, f, t);
            Ok(())
        }
        CollectionUpdate::InsertDocument(doc, links) => {
            validate_links(collection, &doc, &links)?;
            insert_document(collection, index, doc, &links);
            Ok(())
        }
        CollectionUpdate::DeleteDocument(d) => {
            if collection.document(d).is_none() {
                return Err(format!("delete document {d}: not live"));
            }
            delete_document(collection, index, d);
            Ok(())
        }
        CollectionUpdate::ModifyDocument(d, new_doc, links) => {
            if collection.document(d).is_none() {
                return Err(format!("modify document {d}: not live"));
            }
            let endpoint_outside = |e: ElemId| match collection.doc_of(e) {
                Some(owner) if owner != d => Ok(()),
                Some(_) => Err(format!("modify document {d}: link endpoint {e} inside it")),
                None => Err(format!("modify document {d}: dead link endpoint {e}")),
            };
            for &(_, t) in &links.outgoing {
                endpoint_outside(t)?;
            }
            for &(s, _) in &links.incoming {
                endpoint_outside(s)?;
            }
            validate_local_ids(&new_doc, &links)?;
            crate::modify::modify_document(collection, index, d, new_doc, &links);
            Ok(())
        }
    }
}

/// Both endpoints of every document link must be live, and local ids must
/// fall inside the new document.
fn validate_links(
    collection: &Collection,
    doc: &XmlDocument,
    links: &DocumentLinks,
) -> Result<(), String> {
    validate_local_ids(doc, links)?;
    for &(_, t) in &links.outgoing {
        if collection.doc_of(t).is_none() {
            return Err(format!("insert document: dead link target {t}"));
        }
    }
    for &(s, _) in &links.incoming {
        if collection.doc_of(s).is_none() {
            return Err(format!("insert document: dead link source {s}"));
        }
    }
    Ok(())
}

fn validate_local_ids(doc: &XmlDocument, links: &DocumentLinks) -> Result<(), String> {
    for &(local, _) in &links.outgoing {
        if local as usize >= doc.len() {
            return Err(format!("local element {local} out of range"));
        }
    }
    for &(_, local) in &links.incoming {
        if local as usize >= doc.len() {
            return Err(format!("local element {local} out of range"));
        }
    }
    Ok(())
}

/// Would replaying `delta` onto `snapshot` reproduce the live collection's
/// id assignment exactly?
///
/// Replay appends inserted documents in order, so ids and element bases
/// stay aligned with the live collection only if live's post-snapshot
/// documents are exactly that appended sequence (no holes left by
/// documents created *and* deleted during the window) and no inserted
/// document links to a document appended after it. When this returns
/// `false`, replaying would corrupt or fail — rebuild from the live
/// collection instead.
pub fn delta_replays_exactly(
    snapshot: &Collection,
    live: &Collection,
    delta: &[CollectionUpdate],
) -> bool {
    let mut available: rustc_hash::FxHashSet<DocId> = snapshot.doc_ids().collect();
    let mut next_doc = snapshot.doc_id_bound() as DocId;
    let mut next_elem = snapshot.elem_id_bound() as ElemId;
    // Would appending `doc` as id `next_doc` reproduce live's assignment,
    // with every linked-to document already replayed?
    let appends_exactly = |doc: &XmlDocument,
                           links: &DocumentLinks,
                           next_doc: DocId,
                           next_elem: ElemId,
                           available: &rustc_hash::FxHashSet<DocId>| {
        let live_doc = match live.document(next_doc) {
            Some(d) => d,
            None => return false,
        };
        if live_doc.len() != doc.len() || live.global_id(next_doc, 0) != next_elem {
            return false;
        }
        let endpoint_ok = |e: ElemId| live.doc_of(e).is_some_and(|d| available.contains(&d));
        links.outgoing.iter().all(|&(_, t)| endpoint_ok(t))
            && links.incoming.iter().all(|&(s, _)| endpoint_ok(s))
    };
    for update in delta {
        match update {
            CollectionUpdate::DeleteDocument(d) => {
                available.remove(d);
            }
            CollectionUpdate::InsertLink(from, to) | CollectionUpdate::DeleteLink(from, to) => {
                let ok = [*from, *to]
                    .into_iter()
                    .all(|e| live.doc_of(e).is_some_and(|d| available.contains(&d)));
                if !ok {
                    return false;
                }
            }
            CollectionUpdate::InsertDocument(doc, links) => {
                if !appends_exactly(doc, links, next_doc, next_elem, &available) {
                    return false;
                }
                available.insert(next_doc);
                next_doc += 1;
                next_elem += doc.len() as ElemId;
            }
            CollectionUpdate::ModifyDocument(d, doc, links) => {
                // Drop + reinsert: the replacement takes the next fresh id.
                if !available.remove(d) {
                    return false;
                }
                if !appends_exactly(doc, links, next_doc, next_elem, &available) {
                    return false;
                }
                available.insert(next_doc);
                next_doc += 1;
                next_elem += doc.len() as ElemId;
            }
        }
    }
    next_doc as usize == live.doc_id_bound() && next_elem as usize == live.elem_id_bound()
}

/// Computes the update sequence that transforms the snapshot into the live
/// collection: deleted documents, inserted documents (with their links),
/// and new links between pre-existing documents. `snapshot_docs` and
/// `snapshot_links` describe the snapshot's live documents and links.
pub fn collection_delta(
    snapshot_docs: &[DocId],
    snapshot_links: &rustc_hash::FxHashSet<(ElemId, ElemId)>,
    live: &Collection,
) -> Vec<CollectionUpdate> {
    let mut updates = Vec::new();
    // Deletions: snapshot docs no longer live.
    for &d in snapshot_docs {
        if live.document(d).is_none() {
            updates.push(CollectionUpdate::DeleteDocument(d));
        }
    }
    // Deleted links whose endpoint documents both survive. (Links that
    // died *with* a document are covered by its DeleteDocument; without
    // these records a link deleted mid-rebuild would silently come back
    // from the snapshot-built index.)
    let mut dead_links: Vec<(ElemId, ElemId)> = snapshot_links
        .iter()
        .copied()
        .filter(|&(from, to)| {
            !live.has_link(from, to) && live.doc_of(from).is_some() && live.doc_of(to).is_some()
        })
        .collect();
    dead_links.sort_unstable(); // set iteration order → deterministic delta
    for (from, to) in dead_links {
        updates.push(CollectionUpdate::DeleteLink(from, to));
    }
    // Insertions: live docs beyond the snapshot (ids are never reused, so
    // any doc id not in the snapshot list is new).
    let snapshot_set: rustc_hash::FxHashSet<DocId> = snapshot_docs.iter().copied().collect();
    for d in live.doc_ids() {
        if !snapshot_set.contains(&d) {
            let doc = live.document(d).expect("live doc").clone();
            let base = live.global_id(d, 0);
            let len = doc.len() as u32;
            let mut links = DocumentLinks::default();
            for l in live.links() {
                if (base..base + len).contains(&l.from) {
                    links.outgoing.push((l.from - base, l.to));
                } else if (base..base + len).contains(&l.to) {
                    links.incoming.push((l.from, l.to - base));
                }
            }
            updates.push(CollectionUpdate::InsertDocument(doc, links));
        }
    }
    // New links between pre-existing documents.
    for l in live.links() {
        let fd = live.doc_of(l.from).expect("live");
        let td = live.doc_of(l.to).expect("live");
        if snapshot_set.contains(&fd)
            && snapshot_set.contains(&td)
            && !snapshot_links.contains(&(l.from, l.to))
        {
            updates.push(CollectionUpdate::InsertLink(l.from, l.to));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::TransitiveClosure;
    use hopi_xml::generator::{dblp, DblpConfig};

    fn assert_exact(online: &OnlineIndex) {
        online.read(|c, index| {
            let g = c.element_graph();
            let tc = TransitiveClosure::from_graph(&g);
            for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
                for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
                    assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
                }
            }
        });
    }

    /// Builds the delta for a snapshot/live pair the way
    /// `rebuild_blocking` does.
    fn delta_of(snapshot: &Collection, live: &Collection) -> Vec<CollectionUpdate> {
        let docs: Vec<DocId> = snapshot.doc_ids().collect();
        let links: rustc_hash::FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();
        collection_delta(&docs, &links, live)
    }

    fn two_doc_snapshot() -> Collection {
        let mut c = Collection::new();
        for name in ["a", "b"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        c
    }

    #[test]
    fn plain_delta_replays_exactly() {
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let mut doc = XmlDocument::new("new", "r");
        doc.add_element(0, "s");
        let d = live.add_document(doc);
        live.add_link(live.global_id(d, 1), live.global_id(0, 0));
        live.add_link(live.global_id(1, 0), live.global_id(0, 1));
        let delta = delta_of(&snapshot, &live);
        assert!(delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn mid_window_link_deletion_appears_in_delta_and_replays() {
        // A link deleted between snapshot and live must be replayed as a
        // DeleteLink — without it the snapshot-built index would resurrect
        // the connection.
        let mut snapshot = two_doc_snapshot();
        snapshot.add_link(snapshot.global_id(0, 1), snapshot.global_id(1, 0));
        let mut live = snapshot.clone();
        live.remove_link(live.global_id(0, 1), live.global_id(1, 0));
        let delta = delta_of(&snapshot, &live);
        assert!(matches!(
            delta.as_slice(),
            [CollectionUpdate::DeleteLink(_, _)]
        ));
        assert!(delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn link_dying_with_its_document_is_not_replayed_twice() {
        let mut snapshot = two_doc_snapshot();
        snapshot.add_link(snapshot.global_id(0, 1), snapshot.global_id(1, 0));
        let mut live = snapshot.clone();
        live.remove_document(1); // takes the link down with it
        let delta = delta_of(&snapshot, &live);
        assert!(matches!(
            delta.as_slice(),
            [CollectionUpdate::DeleteDocument(1)]
        ));
        assert!(delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn modify_document_accounts_like_drop_plus_reinsert() {
        let snapshot = two_doc_snapshot();
        // Live state after modify_document(0, new_doc): doc 0 tombstoned,
        // replacement appended as doc 2.
        let mut live = snapshot.clone();
        live.remove_document(0);
        let mut new_doc = XmlDocument::new("a2", "r");
        new_doc.add_element(0, "s");
        live.add_document(new_doc.clone());
        let delta = vec![CollectionUpdate::ModifyDocument(
            0,
            new_doc.clone(),
            DocumentLinks::default(),
        )];
        assert!(delta_replays_exactly(&snapshot, &live, &delta));
        // Modifying a document that is not available cannot replay.
        let bad = vec![CollectionUpdate::ModifyDocument(
            7,
            new_doc,
            DocumentLinks::default(),
        )];
        assert!(!delta_replays_exactly(&snapshot, &live, &bad));
    }

    #[test]
    fn surprising_updates_fail_gracefully_not_by_panic() {
        // apply_update must reject (not panic on) updates that do not fit
        // the collection — the rebuild thread falls back to a full build.
        let (mut c, mut index) = {
            let c = two_doc_snapshot();
            let (index, _) = build_index(&c, &BuildConfig::default());
            (c, index)
        };
        let cases = vec![
            CollectionUpdate::InsertLink(0, 999),
            CollectionUpdate::DeleteLink(0, 3),
            CollectionUpdate::DeleteDocument(9),
            CollectionUpdate::InsertDocument(
                XmlDocument::new("x", "r"),
                DocumentLinks {
                    outgoing: vec![(0, 999)],
                    incoming: vec![],
                },
            ),
            CollectionUpdate::ModifyDocument(
                9,
                XmlDocument::new("y", "r"),
                DocumentLinks::default(),
            ),
        ];
        for update in cases {
            assert!(apply_update(&mut c, &mut index, update).is_err());
        }
        // The collection is untouched by the rejected updates.
        assert_eq!(c.doc_count(), 2);
        assert!(c.links().is_empty());
    }

    #[test]
    fn rebuild_catches_up_with_mid_window_link_deletion() {
        let c = dblp(&DblpConfig::scaled(0.003));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        let (from, to) = online.read(|c, _| {
            (
                c.global_id(docs[0], 0),
                c.global_id(docs[docs.len() / 2], 0),
            )
        });
        online.insert_link(from, to).unwrap();
        // Simulate "deleted while the rebuild ran": rebuild_blocking
        // snapshots, then we race a deletion in before its swap by doing
        // the deletion through the same write path the window would see.
        let mut guard_snapshot = online.read(|c, _| c.clone());
        guard_snapshot.remove_link(from, to);
        // Directly exercise delta construction + replay exactness.
        let live = guard_snapshot;
        let snap_docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        let snap_links: rustc_hash::FxHashSet<(ElemId, ElemId)> =
            online.read(|c, _| c.links().iter().map(|l| (l.from, l.to)).collect());
        let delta = collection_delta(&snap_docs, &snap_links, &live);
        assert!(delta
            .iter()
            .any(|u| matches!(u, CollectionUpdate::DeleteLink(f, t) if *f == from && *t == to)));
        // End to end: after really deleting and rebuilding, exactness holds.
        let (online2, _) = OnlineIndex::new(live, &BuildConfig::default());
        online2.rebuild_blocking(&BuildConfig::default());
        assert_exact(&online2);
    }

    #[test]
    fn hole_from_mid_window_delete_is_detected() {
        // A document created *and* deleted during the window leaves a doc
        // id (and element id) hole replay cannot reproduce.
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let ghost = live.add_document(XmlDocument::new("ghost", "r"));
        let keeper = live.add_document(XmlDocument::new("keeper", "r"));
        live.remove_document(ghost);
        let delta = delta_of(&snapshot, &live);
        assert!(!delta_replays_exactly(&snapshot, &live, &delta));
        let _ = keeper;
    }

    #[test]
    fn forward_link_between_new_documents_is_detected() {
        // A link from one mid-window document to a later one cannot be
        // applied while replaying the first insertion.
        let snapshot = two_doc_snapshot();
        let mut live = snapshot.clone();
        let x = live.add_document(XmlDocument::new("x", "r"));
        let y = live.add_document(XmlDocument::new("y", "r"));
        live.add_link(live.global_id(x, 0), live.global_id(y, 0));
        let delta = delta_of(&snapshot, &live);
        assert!(!delta_replays_exactly(&snapshot, &live, &delta));
    }

    #[test]
    fn fallback_rebuild_after_unreplayable_window() {
        // Force the unreplayable shape through the real API: snapshot is
        // taken by rebuild_blocking itself, so simulate by mutating between
        // two rebuilds — insert + delete leaves the hole in the live
        // collection relative to the *next* snapshot... which is replayable;
        // instead drive rebuild_blocking directly on a state containing a
        // hole and verify it stays exact.
        let c = two_doc_snapshot();
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let ghost =
            online.insert_document(XmlDocument::new("ghost", "r"), &DocumentLinks::default());
        online.delete_document(ghost);
        online.rebuild_blocking(&BuildConfig::default());
        assert_exact(&online);
    }

    #[test]
    fn serves_queries_and_updates() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let mut doc = XmlDocument::new("fresh", "r");
        doc.add_element(0, "s");
        let target = online.read(|c, _| c.global_id(0, 0));
        let d = online.insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(1, target)],
                incoming: vec![],
            },
        );
        let new_root = online.read(|c, _| c.global_id(d, 0));
        assert!(online.connected(new_root, target));
        assert_exact(&online);
        online.delete_document(d);
        assert_exact(&online);
    }

    #[test]
    fn rebuild_catches_up_with_concurrent_updates() {
        let c = dblp(&DblpConfig::scaled(0.003));
        let (online, first) = OnlineIndex::new(c, &BuildConfig::default());
        // Degrade the cover with churn.
        let docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        for i in 0..15 {
            let a = docs[i % docs.len()];
            let b = docs[(i * 7 + 1) % docs.len()];
            if a != b {
                let (from, to) = online.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                online.insert_link(from, to).unwrap();
            }
        }
        // Kick off the background rebuild, then keep updating while it runs.
        let handle = online.rebuild_in_background(BuildConfig::default());
        let mut doc = XmlDocument::new("mid-rebuild", "r");
        doc.add_element(0, "s");
        let target = online.read(|c, _| c.global_id(docs[0], 0));
        let d = online.insert_document(
            doc,
            &DocumentLinks {
                outgoing: vec![(1, target)],
                incoming: vec![],
            },
        );
        // Queries are served throughout.
        assert!(online.connected(online.read(|c, _| c.global_id(d, 0)), target));
        let report = handle.join().expect("rebuild thread");
        assert!(report.cover_size > 0);
        // After the swap the index reflects every update, including the
        // document inserted mid-rebuild.
        assert!(online.connected(online.read(|c, _| c.global_id(d, 0)), target));
        assert_exact(&online);
        let _ = first;
    }

    #[test]
    fn rebuild_shrinks_churned_cover() {
        let c = dblp(&DblpConfig::scaled(0.003));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let docs: Vec<DocId> = online.read(|c, _| c.doc_ids().collect());
        for i in 0..40 {
            let a = docs[(i * 3) % docs.len()];
            let b = docs[(i * 11 + 2) % docs.len()];
            if a != b {
                let (from, to) = online.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                online.insert_link(from, to).unwrap();
            }
        }
        let churned = online.size();
        online.rebuild_blocking(&BuildConfig::default());
        assert!(
            online.size() < churned,
            "rebuild {} !< churned {churned}",
            online.size()
        );
        assert_exact(&online);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (online, _) = OnlineIndex::new(c, &BuildConfig::default());
        let n = online.read(|c, _| c.elem_id_bound() as u32);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let online = online.clone();
                scope.spawn(move || {
                    for i in 0..500u32 {
                        let u = (i * 37 + t) % n;
                        let v = (i * 61 + t * 13) % n;
                        let _ = online.connected(u, v);
                    }
                });
            }
            let writer = online.clone();
            scope.spawn(move || {
                let docs: Vec<DocId> = writer.read(|c, _| c.doc_ids().collect());
                for i in 0..10 {
                    let a = docs[i % docs.len()];
                    let b = docs[(i + 1) % docs.len()];
                    if a != b {
                        let (from, to) = writer.read(|c, _| (c.global_id(a, 0), c.global_id(b, 0)));
                        writer.insert_link(from, to).unwrap();
                    }
                }
            });
        });
        assert_exact(&online);
    }
}
