//! Occasional index rebuilds (paper §6).
//!
//! "Over time, the space efficiency of the 2–hop cover that HOPI maintains
//! may degrade. Then occasional rebuilds of the index may be considered,
//! using the efficient algorithm presented in Section 4." Incremental link
//! integration (§6.1) and the Theorem 3 splice both add entries greedily —
//! each insertion picks a fixed center instead of the globally densest one
//! — so the cover drifts away from what a fresh build would produce. This
//! module quantifies that drift and performs in-place rebuilds.

use hopi_core::HopiIndex;
use hopi_partition::{build_index, BuildConfig};
use hopi_xml::Collection;

/// Degradation snapshot of a maintained index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Degradation {
    /// Current cover entries.
    pub entries: usize,
    /// Live elements in the collection.
    pub live_elements: usize,
    /// Entries per live element — the paper's INEX yardstick was
    /// "less than three index entries per node".
    pub entries_per_element: f64,
}

/// Policy deciding when a rebuild pays off.
#[derive(Clone, Copy, Debug)]
pub struct RebuildPolicy {
    /// Rebuild when entries/element exceeds this bound.
    pub max_entries_per_element: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        // Generous default: trees need <3 (paper §7.2); linked collections
        // land around 10–40 at our scales, so 4x that headroom.
        RebuildPolicy {
            max_entries_per_element: 150.0,
        }
    }
}

/// Measures the current degradation.
pub fn degradation(collection: &Collection, index: &HopiIndex) -> Degradation {
    let live = collection.element_count().max(1);
    Degradation {
        entries: index.size(),
        live_elements: live,
        entries_per_element: index.size() as f64 / live as f64,
    }
}

/// Should the index be rebuilt under the policy?
pub fn should_rebuild(collection: &Collection, index: &HopiIndex, policy: &RebuildPolicy) -> bool {
    degradation(collection, index).entries_per_element > policy.max_entries_per_element
}

/// Rebuilds the index from scratch with the efficient §4 pipeline,
/// replacing the maintained cover in place. Returns `(entries_before,
/// entries_after)`.
pub fn rebuild(
    collection: &Collection,
    index: &mut HopiIndex,
    config: &BuildConfig,
) -> (usize, usize) {
    let before = index.size();
    let (fresh, _) = build_index(collection, config);
    *index = fresh;
    (before, index.size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::insert_link;
    use hopi_graph::TransitiveClosure;
    use hopi_xml::generator::{dblp, DblpConfig};
    use rand::prelude::*;

    #[test]
    fn churn_degrades_then_rebuild_recovers() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut c = dblp(&DblpConfig::scaled(0.004));
        let (mut index, report) = build_index(&c, &BuildConfig::default());
        let fresh_size = report.cover_size;

        // Heavy link churn through the greedy §6.1 insertion.
        let docs: Vec<u32> = c.doc_ids().collect();
        for _ in 0..80 {
            let a = docs[rng.gen_range(0..docs.len())];
            let b = docs[rng.gen_range(0..docs.len())];
            if a != b {
                let (from, to) = (c.global_id(a, 0), c.global_id(b, 0));
                insert_link(&mut c, &mut index, from, to).unwrap();
            }
        }
        let degraded = degradation(&c, &index);
        assert!(
            degraded.entries > fresh_size,
            "churn should grow the cover ({} vs fresh {fresh_size})",
            degraded.entries
        );

        let (before, after) = rebuild(&c, &mut index, &BuildConfig::default());
        assert_eq!(before, degraded.entries);
        assert!(
            after < before,
            "rebuild should shrink a churned cover ({after} !< {before})"
        );

        // Exactness after rebuild.
        let g = c.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        for u in (0..g.id_bound() as u32).step_by(7) {
            for v in (0..g.id_bound() as u32).step_by(7) {
                assert_eq!(index.connected(u, v), tc.contains(u, v));
            }
        }
    }

    #[test]
    fn policy_threshold() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (index, _) = build_index(&c, &BuildConfig::default());
        assert!(!should_rebuild(
            &c,
            &index,
            &RebuildPolicy {
                max_entries_per_element: 1e9
            }
        ));
        assert!(should_rebuild(
            &c,
            &index,
            &RebuildPolicy {
                max_entries_per_element: 0.0
            }
        ));
    }

    #[test]
    fn degradation_metric() {
        let c = dblp(&DblpConfig::scaled(0.002));
        let (index, _) = build_index(&c, &BuildConfig::default());
        let d = degradation(&c, &index);
        assert_eq!(d.entries, index.size());
        assert_eq!(d.live_elements, c.element_count());
        assert!((d.entries_per_element - d.entries as f64 / d.live_elements as f64).abs() < 1e-12);
    }
}
