//! Insertions (paper §6.1).
//!
//! * Isolated nodes need no cover entries.
//! * A new edge `(u, v)` is inserted "by the same method that was used to
//!   add a link between partitions": `v` becomes the center node for all
//!   newly created connections (see [`hopi_core::old_join::integrate_link`]).
//! * A new document is "considered as a new partition": its private 2-hop
//!   cover is computed and merged, then its incoming/outgoing links are
//!   integrated one by one.

use hopi_core::{old_join, HopiIndex};
use hopi_core::{CoverBuilder, DistanceCover};
use hopi_graph::{DiGraph, TransitiveClosure};
use hopi_xml::{Collection, DocId, ElemId, LocalElemId, XmlDocument};

/// Links connecting a new document to the existing collection, expressed
/// with document-local ids on the new side.
#[derive(Clone, Debug, Default)]
pub struct DocumentLinks {
    /// Outgoing: (local source element in the new doc, existing global
    /// target).
    pub outgoing: Vec<(LocalElemId, ElemId)>,
    /// Incoming: (existing global source, local target element in the new
    /// doc).
    pub incoming: Vec<(ElemId, LocalElemId)>,
}

/// An invalid link insertion, reported instead of the panics
/// [`Collection::add_link`] raises on bad endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// An endpoint that is not (or no longer) a live element.
    UnknownEndpoint(ElemId),
    /// Both endpoints lie in the same document (same-document references
    /// belong to the document's intra-links).
    SameDocument {
        /// Link source.
        from: ElemId,
        /// Link target.
        to: ElemId,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UnknownEndpoint(e) => write!(f, "link endpoint {e} is not a live element"),
            LinkError::SameDocument { from, to } => write!(
                f,
                "link {from} → {to} stays inside one document; use intra-document links"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// Inserts an inter-document link and updates the index incrementally.
///
/// Endpoints are validated up front — dead/unknown elements and
/// same-document pairs come back as [`LinkError`] instead of the panics of
/// [`Collection::add_link`]. Re-inserting an existing link is a no-op
/// (`L` is a set, paper §2) and returns `Ok(0)` without touching the
/// cover. Otherwise returns the number of label entries added.
pub fn insert_link(
    collection: &mut Collection,
    index: &mut HopiIndex,
    from: ElemId,
    to: ElemId,
) -> Result<usize, LinkError> {
    let fd = collection
        .doc_of(from)
        .ok_or(LinkError::UnknownEndpoint(from))?;
    let td = collection
        .doc_of(to)
        .ok_or(LinkError::UnknownEndpoint(to))?;
    if fd == td {
        return Err(LinkError::SameDocument { from, to });
    }
    if !collection.add_link(from, to) {
        return Ok(0);
    }
    index.cover_mut().ensure_node(from.max(to));
    Ok(old_join::integrate_link(index.cover_mut(), from, to))
}

/// Inserts a whole document plus its links (paper §6.1: "considering the
/// document as a new partition, computing the 2–hop cover for this
/// partition and applying the (old) algorithm for merging partitions").
/// Returns the assigned document id.
pub fn insert_document(
    collection: &mut Collection,
    index: &mut HopiIndex,
    doc: XmlDocument,
    links: &DocumentLinks,
) -> DocId {
    // Build the document's private cover over local ids.
    let mut local = DiGraph::with_nodes(doc.len());
    for (p, c) in doc.tree_edges() {
        local.add_edge(p, c);
    }
    for &(f, t) in doc.intra_links() {
        local.add_edge(f, t);
    }
    let tc = TransitiveClosure::from_graph(&local);
    let doc_cover = CoverBuilder::new(&tc).build();

    let d = collection.add_document(doc);
    let base = collection.global_id(d, 0);
    let cover = index.cover_mut();
    if collection.elem_id_bound() > 0 {
        cover.ensure_node(collection.elem_id_bound() as u32 - 1);
    }
    // Merge the document cover shifted into the global id space.
    let map: Vec<ElemId> = (0..tc.num_nodes() as u32).map(|l| base + l).collect();
    cover.merge_remapped(&doc_cover, &map);

    // Integrate links with the old join primitive.
    for &(local_src, target) in &links.outgoing {
        let from = collection.global_id(d, local_src);
        collection.add_link(from, target);
        old_join::integrate_link(cover, from, target);
    }
    for &(source, local_tgt) in &links.incoming {
        let to = collection.global_id(d, local_tgt);
        collection.add_link(source, to);
        old_join::integrate_link(cover, source, to);
    }
    d
}

/// Distance-aware edge insertion (paper §6: "the algorithms presented...
/// can be applied also for distance-aware covers").
///
/// `v` becomes the center: every ancestor `a` of `u` receives
/// `(v, dist(a,u) + 1)` in `Lout`, every descendant `d` of `v` receives
/// `(v, dist(v,d))` in `Lin`. Any shortest path created or shortened by the
/// new edge decomposes as `a →* u → v →* d` over *old* shortest segments,
/// so these entries capture exactly the improved distances; stale longer
/// entries are harmless because the distance query takes the minimum.
pub fn insert_edge_distance(cover: &mut DistanceCover, u: u32, v: u32) {
    cover.ensure_node(u.max(v));
    let ancestors = cover.ancestors_with_distance(u); // includes (u, 0)
    let descendants = cover.descendants_with_distance(v); // includes (v, 0)
    for &(a, dau) in &ancestors {
        cover.add_out(a, v, dau + 1);
    }
    for &(d, dvd) in &descendants {
        cover.add_in(d, v, dvd);
    }
}

/// Distance-aware document insertion: the distance analogue of
/// [`insert_document`]. The new document gets a private distance cover
/// (computed over its local element graph), which is merged shifted into
/// the global cover; links are then integrated with
/// [`insert_edge_distance`].
///
/// The caller adds the document to the collection; this function only
/// maintains the cover (mirroring how a distance-aware HOPI deployment
/// would run both covers side by side).
pub fn insert_document_distance(
    collection: &mut Collection,
    cover: &mut DistanceCover,
    doc: XmlDocument,
    links: &DocumentLinks,
) -> DocId {
    let d = collection.add_document(doc);
    for &(local_src, target) in &links.outgoing {
        collection.add_link(collection.global_id(d, local_src), target);
    }
    for &(source, local_tgt) in &links.incoming {
        collection.add_link(source, collection.global_id(d, local_tgt));
    }
    integrate_document_distance(collection, cover, d, links);
    d
}

/// The cover-side half of [`insert_document_distance`]: updates a distance
/// cover for a document (and its links) that are **already present** in the
/// collection — the path taken when the plain index was maintained first
/// and the distance cover rides along.
pub fn integrate_document_distance(
    collection: &Collection,
    cover: &mut DistanceCover,
    d: DocId,
    links: &DocumentLinks,
) {
    use hopi_core::DistanceCoverBuilder;
    use hopi_graph::DistanceClosure;

    let doc = collection.document(d).expect("live doc");
    let mut local = DiGraph::with_nodes(doc.len());
    for (p, c) in doc.tree_edges() {
        local.add_edge(p, c);
    }
    for &(f, t) in doc.intra_links() {
        local.add_edge(f, t);
    }
    let dc = DistanceClosure::from_graph(&local);
    let doc_cover = DistanceCoverBuilder::new(&dc).build();

    let base = collection.global_id(d, 0);
    if collection.elem_id_bound() > 0 {
        cover.ensure_node(collection.elem_id_bound() as u32 - 1);
    }
    for (node, center, dist) in doc_cover.iter_out_entries() {
        cover.add_out(base + node, base + center, dist);
    }
    for (node, center, dist) in doc_cover.iter_in_entries() {
        cover.add_in(base + node, base + center, dist);
    }
    for &(local_src, target) in &links.outgoing {
        insert_edge_distance(cover, collection.global_id(d, local_src), target);
    }
    for &(source, local_tgt) in &links.incoming {
        insert_edge_distance(cover, source, collection.global_id(d, local_tgt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::DistanceClosure;
    use hopi_partition::{build_index, BuildConfig};

    fn two_docs() -> (Collection, HopiIndex) {
        let mut c = Collection::new();
        for name in ["a", "b"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        let (index, _) = build_index(&c, &BuildConfig::default());
        (c, index)
    }

    fn assert_exact(c: &Collection, index: &HopiIndex) {
        let g = c.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        // Dead id slots are skipped: reflexive queries on deleted elements
        // are vacuously true in the cover (`u == v`), and the index contract
        // only covers live elements.
        for u in (0..g.id_bound() as u32).filter(|&u| g.is_alive(u)) {
            for v in (0..g.id_bound() as u32).filter(|&v| g.is_alive(v)) {
                assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn insert_link_updates_index() {
        let (mut c, mut index) = two_docs();
        assert!(!index.connected(0, 3));
        insert_link(&mut c, &mut index, 1, 2).unwrap(); // a/s -> b/root
        assert!(index.connected(0, 3));
        assert_exact(&c, &index);
    }

    #[test]
    fn insert_link_rejects_dead_and_unknown_endpoints() {
        // Regression: this used to panic inside Collection::add_link.
        let (mut c, mut index) = two_docs();
        assert_eq!(
            insert_link(&mut c, &mut index, 0, 9_999),
            Err(LinkError::UnknownEndpoint(9_999))
        );
        assert_eq!(
            insert_link(&mut c, &mut index, 9_999, 0),
            Err(LinkError::UnknownEndpoint(9_999))
        );
        // Endpoints of a removed document are dead, not just unknown.
        c.remove_document(1);
        assert_eq!(
            insert_link(&mut c, &mut index, 0, 2),
            Err(LinkError::UnknownEndpoint(2))
        );
        // The failed attempts left collection and index untouched.
        assert!(c.links().is_empty());
        assert_exact(&c, &index);
    }

    #[test]
    fn insert_link_rejects_same_document_pairs() {
        // Regression: this used to panic on the §2 "L is inter-document"
        // assertion.
        let (mut c, mut index) = two_docs();
        assert_eq!(
            insert_link(&mut c, &mut index, 0, 1),
            Err(LinkError::SameDocument { from: 0, to: 1 })
        );
        assert!(c.links().is_empty());
        assert_exact(&c, &index);
    }

    #[test]
    fn duplicate_insert_link_is_noop() {
        let (mut c, mut index) = two_docs();
        let added = insert_link(&mut c, &mut index, 1, 2).unwrap();
        assert!(added > 0);
        let size = index.size();
        assert_eq!(insert_link(&mut c, &mut index, 1, 2), Ok(0));
        assert_eq!(index.size(), size, "duplicate must not grow the cover");
        assert_eq!(c.links().len(), 1);
        assert_exact(&c, &index);
        index.cover().check_invariants();
    }

    #[test]
    fn insert_document_with_links() {
        let (mut c, mut index) = two_docs();
        let mut doc = XmlDocument::new("new", "r");
        let child = doc.add_element(0, "c");
        let grand = doc.add_element(child, "g");
        let links = DocumentLinks {
            outgoing: vec![(grand, 2)], // new/g -> b/root
            incoming: vec![(1, 0)],     // a/s -> new/root
        };
        let d = insert_document(&mut c, &mut index, doc, &links);
        assert_eq!(d, 2);
        // a/root(0) -> a/s(1) -> new/root(4) -> ... -> new/g(6) -> b(2,3).
        assert!(index.connected(0, 3));
        assert!(index.connected(4, 2));
        assert_exact(&c, &index);
        index.cover().check_invariants();
    }

    #[test]
    fn insert_isolated_document() {
        let (mut c, mut index) = two_docs();
        let doc = XmlDocument::new("island", "r");
        let d = insert_document(&mut c, &mut index, doc, &DocumentLinks::default());
        let root = c.global_id(d, 0);
        assert!(index.connected(root, root));
        assert!(!index.connected(0, root));
        assert_exact(&c, &index);
    }

    #[test]
    fn insert_link_cycle() {
        let (mut c, mut index) = two_docs();
        insert_link(&mut c, &mut index, 1, 2).unwrap();
        insert_link(&mut c, &mut index, 3, 0).unwrap();
        assert!(index.connected(2, 1), "cycle closes");
        assert_exact(&c, &index);
    }

    #[test]
    fn repeated_inserts_stay_exact() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(17);
        let mut c = Collection::new();
        for i in 0..6 {
            let mut d = XmlDocument::new(format!("d{i}"), "r");
            d.add_element(0, "x");
            d.add_element(0, "y");
            c.add_document(d);
        }
        let (mut index, _) = build_index(&c, &BuildConfig::default());
        for _ in 0..20 {
            let di = rng.gen_range(0..6u32);
            let dj = rng.gen_range(0..6u32);
            if di == dj {
                continue;
            }
            let from = c.global_id(di, rng.gen_range(0..3));
            let to = c.global_id(dj, rng.gen_range(0..3));
            insert_link(&mut c, &mut index, from, to).unwrap();
            assert_exact(&c, &index);
        }
        index.cover().check_invariants();
    }

    #[test]
    fn distance_document_insert_matches_closure() {
        // Bootstrap two docs with a distance cover, then insert a third
        // with links and compare all distances against a fresh closure.
        let mut c = Collection::new();
        for name in ["a", "b"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "s");
            c.add_document(d);
        }
        let dc = DistanceClosure::from_graph(&c.element_graph());
        let mut cover = hopi_core::DistanceCoverBuilder::new(&dc).build();

        let mut doc = XmlDocument::new("new", "r");
        let child = doc.add_element(0, "c");
        let links = DocumentLinks {
            outgoing: vec![(child, 2)], // new/c -> b/root
            incoming: vec![(1, 0)],     // a/s -> new/root
        };
        insert_document_distance(&mut c, &mut cover, doc, &links);

        let fresh = DistanceClosure::from_graph(&c.element_graph());
        let n = c.elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(cover.distance(u, v), fresh.dist(u, v), "dist({u},{v})");
            }
        }
        // a/root -> ... -> b/s is a 5-edge chain: 0->1->4->5->2->3.
        assert_eq!(cover.distance(0, 3), Some(5));
    }

    #[test]
    fn distance_insert_matches_closure() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 15u32;
            let mut g = DiGraph::new();
            g.ensure_node(n - 1);
            // Start from a random base graph, build an exact cover…
            let base: Vec<(u32, u32)> = (0..20)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            for &(u, v) in &base {
                g.add_edge(u, v);
            }
            let dc = DistanceClosure::from_graph(&g);
            let mut cover = hopi_core::DistanceCoverBuilder::new(&dc).build();
            // …then insert edges incrementally and compare against a fresh
            // closure.
            for _ in 0..8 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u == v {
                    continue;
                }
                g.add_edge(u, v);
                insert_edge_distance(&mut cover, u, v);
                let fresh = DistanceClosure::from_graph(&g);
                for a in 0..n {
                    for b in 0..n {
                        assert_eq!(
                            cover.distance(a, b),
                            fresh.dist(a, b),
                            "dist({a},{b}) after inserting ({u},{v})"
                        );
                    }
                }
            }
        }
    }
}
