//! # hopi-maintenance — incremental maintenance of the HOPI index
//!
//! Implements paper §6: the HOPI index must absorb insertions and deletions
//! of nodes, edges, and whole documents "in an incremental manner, without
//! having to recompute the entire index from scratch".
//!
//! * [`insert`] — new nodes are trivial; a new edge `u → v` is integrated by
//!   choosing `v` as the center for all new connections (the §3.3 link-join
//!   primitive); a new document is treated as a fresh partition: its own
//!   2-hop cover is computed and merged, then its links are integrated.
//!   Distance-aware variants update a [`hopi_core::DistanceCover`].
//! * [`delete`] — document deletion with two algorithms:
//!   * **Theorem 2 fast path** when the document *separates* the
//!     document-level graph (every ancestor–descendant path runs through
//!     it): simply strip the dead id sets from the affected labels.
//!   * **Theorem 3 general algorithm** otherwise: recompute a *partial*
//!     closure from the deleted document's ancestors, build a fresh cover
//!     `L̂` over it, and splice it into the old cover.
//!
//!   Single-edge deletion uses the same partial-recomputation scheme.
//! * [`modify`] — document modification = drop + reinsert (paper §6.3).
//! * [`rebuild`] — degradation tracking and occasional full rebuilds with
//!   the efficient §4 pipeline ("over time, the space efficiency … may
//!   degrade").
//! * [`online`] — 24×7 operation (paper §1.1): concurrent queries, brief
//!   write-locked incremental updates, and background rebuilds with atomic
//!   swap that never interrupt query service.
//!
//! All operations keep the [`hopi_xml::Collection`] and the
//! [`hopi_core::HopiIndex`] in sync and preserve the exactness invariant
//! `index.connected(u,v) ⇔ u →* v in G_E(X)`, which the test suite checks
//! against closure oracles after every operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delete;
pub mod insert;
pub mod modify;
pub mod online;
pub mod rebuild;

pub use delete::{delete_document, delete_link, separates, DeletionAlgorithm, DeletionOutcome};
pub use insert::{
    insert_document, insert_document_distance, insert_edge_distance, insert_link,
    integrate_document_distance, DocumentLinks, LinkError,
};
pub use modify::modify_document;
pub use online::{
    apply_update, collection_delta, delta_replays_exactly, CollectionUpdate, OnlineIndex,
};
pub use rebuild::{degradation, rebuild, should_rebuild, Degradation, RebuildPolicy};
