//! Distance-ranked path evaluation with content-score fusion (paper §5.1).
//!
//! For IR-style XML retrieval, "the ranking of entire XML paths may take
//! into consideration … the length of the connections between qualifying
//! elements. For example, a path where an author element is found far away
//! from a book element should be ranked lower than an author that is a
//! child or grandchild of a book." This module evaluates a path expression
//! against a distance-aware cover, tracking for every result the minimal
//! total link distance along the step chain, and scores matches
//! XXL-style with a decaying `1 / (1 + distance)`.
//!
//! Content predicates fuse in: predicates on intermediate steps filter
//! membership (an element without the terms cannot bind the step), while
//! the **final** step's predicate additionally contributes a BM25 text
//! score so that `//book//sec[about(., "xml indexing")]` ranks sections
//! by both structural proximity and term relevance.

use crate::expr::{Axis, ContentPredicate, PathExpr};
use crate::tag_index::TagIndex;
use hopi_core::DistanceCover;
use hopi_text::{Bm25Scorer, TextSource};
use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashMap;

/// A ranked match: an element plus the minimal accumulated distance of a
/// qualifying path binding and the BM25 text score of the final step's
/// content predicate (0 when the step has none).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedMatch {
    /// The matched (final-step) element.
    pub element: ElemId,
    /// Minimal total number of edges across all steps.
    pub distance: u32,
    /// BM25 score against the final step's predicate terms; `0.0` for
    /// structure-only queries.
    pub text_score: f64,
}

impl RankedMatch {
    /// Fused relevance: the XXL-style `1 / (1 + distance)` structural
    /// decay, scaled up by `1 + text_score`. With no content predicate
    /// this reduces to the pure distance score in `(0, 1]`.
    pub fn score(&self) -> f64 {
        (1.0 + self.text_score) / (1.0 + self.distance as f64)
    }
}

/// Evaluates `expr` with distance tracking and no text index. Content
/// predicates match nothing (see [`evaluate_ranked_with_text`]). Results
/// are sorted by descending fused score (ties by element id).
pub fn evaluate_ranked(
    collection: &Collection,
    cover: &DistanceCover,
    tags: &TagIndex,
    expr: &PathExpr,
) -> Vec<RankedMatch> {
    evaluate_ranked_with_text(collection, cover, tags, expr, None)
}

/// Evaluates `expr` with distance tracking and content-score fusion.
/// Intermediate-step predicates filter bindings; the final step's
/// predicate both filters and supplies each match's BM25 `text_score`.
/// Without a text index, steps carrying predicates match nothing.
/// Results are sorted by descending fused score (ties by element id).
pub fn evaluate_ranked_with_text(
    collection: &Collection,
    cover: &DistanceCover,
    tags: &TagIndex,
    expr: &PathExpr,
    text: Option<&dyn TextSource>,
) -> Vec<RankedMatch> {
    // dist[e] = minimal accumulated distance of a binding ending at e.
    let mut dist: FxHashMap<ElemId, u32> = FxHashMap::default();
    let Some(first) = expr.steps.first() else {
        return Vec::new();
    };
    match first.axis {
        Axis::Child => {
            for d in collection.doc_ids() {
                let root = collection.global_id(d, 0);
                if tag_matches(collection, root, first.tag.as_deref()) {
                    dist.insert(root, 0);
                }
            }
        }
        Axis::Connection => {
            for &e in candidate_list(collection, tags, first.tag.as_deref()).iter() {
                dist.insert(e, 0);
            }
        }
    }
    filter_by_predicate(&mut dist, first.predicate.as_ref(), text);

    for step in expr.steps.iter().skip(1) {
        let mut next: FxHashMap<ElemId, u32> = FxHashMap::default();
        match step.axis {
            Axis::Child => {
                for (&u, &du) in &dist {
                    let Some((d, local)) = collection.to_local(u) else {
                        continue;
                    };
                    let Some(doc) = collection.document(d) else {
                        continue;
                    };
                    let base = collection.global_id(d, 0);
                    for &c in &doc.element(local).children {
                        if step.tag.as_deref().is_none_or(|t| doc.element(c).tag == t) {
                            relax(&mut next, base + c, du + 1);
                        }
                    }
                }
            }
            Axis::Connection => {
                let cands = candidate_list(collection, tags, step.tag.as_deref());
                for &t in cands.iter() {
                    let mut best: Option<u32> = None;
                    for (&u, &du) in &dist {
                        if u == t {
                            continue;
                        }
                        if let Some(d) = cover.distance(u, t) {
                            let total = du + d;
                            best = Some(best.map_or(total, |b| b.min(total)));
                        }
                    }
                    if let Some(b) = best {
                        relax(&mut next, t, b);
                    }
                }
            }
        }
        filter_by_predicate(&mut next, step.predicate.as_ref(), text);
        dist = next;
        if dist.is_empty() {
            break;
        }
    }

    // The final step's predicate supplies the text component.
    let scorer = match (expr.steps.last().and_then(|s| s.predicate.as_ref()), text) {
        (Some(pred), Some(src)) => Some(Bm25Scorer::new(src, &pred.terms)),
        _ => None,
    };
    let mut out: Vec<RankedMatch> = dist
        .into_iter()
        .map(|(element, distance)| RankedMatch {
            element,
            distance,
            text_score: scorer.as_ref().map_or(0.0, |s| s.score(element)),
        })
        .collect();
    out.sort_unstable_by(|a, b| {
        b.score()
            .total_cmp(&a.score())
            .then(a.element.cmp(&b.element))
    });
    out
}

/// Drops bindings whose element fails `pred`. A predicate with no text
/// index empties the map (content is unknowable, so nothing qualifies).
fn filter_by_predicate(
    dist: &mut FxHashMap<ElemId, u32>,
    pred: Option<&ContentPredicate>,
    text: Option<&dyn TextSource>,
) {
    let Some(pred) = pred else { return };
    match text {
        None => dist.clear(),
        Some(src) => {
            let mut matches = Vec::new();
            crate::eval::predicate_matches(src, pred, &mut matches);
            dist.retain(|e, _| matches.binary_search(e).is_ok());
        }
    }
}

fn relax(map: &mut FxHashMap<ElemId, u32>, e: ElemId, d: u32) {
    map.entry(e)
        .and_modify(|cur| *cur = (*cur).min(d))
        .or_insert(d);
}

fn candidate_list<'a>(
    collection: &Collection,
    tags: &'a TagIndex,
    tag: Option<&str>,
) -> std::borrow::Cow<'a, [ElemId]> {
    match tag {
        Some(t) => std::borrow::Cow::Borrowed(tags.elements(t)),
        None => {
            let mut out = Vec::with_capacity(collection.element_count());
            for d in collection.doc_ids() {
                let base = collection.global_id(d, 0);
                let len = collection.document(d).map_or(0, |doc| doc.len() as u32);
                out.extend(base..base + len);
            }
            std::borrow::Cow::Owned(out)
        }
    }
}

fn tag_matches(collection: &Collection, e: ElemId, tag: Option<&str>) -> bool {
    match tag {
        None => true,
        Some(t) => collection
            .to_local(e)
            .and_then(|(d, l)| collection.document(d).map(|doc| doc.element(l).tag == t))
            .unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_path;
    use hopi_core::DistanceCoverBuilder;
    use hopi_graph::DistanceClosure;
    use hopi_xml::parser::parse_collection;

    fn fixture() -> (Collection, DistanceCover, TagIndex) {
        let c = parse_collection([
            (
                "near",
                r#"<book><chapter><author id="close">xml indexing expert</author></chapter></book>"#,
            ),
            (
                "far",
                r#"<book><refs><link xlink:href="elsewhere"/></refs></book>"#,
            ),
            (
                "elsewhere",
                r#"<page><sec><sub><author id="distant">xml novelist</author></sub></sec></page>"#,
            ),
        ])
        .unwrap();
        let dc = DistanceClosure::from_graph(&c.element_graph());
        let cover = DistanceCoverBuilder::new(&dc).build();
        let tags = TagIndex::build(&c);
        (c, cover, tags)
    }

    #[test]
    fn ranks_close_matches_first() {
        let (c, cover, tags) = fixture();
        let expr = parse_path("//book//author").unwrap();
        let r = evaluate_ranked(&c, &cover, &tags, &expr);
        assert_eq!(r.len(), 2);
        let close = c.resolve_ref("near", "close").unwrap();
        let distant = c.resolve_ref("elsewhere", "distant").unwrap();
        assert_eq!(r[0].element, close);
        assert_eq!(r[0].distance, 2); // book → chapter → author
        assert_eq!(r[1].element, distant);
        // book → refs → link → page → sec → sub → author = 6 edges.
        assert_eq!(r[1].distance, 6);
        assert!(r[0].score() > r[1].score());
    }

    #[test]
    fn child_steps_add_one() {
        let (c, cover, tags) = fixture();
        let expr = parse_path("/book/chapter/author").unwrap();
        let r = evaluate_ranked(&c, &cover, &tags, &expr);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].distance, 2);
    }

    #[test]
    fn distances_accumulate_over_steps() {
        let (c, cover, tags) = fixture();
        let expr = parse_path("//book//link//author").unwrap();
        let r = evaluate_ranked(&c, &cover, &tags, &expr);
        assert_eq!(r.len(), 1);
        // book →2 link, link →4 author = 6.
        assert_eq!(r[0].distance, 6);
    }

    #[test]
    fn empty_result_for_unmatched() {
        let (c, cover, tags) = fixture();
        let expr = parse_path("//author//book").unwrap();
        let r = evaluate_ranked(&c, &cover, &tags, &expr);
        assert!(r.is_empty());
    }

    #[test]
    fn score_is_monotone_in_distance() {
        let a = RankedMatch {
            element: 0,
            distance: 0,
            text_score: 0.0,
        };
        let b = RankedMatch {
            element: 0,
            distance: 5,
            text_score: 0.0,
        };
        assert!(a.score() > b.score());
        assert_eq!(a.score(), 1.0);
    }

    #[test]
    fn text_score_lifts_fused_score() {
        let near = RankedMatch {
            element: 0,
            distance: 2,
            text_score: 0.0,
        };
        let far_but_relevant = RankedMatch {
            element: 1,
            distance: 5,
            text_score: 3.0,
        };
        assert!(far_but_relevant.score() > near.score());
    }

    #[test]
    fn ranked_agrees_with_boolean_eval_on_membership() {
        use hopi_partition::{build_index, BuildConfig};
        let (c, cover, tags) = fixture();
        let (index, _) = build_index(&c, &BuildConfig::default());
        let expr = parse_path("//book//author").unwrap();
        let ranked: Vec<ElemId> = evaluate_ranked(&c, &cover, &tags, &expr)
            .into_iter()
            .map(|m| m.element)
            .collect();
        let mut ranked_sorted = ranked.clone();
        ranked_sorted.sort_unstable();
        let boolean = crate::eval::evaluate(&c, &index, &tags, &expr);
        assert_eq!(ranked_sorted, boolean);
    }

    #[test]
    fn final_step_predicate_filters_and_scores() {
        let (c, cover, tags) = fixture();
        let text = hopi_text::TextIndex::build(&c);
        let expr = parse_path("//book//author[contains(., \"xml\")]").unwrap();
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|m| m.text_score > 0.0));
        // "indexing" appears only in the close author's text.
        let expr = parse_path("//book//author[contains(., \"indexing\")]").unwrap();
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].element, c.resolve_ref("near", "close").unwrap());
        // Predicate but no text index: nothing qualifies.
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, None);
        assert!(r.is_empty());
    }

    #[test]
    fn intermediate_predicates_filter_membership_only() {
        let (c, cover, tags) = fixture();
        let text = hopi_text::TextIndex::build(&c);
        // Restrict the middle binding to the close author's subtree path.
        let expr = parse_path("//chapter[about(., \"expert\")]//author").unwrap();
        // chapter has no direct text — the text sits on author — so no match.
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert!(r.is_empty());
        // But a predicate naming the author's own text on the author step works,
        // and an intermediate structure-only step leaves text_score at 0 when the
        // final step carries no predicate.
        let expr = parse_path("//author[about(., \"novelist\")]//author").unwrap();
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert!(r.is_empty()); // authors are leaves; sanity only.
        let expr = parse_path("//book//author").unwrap();
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert!(r.iter().all(|m| m.text_score == 0.0));
    }

    #[test]
    fn ranked_fusion_orders_by_combined_score() {
        let (c, cover, tags) = fixture();
        let text = hopi_text::TextIndex::build(&c);
        let expr = parse_path("//book//author[about(., \"xml indexing expert\")]").unwrap();
        let r = evaluate_ranked_with_text(&c, &cover, &tags, &expr, Some(&text));
        assert_eq!(r.len(), 2);
        // The close author matches all three terms AND is structurally
        // nearer — it must rank first with a strictly higher fused score.
        let close = c.resolve_ref("near", "close").unwrap();
        assert_eq!(r[0].element, close);
        assert!(r[0].score() > r[1].score());
        assert!(r[0].text_score > r[1].text_score);
    }
}
