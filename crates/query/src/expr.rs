//! The path-expression language.
//!
//! Grammar (a pragmatic subset of XPath's abbreviated syntax, with `//`
//! generalized to the *connection* axis — descendants along tree **and**
//! link edges, possibly crossing documents):
//!
//! ```text
//! path  := axis step (axis step)*
//! axis  := '/' | '//'
//! step  := tag | '*'
//! tag   := [A-Za-z_][A-Za-z0-9_.-]*
//! ```
//!
//! A leading `/` anchors the first step at document roots; a leading `//`
//! matches the first step anywhere.

/// Step axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// `/` — direct parent/child tree edge.
    Child,
    /// `//` — the connection axis: any path of tree edges and links,
    /// including the node itself being a direct child (one or more edges;
    /// `a//b` requires `a →+ b`... see [`crate::eval`] for exact
    /// semantics: one or more graph edges).
    Connection,
}

/// One step: an axis plus a node test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// Tag test; `None` = `*` wildcard.
    pub tag: Option<String>,
}

/// A parsed path expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathExpr {
    /// Steps in order. The first step's axis anchors it: `Child` = at
    /// document roots, `Connection` = anywhere.
    pub steps: Vec<Step>,
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a path expression.
pub fn parse_path(input: &str) -> Result<PathExpr, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut steps = Vec::new();
    if bytes.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty expression".into(),
        });
    }
    while pos < bytes.len() {
        // Axis.
        if bytes[pos] != b'/' {
            return Err(ParseError {
                position: pos,
                message: format!(
                    "expected '/' or '//', found {:?}",
                    input[pos..].chars().next()
                ),
            });
        }
        let axis = if pos + 1 < bytes.len() && bytes[pos + 1] == b'/' {
            pos += 2;
            Axis::Connection
        } else {
            pos += 1;
            Axis::Child
        };
        // Step.
        let start = pos;
        if pos < bytes.len() && bytes[pos] == b'*' {
            pos += 1;
            steps.push(Step { axis, tag: None });
            continue;
        }
        while pos < bytes.len()
            && (bytes[pos].is_ascii_alphanumeric() || matches!(bytes[pos], b'_' | b'.' | b'-'))
        {
            pos += 1;
        }
        if pos == start {
            return Err(ParseError {
                position: pos,
                message: "expected tag name or '*'".into(),
            });
        }
        if !(bytes[start].is_ascii_alphabetic() || bytes[start] == b'_') {
            return Err(ParseError {
                position: start,
                message: "tag must start with a letter or '_'".into(),
            });
        }
        steps.push(Step {
            axis,
            tag: Some(input[start..pos].to_string()),
        });
    }
    if steps.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "expression has no steps".into(),
        });
    }
    Ok(PathExpr { steps })
}

impl std::fmt::Display for PathExpr {
    /// Writes the canonical syntax back out.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            match step.axis {
                Axis::Child => write!(f, "/")?,
                Axis::Connection => write!(f, "//")?,
            }
            match &step.tag {
                Some(t) => write!(f, "{t}")?,
                None => write!(f, "*")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_paths() {
        let p = parse_path("/site/nav").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[0].tag.as_deref(), Some("site"));
        assert_eq!(p.steps[1].tag.as_deref(), Some("nav"));
    }

    #[test]
    fn parses_connection_axis() {
        let p = parse_path("//article//author").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Connection));
    }

    #[test]
    fn parses_wildcards_and_mixed_axes() {
        let p = parse_path("/a//*/b").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].tag, None);
        assert_eq!(p.steps[1].axis, Axis::Connection);
        assert_eq!(p.steps[2].axis, Axis::Child);
    }

    #[test]
    fn roundtrips_display() {
        for s in ["/a/b", "//x//y", "/a//*/b-2", "//*"] {
            assert_eq!(parse_path(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a/b").is_err());
        assert!(parse_path("/").is_err());
        assert!(parse_path("//").is_err());
        assert!(parse_path("/a/ /b").is_err());
        assert!(parse_path("/9tag").is_err());
    }

    #[test]
    fn tags_with_punctuation() {
        let p = parse_path("/ss1.x/_priv//fig-2").unwrap();
        assert_eq!(p.steps[0].tag.as_deref(), Some("ss1.x"));
        assert_eq!(p.steps[1].tag.as_deref(), Some("_priv"));
        assert_eq!(p.steps[2].tag.as_deref(), Some("fig-2"));
    }
}
