//! The path-expression language.
//!
//! Grammar (a pragmatic subset of XPath's abbreviated syntax, with `//`
//! generalized to the *connection* axis — descendants along tree **and**
//! link edges, possibly crossing documents — plus INEX-style content
//! predicates):
//!
//! ```text
//! path  := axis step (axis step)*
//! axis  := '/' | '//'
//! step  := (tag | '*') pred?
//! tag   := [A-Za-z_][A-Za-z0-9_.-]*
//! pred  := '[' ('contains' | 'about') '(' ('.' ',')? '"' phrase '"' ')' ']'
//! ```
//!
//! A leading `/` anchors the first step at document roots; a leading `//`
//! matches the first step anywhere. `contains` requires **all** phrase
//! terms in the element's direct text (conjunctive); `about` requires
//! **any** (disjunctive) and is the ranked-retrieval form. Phrases are
//! tokenized like indexed text ([`hopi_text::tokenize`]), and a phrase
//! with no tokens is a parse error.

/// Step axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// `/` — direct parent/child tree edge.
    Child,
    /// `//` — the connection axis: any path of tree edges and links,
    /// including the node itself being a direct child (one or more edges;
    /// `a//b` requires `a →+ b`... see [`crate::eval`] for exact
    /// semantics: one or more graph edges).
    Connection,
}

/// How a content predicate combines its terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentOp {
    /// `contains(., "…")` — every term must occur in the element's text.
    Contains,
    /// `about(., "…")` — any term may occur; the ranked-retrieval form.
    About,
}

/// A content predicate attached to a step: `[contains(., "…")]` or
/// `[about(., "…")]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentPredicate {
    /// Conjunctive (`contains`) or disjunctive (`about`) term matching.
    pub op: ContentOp,
    /// The phrase as written (for display).
    pub phrase: String,
    /// The phrase's tokens, never empty (tokenized like indexed text).
    pub terms: Vec<String>,
}

impl ContentPredicate {
    /// Builds a predicate, tokenizing `phrase`; `None` when the phrase
    /// has no tokens.
    pub fn new(op: ContentOp, phrase: impl Into<String>) -> Option<Self> {
        let phrase = phrase.into();
        let terms: Vec<String> = hopi_text::tokenize(&phrase).collect();
        if terms.is_empty() {
            return None;
        }
        Some(ContentPredicate { op, phrase, terms })
    }
}

/// One step: an axis plus a node test, optionally content-qualified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// Tag test; `None` = `*` wildcard.
    pub tag: Option<String>,
    /// Content predicate; `None` = structure-only step.
    pub predicate: Option<ContentPredicate>,
}

/// A parsed path expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathExpr {
    /// Steps in order. The first step's axis anchors it: `Child` = at
    /// document roots, `Connection` = anywhere.
    pub steps: Vec<Step>,
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a path expression.
pub fn parse_path(input: &str) -> Result<PathExpr, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut steps = Vec::new();
    if bytes.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "empty expression".into(),
        });
    }
    while pos < bytes.len() {
        // Axis.
        if bytes[pos] != b'/' {
            return Err(ParseError {
                position: pos,
                message: format!(
                    "expected '/' or '//', found {:?}",
                    input[pos..].chars().next()
                ),
            });
        }
        let axis = if pos + 1 < bytes.len() && bytes[pos + 1] == b'/' {
            pos += 2;
            Axis::Connection
        } else {
            pos += 1;
            Axis::Child
        };
        // Node test.
        let start = pos;
        let tag = if pos < bytes.len() && bytes[pos] == b'*' {
            pos += 1;
            None
        } else {
            while pos < bytes.len()
                && (bytes[pos].is_ascii_alphanumeric() || matches!(bytes[pos], b'_' | b'.' | b'-'))
            {
                pos += 1;
            }
            if pos == start {
                return Err(ParseError {
                    position: pos,
                    message: "expected tag name or '*'".into(),
                });
            }
            if !(bytes[start].is_ascii_alphabetic() || bytes[start] == b'_') {
                return Err(ParseError {
                    position: start,
                    message: "tag must start with a letter or '_'".into(),
                });
            }
            Some(input[start..pos].to_string())
        };
        // Optional content predicate.
        let predicate = if pos < bytes.len() && bytes[pos] == b'[' {
            Some(parse_predicate(input, &mut pos)?)
        } else {
            None
        };
        steps.push(Step {
            axis,
            tag,
            predicate,
        });
    }
    if steps.is_empty() {
        return Err(ParseError {
            position: 0,
            message: "expression has no steps".into(),
        });
    }
    Ok(PathExpr { steps })
}

/// Parses `[contains(., "…")]` / `[about(., "…")]` starting at the `[`.
fn parse_predicate(input: &str, pos: &mut usize) -> Result<ContentPredicate, ParseError> {
    let err = |position: usize, message: &str| ParseError {
        position,
        message: message.into(),
    };
    let bytes = input.as_bytes();
    *pos += 1; // consume '['
    let rest = &input[*pos..];
    let op = if let Some(r) = rest.strip_prefix("contains(") {
        *pos += rest.len() - r.len();
        ContentOp::Contains
    } else if let Some(r) = rest.strip_prefix("about(") {
        *pos += rest.len() - r.len();
        ContentOp::About
    } else {
        return Err(err(*pos, "expected 'contains(' or 'about('"));
    };
    // Optional XPath-style context argument: `., ` (whitespace tolerated).
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if bytes.get(*pos) != Some(&b',') {
            return Err(err(*pos, "expected ',' after '.'"));
        }
        *pos += 1;
        while bytes.get(*pos) == Some(&b' ') {
            *pos += 1;
        }
    }
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected '\"' opening the phrase"));
    }
    *pos += 1;
    let phrase_start = *pos;
    let Some(close) = input[*pos..].find('"') else {
        return Err(err(*pos, "unterminated phrase"));
    };
    *pos += close;
    let phrase = &input[phrase_start..*pos];
    *pos += 1; // closing quote
    if !input[*pos..].starts_with(")]") {
        return Err(err(*pos, "expected ')]' closing the predicate"));
    }
    *pos += 2;
    ContentPredicate::new(op, phrase)
        .ok_or_else(|| err(phrase_start, "phrase contains no searchable terms"))
}

impl std::fmt::Display for ContentPredicate {
    /// Writes the canonical `[op(., "phrase")]` form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self.op {
            ContentOp::Contains => "contains",
            ContentOp::About => "about",
        };
        write!(f, "[{name}(., \"{}\")]", self.phrase)
    }
}

impl std::fmt::Display for PathExpr {
    /// Writes the canonical syntax back out.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for step in &self.steps {
            match step.axis {
                Axis::Child => write!(f, "/")?,
                Axis::Connection => write!(f, "//")?,
            }
            match &step.tag {
                Some(t) => write!(f, "{t}")?,
                None => write!(f, "*")?,
            }
            if let Some(p) = &step.predicate {
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_paths() {
        let p = parse_path("/site/nav").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].axis, Axis::Child);
        assert_eq!(p.steps[0].tag.as_deref(), Some("site"));
        assert_eq!(p.steps[1].tag.as_deref(), Some("nav"));
    }

    #[test]
    fn parses_connection_axis() {
        let p = parse_path("//article//author").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Connection));
    }

    #[test]
    fn parses_wildcards_and_mixed_axes() {
        let p = parse_path("/a//*/b").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[1].tag, None);
        assert_eq!(p.steps[1].axis, Axis::Connection);
        assert_eq!(p.steps[2].axis, Axis::Child);
    }

    #[test]
    fn roundtrips_display() {
        for s in [
            "/a/b",
            "//x//y",
            "/a//*/b-2",
            "//*",
            "//sec[contains(., \"xml indexing\")]",
            "//article//p[about(., \"two hop cover\")]/b",
            "//*[about(., \"hopi\")]",
        ] {
            assert_eq!(parse_path(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a/b").is_err());
        assert!(parse_path("/").is_err());
        assert!(parse_path("//").is_err());
        assert!(parse_path("/a/ /b").is_err());
        assert!(parse_path("/9tag").is_err());
    }

    #[test]
    fn parses_content_predicates() {
        let p = parse_path("//sec[contains(\"XML, indexing\")]").unwrap();
        let pred = p.steps[0].predicate.as_ref().unwrap();
        assert_eq!(pred.op, ContentOp::Contains);
        assert_eq!(pred.terms, ["xml", "indexing"]);
        let p = parse_path("//sec[about(., \"Hop\")]//b").unwrap();
        let pred = p.steps[0].predicate.as_ref().unwrap();
        assert_eq!(pred.op, ContentOp::About);
        assert_eq!(pred.terms, ["hop"]);
        assert_eq!(p.steps[1].predicate, None);
    }

    #[test]
    fn rejects_malformed_predicates() {
        assert!(parse_path("//sec[").is_err());
        assert!(parse_path("//sec[foo(\"x\")]").is_err());
        assert!(parse_path("//sec[contains(\"x\"]").is_err());
        assert!(parse_path("//sec[contains(\"x)]").is_err());
        assert!(parse_path("//sec[contains(., \"\")]").is_err()); // no terms
        assert!(parse_path("//sec[contains(., \",,\")]").is_err());
        assert!(parse_path("//sec[contains(.\"x\")]").is_err());
    }

    #[test]
    fn tags_with_punctuation() {
        let p = parse_path("/ss1.x/_priv//fig-2").unwrap();
        assert_eq!(p.steps[0].tag.as_deref(), Some("ss1.x"));
        assert_eq!(p.steps[1].tag.as_deref(), Some("_priv"));
        assert_eq!(p.steps[2].tag.as_deref(), Some("fig-2"));
    }
}
