//! Inverted element-by-tag index.
//!
//! Path evaluation needs "all elements with tag `t`" to seed `//t` steps
//! and to filter step results — the element-name index every XML engine
//! pairs with a connection index.

use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashMap;

/// Maps tag names to sorted lists of global element ids.
#[derive(Clone, Debug, Default)]
pub struct TagIndex {
    by_tag: FxHashMap<String, Vec<ElemId>>,
    total: usize,
}

impl TagIndex {
    /// Builds the index over all live documents of a collection.
    pub fn build(collection: &Collection) -> Self {
        let mut by_tag: FxHashMap<String, Vec<ElemId>> = FxHashMap::default();
        let mut total = 0usize;
        for d in collection.doc_ids() {
            let Some(doc) = collection.document(d) else {
                continue;
            };
            let base = collection.global_id(d, 0);
            for (local, e) in doc.elements() {
                by_tag.entry(e.tag.clone()).or_default().push(base + local);
                total += 1;
            }
        }
        for v in by_tag.values_mut() {
            v.sort_unstable();
        }
        TagIndex { by_tag, total }
    }

    /// Elements with the given tag (sorted; empty for unknown tags).
    pub fn elements(&self, tag: &str) -> &[ElemId] {
        self.by_tag.get(tag).map_or(&[], Vec::as_slice)
    }

    /// Does any element carry this tag?
    pub fn contains_tag(&self, tag: &str) -> bool {
        self.by_tag.contains_key(tag)
    }

    /// Number of distinct tags.
    pub fn tag_count(&self) -> usize {
        self.by_tag.len()
    }

    /// Total number of indexed elements.
    pub fn element_count(&self) -> usize {
        self.total
    }

    /// Membership test: does element `e` carry tag `tag`?
    pub fn has_tag(&self, e: ElemId, tag: &str) -> bool {
        self.elements(tag).binary_search(&e).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::XmlDocument;

    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut d = XmlDocument::new("a", "book");
        d.add_element(0, "title");
        d.add_element(0, "author");
        c.add_document(d);
        let mut d = XmlDocument::new("b", "book");
        d.add_element(0, "author");
        c.add_document(d);
        c
    }

    #[test]
    fn indexes_all_tags() {
        let idx = TagIndex::build(&collection());
        assert_eq!(idx.elements("book"), &[0, 3]);
        assert_eq!(idx.elements("author"), &[2, 4]);
        assert_eq!(idx.elements("title"), &[1]);
        assert!(idx.elements("nothing").is_empty());
        assert_eq!(idx.tag_count(), 3);
        assert_eq!(idx.element_count(), 5);
    }

    #[test]
    fn membership_test() {
        let idx = TagIndex::build(&collection());
        assert!(idx.has_tag(0, "book"));
        assert!(!idx.has_tag(0, "author"));
        assert!(idx.contains_tag("title"));
    }

    #[test]
    fn skips_removed_documents() {
        let mut c = collection();
        c.remove_document(0);
        let idx = TagIndex::build(&c);
        assert_eq!(idx.elements("book"), &[3]);
        assert_eq!(idx.element_count(), 2);
    }
}
