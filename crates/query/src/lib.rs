//! # hopi-query — path expressions with wildcards over the HOPI index
//!
//! The paper's motivation (§1.1): "the HOPI index … has been judiciously
//! designed to handle path expressions over arbitrary graphs and to support
//! the efficient evaluation of path queries with wildcards." This crate
//! provides that evaluation layer:
//!
//! * [`expr`] — a small path-expression language:
//!   `//article//author`, `/site/nav//book/title`, `//*//sec` — child axis
//!   (`/`), connection axis (`//`, parent/child *and* link edges, across
//!   documents), tag tests, `*` wildcards, and INEX-style content
//!   predicates: `//sec[contains(., "xml indexing")]` (all terms) and
//!   `//sec[about(., "…")]` (any term, the ranked-retrieval form).
//! * [`tag_index`] — an inverted element-by-tag index used to seed and
//!   filter step candidates.
//! * [`eval`] — set-at-a-time evaluation against any
//!   [`hopi_core::LabelSource`]: each `//` step runs one of four physical
//!   strategies (pairwise probes, per-node enumeration, forward/backward
//!   hop joins over the inverted center rows), with reusable scratch so
//!   steady-state steps allocate nothing.
//! * [`plan`] — the cost-based per-step planner behind those strategies,
//!   plus EXPLAIN reports and the shared per-strategy execution counters
//!   the serving layer exposes.
//! * [`witness`] — EXPLAIN-style witness-path reconstruction for index
//!   answers (and an index-vs-BFS cross-check).
//! * [`ranking`] — distance-ranked evaluation against a
//!   [`hopi_core::DistanceCover`], scoring results XXL-style by link
//!   distance (paper §5.1: "a path where an author element is found far
//!   away from a book element should be ranked lower"), fused with BM25
//!   text scores from the final step's content predicate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod expr;
pub mod plan;
pub mod ranking;
pub mod tag_index;
pub mod witness;

pub use eval::{
    evaluate, evaluate_explained, evaluate_explained_with_text, evaluate_with, evaluate_with_text,
    with_thread_evaluator, EvalError, EvalOptions, Evaluator,
};
pub use expr::{parse_path, Axis, ContentOp, ContentPredicate, ParseError, PathExpr, Step};
pub use plan::{
    plan_content_predicate, ContentPlacement, PlanCounters, PlanCounts, QueryPlanReport, StepPlan,
    StepReport, Strategy,
};
pub use ranking::{evaluate_ranked, evaluate_ranked_with_text, RankedMatch};
pub use tag_index::TagIndex;
pub use witness::{verify_connection, witness_path, WitnessPath};
