//! Cost-based planning of `//` connection steps.
//!
//! A `//` step maps a sorted context set onto the candidate elements
//! reachable from it. Four physical strategies produce the same answer
//! (see `eval`):
//!
//! * **pairwise probe** — the paper's per-pair `LIN ⋈ LOUT` probe
//!   (§3.4), O(|context| × |candidates|) probes; unbeatable when both
//!   sides are tiny.
//! * **enumerate** — per-context-node descendant enumeration through the
//!   inverted lists, marking reached nodes; revisits shared centers once
//!   per holder.
//! * **forward hop join** — Cohen-style center-at-a-time evaluation: the
//!   deduplicated center set `C = ⋃_u ({u} ∪ Lout(u))` is expanded once
//!   through the `inv_in` holder lists, so the step is linear in total
//!   label size instead of quadratic in set sizes.
//! * **backward hop join** — the symmetric ancestor-side join: the
//!   context set is stamped, then each candidate's `{v} ∪ Lin(v)` is
//!   checked against `inv_out` holder lists with early exit; wins when
//!   the candidate side is much smaller than the forward expansion.
//!
//! [`plan_connection_step`] prices all four from [`CoverStats`] averages
//! plus the exact `Σ |Lout(u)|` of the context set (O(1) per node via the
//! CSR row lengths) and picks the cheapest. Costs are abstract
//! row-entry-touch counts — only their *order* matters.
//!
//! Execution is observable end to end: every evaluation tallies the
//! chosen strategies ([`PlanCounts`], aggregated into shared
//! [`PlanCounters`] by the serving layer, surfaced via `GET /stats` and
//! `/metrics`), and explain mode ([`QueryPlanReport`]) records sizes,
//! estimates, and the winner per step.

use crate::expr::{Axis, PathExpr};
use hopi_core::CoverStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// How one `//` connection step is executed. All strategies return the
/// same sorted, deduplicated answer — the planner picks a physical plan,
/// never an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Per-candidate `Lout(u) ∩ Lin(v)` probes against the context set.
    PairwiseProbe,
    /// Per-context-node descendant-set enumeration.
    Enumerate,
    /// Set-at-a-time descendant-side hop join over `inv_in`.
    ForwardHopJoin,
    /// Set-at-a-time ancestor-side hop join over `inv_out`.
    BackwardHopJoin,
}

impl Strategy {
    /// All strategies, in counter/exposition order.
    pub const ALL: [Strategy; 4] = [
        Strategy::PairwiseProbe,
        Strategy::Enumerate,
        Strategy::ForwardHopJoin,
        Strategy::BackwardHopJoin,
    ];

    /// Stable label used in metrics expositions and explain output.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::PairwiseProbe => "pairwise_probe",
            Strategy::Enumerate => "enumerate",
            Strategy::ForwardHopJoin => "forward_hop_join",
            Strategy::BackwardHopJoin => "backward_hop_join",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Strategy::PairwiseProbe => 0,
            Strategy::Enumerate => 1,
            Strategy::ForwardHopJoin => 2,
            Strategy::BackwardHopJoin => 3,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Estimated cost of every strategy for one step (abstract row-entry
/// touches; comparable within a step only).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepCosts {
    /// Pairwise-probe estimate.
    pub pairwise: f64,
    /// Enumeration estimate.
    pub enumerate: f64,
    /// Forward-hop-join estimate.
    pub forward: f64,
    /// Backward-hop-join estimate.
    pub backward: f64,
}

impl StepCosts {
    /// The estimate for one strategy.
    pub fn get(&self, strategy: Strategy) -> f64 {
        match strategy {
            Strategy::PairwiseProbe => self.pairwise,
            Strategy::Enumerate => self.enumerate,
            Strategy::ForwardHopJoin => self.forward,
            Strategy::BackwardHopJoin => self.backward,
        }
    }

    fn cheapest(&self) -> Strategy {
        let mut best = Strategy::PairwiseProbe;
        for s in Strategy::ALL {
            if self.get(s) < self.get(best) {
                best = s;
            }
        }
        best
    }
}

/// Where a step's content predicate runs relative to its structural
/// join. Placement never changes answers — both orders compute the same
/// intersection of structural matches and term matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentPlacement {
    /// Filter the candidate set through the posting lists *before* the
    /// structural join — the content side is the more selective one.
    PreFilter,
    /// Run the structural join first and filter its output — the
    /// structure side is the more selective one.
    PostFilter,
}

impl ContentPlacement {
    /// Stable label used in explain output.
    pub fn label(self) -> &'static str {
        match self {
            ContentPlacement::PreFilter => "pre_filter",
            ContentPlacement::PostFilter => "post_filter",
        }
    }
}

/// Orders a step's content predicate against its structural join by
/// selectivity: the predicate's posting-length bound (min df over terms
/// for conjunctive `contains`, Σ df for disjunctive `about`) against the
/// structural candidate count. A predicate expected to match fewer
/// elements than the tag test shrinks the join's candidate side first.
pub fn plan_content_predicate(posting_estimate: usize, cand_len: usize) -> ContentPlacement {
    if posting_estimate < cand_len {
        ContentPlacement::PreFilter
    } else {
        ContentPlacement::PostFilter
    }
}

/// The plan chosen for one `//` step, with the inputs that led to it.
#[derive(Clone, Copy, Debug)]
pub struct StepPlan {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Per-strategy estimates (meaningless when `forced`).
    pub costs: StepCosts,
    /// `EvalOptions::force_strategy` override was in effect.
    pub forced: bool,
    /// The `probe_budget` shortcut fired (`|context| × |candidates|` under
    /// budget picks pairwise probes without pricing the alternatives).
    pub budget_shortcut: bool,
}

/// Prices the four strategies for one `//` step and picks the cheapest.
///
/// * `stats` — O(1) aggregate row statistics of the cover.
/// * `current_len` / `cand_len` — the materialized set sizes.
/// * `lout_total` — exact `Σ_{u ∈ context} |Lout(u)|` (the caller reads
///   row lengths while it has the context set in hand).
/// * `probe_budget` — compatibility shortcut: at or under this many
///   candidate probes the step stays on pairwise probes unpriced.
/// * `force` — test/CLI hook pinning one strategy.
pub fn plan_connection_step(
    stats: &CoverStats,
    current_len: usize,
    lout_total: usize,
    cand_len: usize,
    probe_budget: usize,
    force: Option<Strategy>,
) -> StepPlan {
    let cur = current_len as f64;
    let cand = cand_len as f64;
    let avg_inv_in = stats.avg_inv_in();
    let avg_inv_out = stats.avg_inv_out();
    let avg_lin = stats.avg_lin();
    let avg_lout = stats.avg_lout();

    // One probe costs a signature check plus (on hits or filter misses) a
    // bounded merge of two label rows.
    let pairwise = cur * cand * (2.0 + (avg_lin + avg_lout) / 2.0);
    // Enumeration expands every context node's centers through `inv_in`
    // *without* cross-node center dedup, and re-sorts per node.
    let enumerate = (cur + lout_total as f64) * (1.5 + avg_inv_in) + cand;
    // The forward join expands each distinct center once; the center set
    // is at most the summed Lout rows and at most every node.
    let centers = ((current_len + lout_total) as f64).min(stats.nodes as f64);
    let forward = cur + centers * (1.0 + avg_inv_in) + cand;
    // The backward join stamps the context set, then walks each
    // candidate's ancestor rows (early exit ignored — a conservative
    // upper bound).
    let backward = cur + cand * (2.0 + avg_lin * (1.0 + avg_inv_out) + avg_inv_out);

    let costs = StepCosts {
        pairwise,
        enumerate,
        forward,
        backward,
    };
    if let Some(strategy) = force {
        return StepPlan {
            strategy,
            costs,
            forced: true,
            budget_shortcut: false,
        };
    }
    if current_len.saturating_mul(cand_len) <= probe_budget {
        return StepPlan {
            strategy: Strategy::PairwiseProbe,
            costs,
            forced: false,
            budget_shortcut: true,
        };
    }
    StepPlan {
        strategy: costs.cheapest(),
        costs,
        forced: false,
        budget_shortcut: false,
    }
}

/// Point-in-time per-strategy execution totals (one cell per
/// [`Strategy`], in [`Strategy::ALL`] order semantics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCounts {
    /// `//` steps executed as pairwise probes.
    pub pairwise_probe: u64,
    /// Steps executed as per-node enumeration.
    pub enumerate: u64,
    /// Steps executed as forward hop joins.
    pub forward_hop_join: u64,
    /// Steps executed as backward hop joins.
    pub backward_hop_join: u64,
}

impl PlanCounts {
    /// Total `//` steps executed.
    pub fn total(&self) -> u64 {
        self.pairwise_probe + self.enumerate + self.forward_hop_join + self.backward_hop_join
    }

    /// The count for one strategy.
    pub fn get(&self, strategy: Strategy) -> u64 {
        match strategy {
            Strategy::PairwiseProbe => self.pairwise_probe,
            Strategy::Enumerate => self.enumerate,
            Strategy::ForwardHopJoin => self.forward_hop_join,
            Strategy::BackwardHopJoin => self.backward_hop_join,
        }
    }

    /// `(label, count)` pairs in exposition order, for metrics renderers.
    pub fn as_labeled(&self) -> [(&'static str, u64); 4] {
        [
            (Strategy::PairwiseProbe.label(), self.pairwise_probe),
            (Strategy::Enumerate.label(), self.enumerate),
            (Strategy::ForwardHopJoin.label(), self.forward_hop_join),
            (Strategy::BackwardHopJoin.label(), self.backward_hop_join),
        ]
    }

    pub(crate) fn from_cells(cells: [u64; 4]) -> Self {
        PlanCounts {
            pairwise_probe: cells[0],
            enumerate: cells[1],
            forward_hop_join: cells[2],
            backward_hop_join: cells[3],
        }
    }
}

/// Shared, thread-safe per-strategy execution counters — the serving
/// layer hangs one of these off the engine (behind an `Arc`) and folds
/// every query's [`PlanCounts`] into it, so plan regressions show up in
/// `GET /stats` and Prometheus `/metrics` instead of only in latency.
#[derive(Debug, Default)]
pub struct PlanCounters {
    cells: [AtomicU64; 4],
}

impl PlanCounters {
    /// A zeroed registry.
    pub fn new() -> Self {
        PlanCounters::default()
    }

    /// Records one executed step.
    pub fn record(&self, strategy: Strategy) {
        self.cells[strategy.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one query's tallies in (relaxed atomics; scrapes may be a
    /// hair stale but never torn).
    pub fn add(&self, counts: PlanCounts) {
        for s in Strategy::ALL {
            let n = counts.get(s);
            if n != 0 {
                self.cells[s.index()].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Point-in-time totals.
    pub fn counts(&self) -> PlanCounts {
        PlanCounts::from_cells([
            self.cells[0].load(Ordering::Relaxed),
            self.cells[1].load(Ordering::Relaxed),
            self.cells[2].load(Ordering::Relaxed),
            self.cells[3].load(Ordering::Relaxed),
        ])
    }
}

/// One step's record in an explained evaluation.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step index within the expression (0 = the seed step).
    pub step: usize,
    /// The step's axis.
    pub axis: Axis,
    /// Context-set size going in (0 for the seed step).
    pub input: usize,
    /// Candidate-set size (connection steps only).
    pub candidates: usize,
    /// Result-set size coming out.
    pub output: usize,
    /// The chosen plan (connection steps only; `None` for seed and child
    /// steps, which have a single implementation).
    pub plan: Option<StepPlan>,
    /// Content-predicate placement (`None` = structure-only step).
    pub content: Option<ContentPlacement>,
    /// Wall time the step took, in microseconds (EXPLAIN ANALYZE: the
    /// step actually ran; this is measured, not estimated).
    pub elapsed_us: u64,
}

/// EXPLAIN output of one evaluation: per-step sizes, estimates, and the
/// strategy that ran. Render it against the expression it came from with
/// [`QueryPlanReport::render`].
#[derive(Clone, Debug, Default)]
pub struct QueryPlanReport {
    /// One record per executed step, in order. Evaluation short-circuits
    /// on an empty context set, so this may be shorter than the
    /// expression.
    pub steps: Vec<StepReport>,
}

impl QueryPlanReport {
    /// Tallies the executed strategies (what serving folds into
    /// [`PlanCounters`]).
    pub fn strategy_counts(&self) -> PlanCounts {
        let mut cells = [0u64; 4];
        for step in &self.steps {
            if let Some(plan) = &step.plan {
                cells[plan.strategy.index()] += 1;
            }
        }
        PlanCounts::from_cells(cells)
    }

    /// Total measured wall time across all executed steps, in
    /// microseconds.
    pub fn total_elapsed_us(&self) -> u64 {
        self.steps.iter().map(|s| s.elapsed_us).sum()
    }

    /// Renders a human-readable plan, one line per step, labeling steps
    /// with the expression they came from.
    pub fn render(&self, expr: &PathExpr) -> String {
        let mut out = String::new();
        for report in &self.steps {
            let step_src = expr
                .steps
                .get(report.step)
                .map(|s| {
                    format!(
                        "{}{}",
                        match s.axis {
                            Axis::Child => "/",
                            Axis::Connection => "//",
                        },
                        s.tag.as_deref().unwrap_or("*")
                    )
                })
                .unwrap_or_default();
            out.push_str(&format!("step {}  {:<16}", report.step, step_src));
            if let Some(placement) = report.content {
                out.push_str(&format!("content={}  ", placement.label()));
            }
            match &report.plan {
                Some(plan) => {
                    let how = if plan.forced {
                        " (forced)"
                    } else if plan.budget_shortcut {
                        " (budget)"
                    } else {
                        ""
                    };
                    out.push_str(&format!(
                        "strategy={}{how}  context={} candidates={}  est: pairwise={:.0} enumerate={:.0} forward={:.0} backward={:.0}",
                        plan.strategy,
                        report.input,
                        report.candidates,
                        plan.costs.pairwise,
                        plan.costs.enumerate,
                        plan.costs.forward,
                        plan.costs.backward,
                    ));
                }
                None if report.step == 0 => out.push_str("seed"),
                None if report.axis == Axis::Child => {
                    out.push_str(&format!("tree-child  context={}", report.input))
                }
                None => out.push_str(&format!(
                    "no candidates  context={} candidates=0",
                    report.input
                )),
            }
            out.push_str(&format!(
                "  rows: {} -> {}  time={}µs\n",
                report.input, report.output, report.elapsed_us
            ));
        }
        out.push_str(&format!("total time={}µs\n", self.total_elapsed_us()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CoverStats {
        CoverStats {
            nodes: 1_000,
            lin_entries: 4_000,
            lout_entries: 2_000,
        }
    }

    #[test]
    fn budget_shortcut_keeps_tiny_steps_on_probes() {
        let plan = plan_connection_step(&stats(), 4, 12, 100, 4_096, None);
        assert_eq!(plan.strategy, Strategy::PairwiseProbe);
        assert!(plan.budget_shortcut);
    }

    #[test]
    fn large_steps_leave_pairwise() {
        // 1k × 1k probes is priced far above a linear hop join.
        let plan = plan_connection_step(&stats(), 1_000, 3_000, 1_000, 4_096, None);
        assert!(!plan.budget_shortcut);
        assert_ne!(plan.strategy, Strategy::PairwiseProbe);
        assert!(plan.costs.get(plan.strategy) <= plan.costs.pairwise);
    }

    #[test]
    fn tiny_candidate_side_prefers_the_backward_join() {
        // Huge context, two candidates: the ancestor-side join touches a
        // couple of rows; the forward expansion touches the world.
        let plan = plan_connection_step(&stats(), 900, 5_000, 2, 0, None);
        assert_eq!(plan.strategy, Strategy::BackwardHopJoin);
    }

    #[test]
    fn forward_join_beats_enumeration() {
        // Same shape, but enumeration revisits shared centers; the
        // forward join's dedup makes it at most as expensive.
        let plan = plan_connection_step(&stats(), 500, 10_000, 5_000, 0, None);
        assert!(plan.costs.forward <= plan.costs.enumerate);
        assert_eq!(plan.strategy, Strategy::ForwardHopJoin);
    }

    #[test]
    fn force_overrides_everything() {
        let plan = plan_connection_step(&stats(), 1, 0, 1, 4_096, Some(Strategy::Enumerate));
        assert_eq!(plan.strategy, Strategy::Enumerate);
        assert!(plan.forced);
    }

    #[test]
    fn counters_fold_counts() {
        let counters = PlanCounters::new();
        counters.record(Strategy::ForwardHopJoin);
        counters.add(PlanCounts {
            pairwise_probe: 2,
            enumerate: 0,
            forward_hop_join: 1,
            backward_hop_join: 3,
        });
        let counts = counters.counts();
        assert_eq!(counts.pairwise_probe, 2);
        assert_eq!(counts.forward_hop_join, 2);
        assert_eq!(counts.backward_hop_join, 3);
        assert_eq!(counts.total(), 7);
        assert_eq!(counts.as_labeled()[2], ("forward_hop_join", 2));
    }

    #[test]
    fn report_renders_step_lines() {
        let expr = crate::parse_path("//a//b").unwrap();
        let report = QueryPlanReport {
            steps: vec![
                StepReport {
                    step: 0,
                    axis: Axis::Connection,
                    input: 0,
                    candidates: 0,
                    output: 3,
                    plan: None,
                    content: None,
                    elapsed_us: 12,
                },
                StepReport {
                    step: 1,
                    axis: Axis::Connection,
                    input: 3,
                    candidates: 9,
                    output: 2,
                    plan: Some(plan_connection_step(&stats(), 3, 4, 9, 0, None)),
                    content: Some(ContentPlacement::PreFilter),
                    elapsed_us: 30,
                },
            ],
        };
        let text = report.render(&expr);
        assert!(text.contains("step 0"), "{text}");
        assert!(text.contains("//b"), "{text}");
        assert!(text.contains("strategy="), "{text}");
        assert!(text.contains("content=pre_filter"), "{text}");
        assert!(text.contains("rows: 3 -> 2"), "{text}");
        assert!(text.contains("time=30µs"), "{text}");
        assert!(text.contains("total time=42µs"), "{text}");
        assert_eq!(report.strategy_counts().total(), 1);
        assert_eq!(report.total_elapsed_us(), 42);
    }

    #[test]
    fn content_placement_follows_selectivity() {
        assert_eq!(
            plan_content_predicate(10, 1_000),
            ContentPlacement::PreFilter
        );
        assert_eq!(
            plan_content_predicate(1_000, 10),
            ContentPlacement::PostFilter
        );
        // Ties keep the structural join first (its output is exact).
        assert_eq!(plan_content_predicate(5, 5), ContentPlacement::PostFilter);
    }
}
