//! Witness paths: EXPLAIN-style evidence for connection-index answers.
//!
//! The 2-hop cover proves *that* `u` reaches `v` without storing *how*. For
//! debugging, result presentation ("this author matched because the survey
//! cites the paper that contains it"), and testing, this module
//! reconstructs an actual shortest element path on demand — BFS on the
//! element-level graph, guided nowhere near the index itself, so it also
//! serves as an independent cross-check of index answers.

use hopi_graph::DiGraph;
use hopi_xml::{Collection, ElemId};

/// One hop of a witness path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The element reached by this hop.
    pub element: ElemId,
    /// Tag of the element.
    pub tag: String,
    /// Document name of the element.
    pub document: String,
    /// Whether the edge *into* this element was an inter-document link
    /// (false for tree/intra edges and for the first element).
    pub via_link: bool,
}

/// A reconstructed path `u →* v` through the element-level graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessPath {
    /// Hops from source to target (inclusive).
    pub hops: Vec<Hop>,
}

impl WitnessPath {
    /// Number of edges.
    pub fn len(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// True for the degenerate single-node path.
    pub fn is_empty(&self) -> bool {
        self.hops.len() <= 1
    }

    /// Number of inter-document link edges used.
    pub fn link_count(&self) -> usize {
        self.hops.iter().filter(|h| h.via_link).count()
    }
}

impl std::fmt::Display for WitnessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, hop) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, "{}", if hop.via_link { " ⇒ " } else { " → " })?;
            }
            write!(f, "{}:{}", hop.document, hop.tag)?;
        }
        Ok(())
    }
}

/// Reconstructs a shortest witness path `u →* v`, or `None` when
/// unreachable. `graph` must be the collection's element graph.
pub fn witness_path(
    collection: &Collection,
    graph: &DiGraph,
    u: ElemId,
    v: ElemId,
) -> Option<WitnessPath> {
    if !graph.is_alive(u) || !graph.is_alive(v) {
        return None;
    }
    // BFS with parent pointers.
    let mut parent: Vec<u32> = vec![u32::MAX; graph.id_bound()];
    let mut queue = std::collections::VecDeque::from([u]);
    if let Some(slot) = parent.get_mut(u as usize) {
        *slot = u;
    }
    'bfs: while let Some(x) = queue.pop_front() {
        for &y in graph.successors(x) {
            let Some(slot) = parent.get_mut(y as usize) else {
                continue;
            };
            if *slot == u32::MAX {
                *slot = x;
                if y == v {
                    break 'bfs;
                }
                queue.push_back(y);
            }
        }
    }
    let parent_of = |e: ElemId| parent.get(e as usize).copied().unwrap_or(u32::MAX);
    if parent_of(v) == u32::MAX && u != v {
        return None;
    }
    // Backtrack. A broken parent chain (out-of-bounds or unvisited
    // entry) cannot happen after the reachability check above, but it
    // bails out rather than panicking or spinning.
    let mut nodes = vec![v];
    let mut cur = v;
    while cur != u {
        let p = parent_of(cur);
        if p == u32::MAX {
            return None;
        }
        cur = p;
        nodes.push(cur);
    }
    nodes.reverse();

    let hop_of = |e: ElemId, via_link: bool| -> Hop {
        // An unresolvable id (raced deletion) yields a hop with empty
        // names rather than panicking the query thread.
        let resolved = collection
            .to_local(e)
            .and_then(|(d, local)| collection.document(d).map(|doc| (doc, local)));
        let (tag, document) = match resolved {
            Some((doc, local)) => (doc.element(local).tag.clone(), doc.name.clone()),
            None => (String::new(), String::new()),
        };
        Hop {
            element: e,
            tag,
            document,
            via_link,
        }
    };
    let hops: Vec<Hop> = nodes
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let via_link = i
                .checked_sub(1)
                .and_then(|j| nodes.get(j))
                .is_some_and(|&prev| collection.doc_of(prev) != collection.doc_of(e));
            hop_of(e, via_link)
        })
        .collect();
    Some(WitnessPath { hops })
}

/// Cross-check helper: the witness path must exist exactly when the index
/// claims connectivity. Returns the path when both agree on "connected".
///
/// # Panics
/// Panics when index and graph disagree — that is an index corruption bug
/// worth failing loudly for.
pub fn verify_connection(
    collection: &Collection,
    graph: &DiGraph,
    index: &hopi_core::HopiIndex,
    u: ElemId,
    v: ElemId,
) -> Option<WitnessPath> {
    let path = witness_path(collection, graph, u, v);
    assert_eq!(
        index.connected(u, v),
        path.is_some() || u == v,
        "index disagrees with witness BFS on ({u}, {v})"
    );
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_partition::{build_index, BuildConfig};
    use hopi_xml::parser::parse_collection;

    fn fixture() -> Collection {
        parse_collection([
            ("a", r#"<r><s><cite xlink:href="b"/></s></r>"#),
            ("b", r#"<r><leaf/></r>"#),
        ])
        .unwrap()
    }

    #[test]
    fn finds_cross_document_path() {
        let c = fixture();
        let g = c.element_graph();
        let path = witness_path(&c, &g, 0, c.global_id(1, 1)).unwrap();
        assert_eq!(path.len(), 4); // r → s → cite ⇒ r → leaf
        assert_eq!(path.link_count(), 1);
        assert_eq!(path.to_string(), "a:r → a:s → a:cite ⇒ b:r → b:leaf");
    }

    #[test]
    fn none_when_unreachable() {
        let c = fixture();
        let g = c.element_graph();
        assert!(witness_path(&c, &g, c.global_id(1, 0), 0).is_none());
    }

    #[test]
    fn reflexive_path_is_empty() {
        let c = fixture();
        let g = c.element_graph();
        let p = witness_path(&c, &g, 2, 2).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn shortest_path_chosen() {
        let c = parse_collection([
            ("a", r#"<r><x xlink:href="b"/><y xlink:href="b#deep"/></r>"#),
            ("b", r#"<r><m><n id="deep"/></m></r>"#),
        ])
        .unwrap();
        let g = c.element_graph();
        let deep = c.resolve_ref("b", "deep").unwrap();
        let p = witness_path(&c, &g, 0, deep).unwrap();
        // Direct anchor link: r → y ⇒ n (2 edges), not via b's root (4).
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn verify_agrees_with_index() {
        let c = fixture();
        let g = c.element_graph();
        let (index, _) = build_index(&c, &BuildConfig::default());
        for u in 0..g.id_bound() as u32 {
            for v in 0..g.id_bound() as u32 {
                let _ = verify_connection(&c, &g, &index, u, v);
            }
        }
    }
}
