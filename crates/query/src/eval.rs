//! Set-at-a-time evaluation of path expressions against the HOPI index.
//!
//! * `/tag` steps walk the element-level **tree** (XPath child axis).
//! * `//tag` steps use the **connection axis**: all elements reachable over
//!   one or more tree or link edges — the query class HOPI exists for. Each
//!   `//` step is answered from the 2-hop cover by one of four physical
//!   strategies (pairwise probes, per-node enumeration, or a forward /
//!   backward set-at-a-time **hop join** over the inverted center rows),
//!   chosen per step by the cost-based planner in [`crate::plan`]. All
//!   strategies return the same sorted, deduplicated answer.
//!
//! Evaluation threads reusable scratch (generation-stamped mark tables,
//! center sets, enumeration buffers) through an [`Evaluator`], so
//! steady-state `//` steps allocate nothing; [`evaluate_with`] runs on a
//! per-thread evaluator, which is what the frozen serving path uses.
//!
//! Following XPath, `a//b` never returns the context node itself for
//! `a == b` (the 2-hop cover cannot distinguish a reflexive hit from a
//! cyclic path back to the node, and self-cycles are a degenerate case for
//! document data).

use crate::expr::{parse_path, Axis, ContentOp, ContentPredicate, ParseError, PathExpr};
use crate::plan::{
    plan_connection_step, plan_content_predicate, ContentPlacement, QueryPlanReport, StepReport,
    Strategy,
};
use crate::tag_index::TagIndex;
use hopi_core::{HopiIndex, LabelSource};
use hopi_obs::Stopwatch;
use hopi_text::TextSource;
use hopi_xml::{Collection, ElemId};
use std::cell::RefCell;

/// Evaluation error (currently only malformed expressions via
/// [`evaluate_str`]).
#[derive(Debug)]
pub enum EvalError {
    /// The expression failed to parse.
    Parse(ParseError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}

/// Tunables of set-at-a-time evaluation. Neither knob changes answers —
/// they pick execution plans.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Planner shortcut: at or under this many candidate probes
    /// (`|context| × |candidates|`) a `//` step stays on pairwise
    /// reachability probes without pricing the alternatives. Above it the
    /// step is planned cost-based across all four strategies
    /// (`usize::MAX` therefore pins pairwise probes everywhere).
    pub probe_budget: usize,
    /// Pins one strategy on every `//` step (`None` = cost-based
    /// planning). Test and diagnostics hook.
    pub force_strategy: Option<Strategy>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            probe_budget: 4_096,
            force_strategy: None,
        }
    }
}

/// Parses and evaluates a path expression. Returns matching element ids,
/// sorted and deduplicated.
pub fn evaluate_str(
    collection: &Collection,
    index: &HopiIndex,
    tags: &TagIndex,
    expr: &str,
) -> Result<Vec<ElemId>, EvalError> {
    Ok(evaluate(collection, index, tags, &parse_path(expr)?))
}

/// Evaluates a parsed path expression with default [`EvalOptions`].
///
/// The index is any [`LabelSource`] — the live [`HopiIndex`] or a frozen
/// [`hopi_core::FrozenCover`] snapshot; answers are identical.
pub fn evaluate<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
) -> Vec<ElemId> {
    evaluate_with(collection, index, tags, expr, &EvalOptions::default())
}

/// Evaluates a parsed path expression under explicit options, on this
/// thread's reusable [`Evaluator`] (see [`evaluate`] for the index
/// abstraction).
pub fn evaluate_with<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
    options: &EvalOptions,
) -> Vec<ElemId> {
    with_thread_evaluator(|ev| ev.evaluate(collection, index, tags, expr, options))
}

/// Evaluates with an EXPLAIN-style per-step plan report alongside the
/// answer (same answer as [`evaluate_with`]).
pub fn evaluate_explained<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
    options: &EvalOptions,
) -> (Vec<ElemId>, QueryPlanReport) {
    with_thread_evaluator(|ev| ev.evaluate_explained(collection, index, tags, expr, options))
}

/// Like [`evaluate_with`], resolving content predicates against a term
/// index. With `text = None` a content predicate matches nothing (there
/// is no text to search).
pub fn evaluate_with_text<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
    options: &EvalOptions,
    text: Option<&dyn TextSource>,
) -> Vec<ElemId> {
    with_thread_evaluator(|ev| ev.evaluate_with_text(collection, index, tags, expr, options, text))
}

/// [`evaluate_with_text`] plus the EXPLAIN-style plan report (which
/// records where each content predicate was placed).
pub fn evaluate_explained_with_text<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
    options: &EvalOptions,
    text: Option<&dyn TextSource>,
) -> (Vec<ElemId>, QueryPlanReport) {
    with_thread_evaluator(|ev| {
        ev.evaluate_explained_with_text(collection, index, tags, expr, options, text)
    })
}

thread_local! {
    static THREAD_EVALUATOR: RefCell<Evaluator> = RefCell::new(Evaluator::new());
}

/// Runs `f` with this thread's reusable [`Evaluator`]. Scratch buffers
/// persist across calls, so steady-state serving (one evaluator per
/// worker thread) evaluates `//` steps without allocating. Re-entrant
/// calls (evaluating from inside the closure) fall back to a fresh
/// evaluator instead of panicking on the thread-local borrow.
pub fn with_thread_evaluator<R>(f: impl FnOnce(&mut Evaluator) -> R) -> R {
    THREAD_EVALUATOR.with(|ev| match ev.try_borrow_mut() {
        Ok(mut ev) => f(&mut ev),
        Err(_) => f(&mut Evaluator::new()),
    })
}

/// Sentinel owner meaning "two or more distinct context nodes contributed
/// this center" (a real contributor id never reaches `u32::MAX`: covers
/// are capped far below it).
const MANY: ElemId = ElemId::MAX;

/// A generation-stamped node set: `O(1)` clear (bump the generation),
/// `O(1)` insert/lookup, no per-step allocation once grown.
#[derive(Default)]
struct StampSet {
    stamp: Vec<u32>,
    gen: u32,
}

impl StampSet {
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    #[inline]
    fn mark(&mut self, v: ElemId) {
        if let Some(slot) = self.stamp.get_mut(v as usize) {
            *slot = self.gen;
        }
    }

    #[inline]
    fn is_marked(&self, v: ElemId) -> bool {
        self.stamp.get(v as usize).is_some_and(|&s| s == self.gen)
    }
}

/// Reusable per-step scratch: mark tables, the center set with
/// contribution ownership, and the enumeration buffer.
#[derive(Default)]
struct Scratch {
    /// Result-side marks (reached nodes / context membership).
    mark: StampSet,
    /// Center-set membership for the forward hop join.
    center: StampSet,
    /// Parallel to `center`: the single contributing context node, or
    /// [`MANY`]. Lets a context node inside the candidate set exclude the
    /// centers only it contributed (the `u != t` XPath rule) without
    /// falling back to pairwise probes.
    center_owner: Vec<ElemId>,
    /// The distinct centers of the current step, in discovery order.
    centers: Vec<ElemId>,
    /// `descendants_into` buffer for the enumeration strategy.
    desc_buf: Vec<ElemId>,
}

impl Scratch {
    fn begin_centers(&mut self, n: usize) {
        self.center.begin(n);
        if self.center_owner.len() < n {
            self.center_owner.resize(n, 0);
        }
        self.centers.clear();
    }

    #[inline]
    fn add_center(&mut self, c: ElemId, source: ElemId) {
        let Some(slot) = self.center.stamp.get_mut(c as usize) else {
            return;
        };
        if *slot == self.center.gen {
            if self.center_owner[c as usize] != source {
                self.center_owner[c as usize] = MANY;
            }
        } else {
            *slot = self.center.gen;
            self.center_owner[c as usize] = source;
            self.centers.push(c);
        }
    }

    /// Is `c` a center contributed by some context node other than `t`?
    #[inline]
    fn center_witness(&self, c: ElemId, t: ElemId) -> bool {
        self.center.is_marked(c) && self.center_owner[c as usize] != t
    }
}

/// Reusable evaluation state: scratch buffers plus the per-run strategy
/// tally. One evaluator per thread keeps steady-state `//` steps
/// allocation-free; [`with_thread_evaluator`] manages that for you.
#[derive(Default)]
pub struct Evaluator {
    scratch: Scratch,
    /// Wildcard candidate buffer (kept apart from `scratch` so a borrowed
    /// candidate slice can coexist with mutable scratch access).
    cand_buf: Vec<ElemId>,
    /// Elements matching the current step's content predicate (sorted).
    pred_matches: Vec<ElemId>,
    /// Candidates surviving a pre-filtering content predicate.
    pred_buf: Vec<ElemId>,
    /// Double-buffer for the step pipeline.
    next_buf: Vec<ElemId>,
    /// Strategy executions of the most recent run, [`Strategy`]-indexed.
    counts: [u64; 4],
}

impl Evaluator {
    /// A fresh evaluator with empty scratch.
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Evaluates a parsed expression. Same contract as the free
    /// [`evaluate_with`], but scratch lives in `self`.
    pub fn evaluate<S: LabelSource>(
        &mut self,
        collection: &Collection,
        index: &S,
        tags: &TagIndex,
        expr: &PathExpr,
        options: &EvalOptions,
    ) -> Vec<ElemId> {
        self.run(collection, index, tags, expr, options, None, None)
    }

    /// Evaluates with an EXPLAIN-style per-step plan report.
    pub fn evaluate_explained<S: LabelSource>(
        &mut self,
        collection: &Collection,
        index: &S,
        tags: &TagIndex,
        expr: &PathExpr,
        options: &EvalOptions,
    ) -> (Vec<ElemId>, QueryPlanReport) {
        let mut report = QueryPlanReport::default();
        let out = self.run(
            collection,
            index,
            tags,
            expr,
            options,
            None,
            Some(&mut report),
        );
        (out, report)
    }

    /// Evaluates with content predicates resolved against `text` (see the
    /// free [`evaluate_with_text`]).
    pub fn evaluate_with_text<S: LabelSource>(
        &mut self,
        collection: &Collection,
        index: &S,
        tags: &TagIndex,
        expr: &PathExpr,
        options: &EvalOptions,
        text: Option<&dyn TextSource>,
    ) -> Vec<ElemId> {
        self.run(collection, index, tags, expr, options, text, None)
    }

    /// [`Evaluator::evaluate_with_text`] plus the plan report.
    pub fn evaluate_explained_with_text<S: LabelSource>(
        &mut self,
        collection: &Collection,
        index: &S,
        tags: &TagIndex,
        expr: &PathExpr,
        options: &EvalOptions,
        text: Option<&dyn TextSource>,
    ) -> (Vec<ElemId>, QueryPlanReport) {
        let mut report = QueryPlanReport::default();
        let out = self.run(
            collection,
            index,
            tags,
            expr,
            options,
            text,
            Some(&mut report),
        );
        (out, report)
    }

    /// Per-strategy `//`-step executions of the most recent run — what the
    /// serving layer folds into its shared
    /// [`PlanCounters`](crate::plan::PlanCounters).
    pub fn strategy_counts(&self) -> crate::plan::PlanCounts {
        crate::plan::PlanCounts::from_cells(self.counts)
    }

    #[allow(clippy::too_many_arguments)]
    fn run<S: LabelSource>(
        &mut self,
        collection: &Collection,
        index: &S,
        tags: &TagIndex,
        expr: &PathExpr,
        options: &EvalOptions,
        text: Option<&dyn TextSource>,
        mut report: Option<&mut QueryPlanReport>,
    ) -> Vec<ElemId> {
        self.counts = [0; 4];
        // Stamp tables must span every id either side can produce.
        let bound = collection.elem_id_bound().max(index.num_nodes());
        let stats = index.cover_stats();
        // EXPLAIN ANALYZE: time each step only when a report is being
        // built, so the plain path stays measurement-free.
        let sw = report.as_ref().map(|_| Stopwatch::start());
        let mut current = seed(collection, tags, expr);
        let mut seed_content = None;
        if let Some(pred) = &expr.steps[0].predicate {
            // The seed set is already materialized, so the predicate can
            // only run as a post-filter over it.
            seed_content = Some(ContentPlacement::PostFilter);
            match text {
                Some(src) => {
                    predicate_matches(src, pred, &mut self.pred_matches);
                    intersect_in_place(&mut current, &self.pred_matches);
                }
                None => current.clear(),
            }
        }
        if let Some(rep) = report.as_deref_mut() {
            rep.steps.push(StepReport {
                step: 0,
                axis: expr.steps[0].axis,
                input: 0,
                candidates: 0,
                output: current.len(),
                plan: None,
                content: seed_content,
                elapsed_us: sw.map(|w| w.elapsed_micros()).unwrap_or(0),
            });
        }
        for (step_idx, step) in expr.steps.iter().enumerate().skip(1) {
            if current.is_empty() {
                break;
            }
            let sw = report.as_ref().map(|_| Stopwatch::start());
            let input = current.len();
            let mut next = std::mem::take(&mut self.next_buf);
            next.clear();
            let mut cand_len = 0;
            let mut content = None;
            let plan = match step.axis {
                Axis::Child => {
                    child_step(collection, &current, step.tag.as_deref(), &mut next);
                    if let Some(pred) = &step.predicate {
                        // Child steps materialize their output directly;
                        // the predicate filters it afterwards.
                        content = Some(ContentPlacement::PostFilter);
                        if let Some(src) = text {
                            predicate_matches(src, pred, &mut self.pred_matches);
                        } else {
                            self.pred_matches.clear();
                        }
                    }
                    None
                }
                Axis::Connection => {
                    let mut cands: &[ElemId] = match step.tag.as_deref() {
                        Some(t) => tags.elements(t),
                        None => {
                            wildcard_candidates(collection, &mut self.cand_buf);
                            &self.cand_buf
                        }
                    };
                    if let Some(pred) = &step.predicate {
                        match text {
                            Some(src) => {
                                // Order content vs. structure by selectivity:
                                // posting-length bound against the tag test's
                                // candidate count.
                                let placement = plan_content_predicate(
                                    predicate_estimate(src, pred),
                                    cands.len(),
                                );
                                content = Some(placement);
                                predicate_matches(src, pred, &mut self.pred_matches);
                                if placement == ContentPlacement::PreFilter {
                                    intersect_into(cands, &self.pred_matches, &mut self.pred_buf);
                                    cands = &self.pred_buf;
                                }
                            }
                            None => {
                                // No text index: the predicate matches nothing.
                                content = Some(ContentPlacement::PostFilter);
                                self.pred_matches.clear();
                            }
                        }
                    }
                    cand_len = cands.len();
                    if cands.is_empty() {
                        None
                    } else {
                        let lout_total: usize =
                            current.iter().map(|&u| index.lout_row(u).len()).sum();
                        let plan = plan_connection_step(
                            &stats,
                            current.len(),
                            lout_total,
                            cands.len(),
                            options.probe_budget,
                            options.force_strategy,
                        );
                        self.counts[plan.strategy.index()] += 1;
                        let sc = &mut self.scratch;
                        match plan.strategy {
                            Strategy::PairwiseProbe => {
                                step_pairwise(index, &current, cands, &mut next)
                            }
                            Strategy::Enumerate => {
                                step_enumerate(index, sc, bound, &current, cands, &mut next)
                            }
                            Strategy::ForwardHopJoin => {
                                step_forward_hop_join(index, sc, bound, &current, cands, &mut next)
                            }
                            Strategy::BackwardHopJoin => {
                                step_backward_hop_join(index, sc, bound, &current, cands, &mut next)
                            }
                        }
                        Some(plan)
                    }
                }
            };
            if content == Some(ContentPlacement::PostFilter) {
                intersect_in_place(&mut next, &self.pred_matches);
            }
            debug_assert!(next.windows(2).all(|w| w[0] < w[1]), "sorted+deduped");
            if let Some(rep) = report.as_deref_mut() {
                rep.steps.push(StepReport {
                    step: step_idx,
                    axis: step.axis,
                    input,
                    candidates: cand_len,
                    output: next.len(),
                    plan,
                    content,
                    elapsed_us: sw.map(|w| w.elapsed_micros()).unwrap_or(0),
                });
            }
            // Keep the outgoing buffer for the next step / next query.
            self.next_buf = std::mem::replace(&mut current, next);
        }
        current
    }
}

/// Seeds the first step: document roots for `/`, anywhere for `//`.
fn seed(collection: &Collection, tags: &TagIndex, expr: &PathExpr) -> Vec<ElemId> {
    let first = &expr.steps[0];
    match first.axis {
        Axis::Child => {
            // Document ids are never reused and id ranges grow
            // monotonically, so visiting live docs in order emits sorted
            // root ids.
            let out: Vec<ElemId> = collection
                .doc_ids()
                .map(|d| collection.global_id(d, 0))
                .filter(|&root| matches_tag(collection, tags, root, first.tag.as_deref()))
                .collect();
            debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
            out
        }
        Axis::Connection => match first.tag.as_deref() {
            Some(t) => tags.elements(t).to_vec(),
            None => {
                let mut out = Vec::new();
                wildcard_candidates(collection, &mut out);
                out
            }
        },
    }
}

/// All live element ids, sorted, into a reused buffer. Document id ranges
/// are allocated in ascending order and never reused, so per-doc ranges
/// concatenate already sorted — no sort pass.
fn wildcard_candidates(collection: &Collection, out: &mut Vec<ElemId>) {
    out.clear();
    out.reserve(collection.element_count());
    for d in collection.doc_ids() {
        let base = collection.global_id(d, 0);
        let len = collection.document(d).map_or(0, |doc| doc.len() as u32);
        out.extend(base..base + len);
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
}

/// Upper bound on a predicate's matching-element count, from posting-list
/// lengths alone: a conjunction can match at most its rarest term's df, a
/// disjunction at most the sum of dfs.
pub(crate) fn predicate_estimate(src: &dyn TextSource, pred: &ContentPredicate) -> usize {
    match pred.op {
        ContentOp::Contains => pred.terms.iter().map(|t| src.df(t)).min().unwrap_or(0),
        ContentOp::About => pred.terms.iter().map(|t| src.df(t)).sum(),
    }
}

/// Materializes the sorted element set matching a predicate:
/// intersection of the term posting lists for `contains`, union for
/// `about`.
pub(crate) fn predicate_matches(
    src: &dyn TextSource,
    pred: &ContentPredicate,
    out: &mut Vec<ElemId>,
) {
    out.clear();
    match pred.op {
        ContentOp::Contains => {
            let mut lists = Vec::with_capacity(pred.terms.len());
            for t in &pred.terms {
                match src.lookup(t) {
                    Some(p) => lists.push(p),
                    // An out-of-vocabulary term empties the conjunction.
                    None => return,
                }
            }
            // Smallest list first keeps every later pass cheap.
            lists.sort_by_key(|p| p.len());
            out.extend_from_slice(lists[0].elems);
            for p in &lists[1..] {
                intersect_in_place(out, p.elems);
                if out.is_empty() {
                    return;
                }
            }
        }
        ContentOp::About => {
            for t in &pred.terms {
                if let Some(p) = src.lookup(t) {
                    out.extend_from_slice(p.elems);
                }
            }
            out.sort_unstable();
            out.dedup();
        }
    }
}

/// Keeps only the elements of `v` present in the sorted slice `other`
/// (one merge walk; both inputs sorted).
pub(crate) fn intersect_in_place(v: &mut Vec<ElemId>, other: &[ElemId]) {
    let mut i = 0usize;
    v.retain(|&e| {
        while i < other.len() && other[i] < e {
            i += 1;
        }
        i < other.len() && other[i] == e
    });
}

/// Writes `a ∩ b` (both sorted) into `out`.
fn intersect_into(a: &[ElemId], b: &[ElemId], out: &mut Vec<ElemId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn matches_tag(collection: &Collection, tags: &TagIndex, e: ElemId, tag: Option<&str>) -> bool {
    match tag {
        None => true,
        Some(t) => {
            // Tag index membership is cheaper than materializing the doc.
            let _ = collection;
            tags.has_tag(e, t)
        }
    }
}

/// `/tag`: tree children of the current set, sorted + deduped into the
/// reused output buffer (children of distinct parents are distinct, but a
/// sort is still needed: parents are visited in global-id order while
/// children land at per-document offsets).
fn child_step(
    collection: &Collection,
    current: &[ElemId],
    tag: Option<&str>,
    out: &mut Vec<ElemId>,
) {
    for &u in current {
        let Some((d, local)) = collection.to_local(u) else {
            continue;
        };
        let Some(doc) = collection.document(d) else {
            continue;
        };
        let base = collection.global_id(d, 0);
        for &c in &doc.element(local).children {
            if tag.is_none_or(|t| doc.element(c).tag == t) {
                out.push(base + c);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
}

/// Pairwise probes (the paper's per-pair `LIN ⋈ LOUT` query): each
/// candidate is tested against the context set; `connected_from_any`
/// already excludes the reflexive `u == t` probe.
fn step_pairwise<S: LabelSource>(
    index: &S,
    current: &[ElemId],
    cands: &[ElemId],
    out: &mut Vec<ElemId>,
) {
    out.extend(
        cands
            .iter()
            .copied()
            .filter(|&t| index.connected_from_any(current, t)),
    );
}

/// Descendant-set enumeration: mark the closure of every context node
/// (buffer-reusing `descendants_into`, no hashing), then filter the
/// candidates through the marks.
fn step_enumerate<S: LabelSource>(
    index: &S,
    sc: &mut Scratch,
    bound: usize,
    current: &[ElemId],
    cands: &[ElemId],
    out: &mut Vec<ElemId>,
) {
    sc.mark.begin(bound);
    for &u in current {
        index.descendants_into(u, &mut sc.desc_buf);
        for &v in &sc.desc_buf {
            if v != u {
                sc.mark.mark(v);
            }
        }
    }
    out.extend(cands.iter().copied().filter(|&t| sc.mark.is_marked(t)));
}

/// Forward (descendant-side) hop join, center-at-a-time: build the
/// deduplicated center set `C = ⋃_u ({u} ∪ Lout(u))` over the context
/// set, mark `⋃_{c ∈ C} ({c} ∪ inv_in(c))` — every node some context node
/// reaches — then filter the candidates through the marks. Linear in
/// total label size instead of quadratic in set sizes.
///
/// Context nodes that are themselves candidates need the XPath `u != t`
/// exclusion: for those, the centers are checked with contribution
/// ownership (a center contributed *only* by `t` cannot witness `t`).
fn step_forward_hop_join<S: LabelSource>(
    index: &S,
    sc: &mut Scratch,
    bound: usize,
    current: &[ElemId],
    cands: &[ElemId],
    out: &mut Vec<ElemId>,
) {
    sc.begin_centers(bound);
    for &u in current {
        sc.add_center(u, u);
        for &c in index.lout_row(u) {
            sc.add_center(c, u);
        }
    }
    sc.mark.begin(bound);
    for &c in &sc.centers {
        sc.mark.mark(c);
        for &v in index.holders_in_row(c) {
            sc.mark.mark(v);
        }
    }
    // Both sets are sorted: a merge walk finds the candidates that are
    // also context nodes.
    let mut ci = 0usize;
    for &t in cands {
        while ci < current.len() && current[ci] < t {
            ci += 1;
        }
        let hit = if ci < current.len() && current[ci] == t {
            sc.center_witness(t, t) || index.lin_row(t).iter().any(|&c| sc.center_witness(c, t))
        } else {
            sc.mark.is_marked(t)
        };
        if hit {
            out.push(t);
        }
    }
}

/// Backward (ancestor-side) hop join: stamp the context set, then scan
/// each candidate's ancestor rows — `inv_out(t)`, and `{d} ∪ inv_out(d)`
/// for `d ∈ Lin(t)` — for a stamped node, with early exit. Wins when the
/// candidate side is much smaller than the forward expansion.
fn step_backward_hop_join<S: LabelSource>(
    index: &S,
    sc: &mut Scratch,
    bound: usize,
    current: &[ElemId],
    cands: &[ElemId],
    out: &mut Vec<ElemId>,
) {
    sc.mark.begin(bound);
    for &u in current {
        sc.mark.mark(u);
    }
    for &t in cands {
        // Label rows never contain self entries, so holders of `t` and
        // centers in `Lin(t)` are `!= t` by construction; only the inner
        // holder lists can surface `t` itself.
        let hit = index
            .holders_out_row(t)
            .iter()
            .any(|&u| sc.mark.is_marked(u))
            || index.lin_row(t).iter().any(|&d| {
                sc.mark.is_marked(d)
                    || index
                        .holders_out_row(d)
                        .iter()
                        .any(|&u| u != t && sc.mark.is_marked(u))
            });
        if hit {
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_core::FrozenCover;
    use hopi_partition::{build_index, BuildConfig};
    use hopi_xml::generator::{random_collection, RandomConfig};
    use hopi_xml::parser::parse_collection;

    fn fixture() -> (Collection, HopiIndex, TagIndex) {
        let c = parse_collection([
            (
                "lib",
                r#"<library>
                     <shelf>
                       <book><title/><author/></book>
                       <book><title/></book>
                     </shelf>
                     <link xlink:href="annex"/>
                   </library>"#,
            ),
            (
                "annex",
                r#"<annex>
                     <box><book><author/></book></box>
                   </annex>"#,
            ),
        ])
        .unwrap();
        let (index, _) = build_index(&c, &BuildConfig::default());
        let tags = TagIndex::build(&c);
        (c, index, tags)
    }

    fn names(c: &Collection, ids: &[ElemId]) -> Vec<String> {
        ids.iter()
            .map(|&e| {
                let (d, l) = c.to_local(e).unwrap();
                format!("{}:{}", c.document(d).unwrap().name, l)
            })
            .collect()
    }

    /// Options pinning one strategy on every `//` step.
    fn forced(strategy: Strategy) -> EvalOptions {
        EvalOptions {
            force_strategy: Some(strategy),
            ..EvalOptions::default()
        }
    }

    #[test]
    fn child_axis_is_tree_only() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "/library/shelf/book").unwrap();
        assert_eq!(r.len(), 2);
        // The annex book is NOT a tree child of shelf.
        assert!(names(&c, &r).iter().all(|n| n.starts_with("lib")));
    }

    #[test]
    fn connection_axis_crosses_links() {
        let (c, i, t) = fixture();
        // //library//author: the annex author is reachable via the link.
        let r = evaluate_str(&c, &i, &t, "/library//author").unwrap();
        assert_eq!(r.len(), 2, "{:?}", names(&c, &r));
    }

    #[test]
    fn leading_connection_matches_anywhere() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "//book").unwrap();
        assert_eq!(r.len(), 3);
        let r = evaluate_str(&c, &i, &t, "//book//author").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn wildcards() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "/library/*").unwrap();
        assert_eq!(r.len(), 2); // shelf + link
        let r = evaluate_str(&c, &i, &t, "//box//*").unwrap();
        assert_eq!(r.len(), 2); // book + author
    }

    #[test]
    fn root_anchored_tag_mismatch_is_empty() {
        let (c, i, t) = fixture();
        assert!(evaluate_str(&c, &i, &t, "/annex/shelf").unwrap().is_empty());
        assert!(evaluate_str(&c, &i, &t, "//nothing").unwrap().is_empty());
    }

    #[test]
    fn connection_excludes_self() {
        let (c, i, t) = fixture();
        // //book//book: no book reaches another book here except via…
        // lib books don't reach annex book (link hangs off library, not
        // book), so the result is empty — under every strategy.
        for strategy in Strategy::ALL {
            let expr = parse_path("//book//book").unwrap();
            let r = evaluate_with(&c, &i, &t, &expr, &forced(strategy));
            assert!(r.is_empty(), "{strategy}: {:?}", names(&c, &r));
        }
    }

    #[test]
    fn probe_budget_does_not_change_answers() {
        let (c, i, t) = fixture();
        for query in ["/library//author", "//book//author", "//box//*"] {
            let expr = parse_path(query).unwrap();
            let default = evaluate(&c, &i, &t, &expr);
            for probe_budget in [0, 1, usize::MAX] {
                let tuned = evaluate_with(
                    &c,
                    &i,
                    &t,
                    &expr,
                    &EvalOptions {
                        probe_budget,
                        ..EvalOptions::default()
                    },
                );
                assert_eq!(tuned, default, "budget {probe_budget} on {query}");
            }
        }
    }

    /// All four forced strategies, the planner default, and the BFS
    /// oracle agree on random cyclic collections — mutable and frozen.
    #[test]
    fn all_strategies_agree_with_oracle_on_cyclic_collections() {
        use hopi_graph::traversal::is_reachable;
        for seed in [1u64, 2, 5, 9, 13, 21] {
            let c = random_collection(&RandomConfig {
                num_docs: 10,
                elements_range: (4, 9),
                num_links: 15,
                num_intra_links: 5,
                allow_cycles: true,
                text: Default::default(),
                seed,
            });
            let (index, _) = build_index(&c, &BuildConfig::default());
            let frozen = FrozenCover::from_cover(index.cover());
            let tags = TagIndex::build(&c);
            let g = c.element_graph();
            for query in [
                "//root//e2",
                "//e1//e4//e0",
                "//root//*",
                "//e3//e3",
                "//*//e1",
            ] {
                let expr = parse_path(query).unwrap();
                let baseline = evaluate(&c, &index, &tags, &expr);
                // Oracle for the last step of two-step expressions; deeper
                // expressions are cross-checked between strategies only.
                for strategy in Strategy::ALL {
                    let options = forced(strategy);
                    let mutable = evaluate_with(&c, &index, &tags, &expr, &options);
                    let frozen_r = evaluate_with(&c, &frozen, &tags, &expr, &options);
                    assert_eq!(mutable, baseline, "seed {seed} {query} {strategy} mutable");
                    assert_eq!(frozen_r, baseline, "seed {seed} {query} {strategy} frozen");
                    let mut sorted = mutable.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(mutable, sorted, "seed {seed} {query} {strategy} not sorted");
                }
            }
            // Direct oracle check on //root//TAG shapes.
            for target_tag in ["e0", "e3", "e7"] {
                let expr = parse_path(&format!("//root//{target_tag}")).unwrap();
                let roots = tags.elements("root");
                let mut expect: Vec<ElemId> = tags
                    .elements(target_tag)
                    .iter()
                    .copied()
                    .filter(|&t| roots.iter().any(|&r| r != t && is_reachable(&g, r, t)))
                    .collect();
                expect.sort_unstable();
                for strategy in Strategy::ALL {
                    let got = evaluate_with(&c, &index, &tags, &expr, &forced(strategy));
                    assert_eq!(got, expect, "seed {seed} tag {target_tag} {strategy}");
                }
            }
        }
    }

    #[test]
    fn self_reaching_context_nodes_need_a_foreign_witness() {
        // Two docs with the same root tag, one linking into the other:
        // //r//r must return the linked-to root (reached by the *other*
        // root) but not the linking root (reached by nobody) — the owner
        // tracking of the forward join, under every strategy.
        let c = parse_collection([
            ("a", r#"<r><cite xlink:href="b"/></r>"#),
            ("b", r#"<r><s/></r>"#),
        ])
        .unwrap();
        let (index, _) = build_index(&c, &BuildConfig::default());
        let tags = TagIndex::build(&c);
        let b_root = c.resolve_ref("b", "").unwrap();
        let expr = parse_path("//r//r").unwrap();
        for strategy in Strategy::ALL {
            let r = evaluate_with(&c, &index, &tags, &expr, &forced(strategy));
            assert_eq!(r, vec![b_root], "{strategy}");
        }
    }

    #[test]
    fn frozen_cover_answers_match_live_index() {
        let (c, i, t) = fixture();
        let frozen = FrozenCover::from_cover(i.cover());
        for query in [
            "/library//author",
            "//book//author",
            "//box//*",
            "//book//book",
            "/library/shelf/book",
        ] {
            let expr = parse_path(query).unwrap();
            for strategy in Strategy::ALL {
                let options = forced(strategy);
                assert_eq!(
                    evaluate_with(&c, &frozen, &t, &expr, &options),
                    evaluate_with(&c, &i, &t, &expr, &options),
                    "{strategy} on {query}"
                );
            }
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let (c, i, t) = fixture();
        assert!(matches!(
            evaluate_str(&c, &i, &t, "book"),
            Err(EvalError::Parse(_))
        ));
    }

    #[test]
    fn evaluator_reuse_matches_fresh_evaluation() {
        // One evaluator across many queries (the serving pattern) gives
        // the same answers as fresh state per query.
        let (c, i, t) = fixture();
        let mut ev = Evaluator::new();
        for _ in 0..3 {
            for query in ["/library//author", "//book//author", "//box//*", "//book"] {
                let expr = parse_path(query).unwrap();
                let reused = ev.evaluate(&c, &i, &t, &expr, &EvalOptions::default());
                let fresh = Evaluator::new().evaluate(&c, &i, &t, &expr, &EvalOptions::default());
                assert_eq!(reused, fresh, "{query}");
            }
        }
    }

    #[test]
    fn explain_reports_steps_and_counts() {
        let (c, i, t) = fixture();
        let expr = parse_path("//book//author").unwrap();
        let options = EvalOptions {
            probe_budget: 0,
            ..EvalOptions::default()
        };
        let (result, report) = evaluate_explained(&c, &i, &t, &expr, &options);
        assert_eq!(result, evaluate_with(&c, &i, &t, &expr, &options));
        assert_eq!(report.steps.len(), 2);
        assert!(report.steps[0].plan.is_none(), "seed has no plan");
        let step = &report.steps[1];
        assert_eq!(step.input, 3);
        assert_eq!(step.output, result.len());
        assert!(step.plan.is_some());
        assert_eq!(report.strategy_counts().total(), 1);
        let text = report.render(&expr);
        assert!(text.contains("strategy="), "{text}");
        assert!(text.contains("//author"), "{text}");
        // EXPLAIN ANALYZE: every executed step carries a measured wall
        // time (possibly 0µs on a coarse clock) and rendered rows/time.
        assert!(text.contains("time="), "{text}");
        assert!(
            text.contains(&format!("rows: 3 -> {}", result.len())),
            "{text}"
        );
        assert!(report.total_elapsed_us() >= report.steps[1].elapsed_us);
    }

    fn text_fixture() -> (Collection, HopiIndex, TagIndex, hopi_text::TextIndex) {
        let c = parse_collection([
            (
                "lib",
                r#"<library>
                     <shelf>
                       <book><title>XML indexing with HOPI</title><author/></book>
                       <book><title>cooking for crowds</title></book>
                     </shelf>
                     <link xlink:href="annex"/>
                   </library>"#,
            ),
            (
                "annex",
                r#"<annex>
                     <box><book><title>two hop indexing</title><author/></book></box>
                   </annex>"#,
            ),
        ])
        .unwrap();
        let (index, _) = build_index(&c, &BuildConfig::default());
        let tags = TagIndex::build(&c);
        let text = hopi_text::TextIndex::build(&c);
        (c, index, tags, text)
    }

    #[test]
    fn content_predicates_filter_matches() {
        let (c, i, t, text) = text_fixture();
        let expr = parse_path("//library//title[contains(., \"indexing\")]").unwrap();
        let r = evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
        // Both indexing titles are reachable from library (annex via link);
        // the cooking title is filtered out.
        assert_eq!(r.len(), 2, "{:?}", names(&c, &r));
        // Conjunction: both terms must occur in the same element.
        let expr = parse_path("//title[contains(., \"hop indexing\")]").unwrap();
        let r = evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
        assert_eq!(r.len(), 1);
        // Disjunction: either term qualifies.
        let expr = parse_path("//title[about(., \"cooking hop\")]").unwrap();
        let r = evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn content_predicate_without_text_index_matches_nothing() {
        let (c, i, t, _) = text_fixture();
        let expr = parse_path("//title[contains(., \"indexing\")]").unwrap();
        assert!(evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), None).is_empty());
        // Structure-only expressions are unaffected by the missing index.
        let expr = parse_path("//library//title").unwrap();
        let r = evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), None);
        assert_eq!(r, evaluate(&c, &i, &t, &expr));
    }

    #[test]
    fn content_placement_does_not_change_answers() {
        let (c, i, t, text) = text_fixture();
        let frozen_text = hopi_text::FrozenTextIndex::from_index(&text);
        for query in [
            "//library//title[contains(., \"indexing\")]",
            "//book[about(., \"xml cooking\")]",
            "//shelf//*[contains(., \"crowds\")]",
            "/library//title[about(., \"hop\")]",
            "//title[contains(., \"absent-term\")]",
        ] {
            let expr = parse_path(query).unwrap();
            let mutable =
                evaluate_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
            let frozen = evaluate_with_text(
                &c,
                &i,
                &t,
                &expr,
                &EvalOptions::default(),
                Some(&frozen_text),
            );
            assert_eq!(mutable, frozen, "mutable vs frozen text on {query}");
            for strategy in Strategy::ALL {
                let forced_r =
                    evaluate_with_text(&c, &i, &t, &expr, &forced(strategy), Some(&text));
                assert_eq!(forced_r, mutable, "{strategy} on {query}");
            }
        }
    }

    #[test]
    fn explain_records_content_placement() {
        let (c, i, t, text) = text_fixture();
        let expr = parse_path("//library//title[contains(., \"indexing\")]").unwrap();
        let (r, report) =
            evaluate_explained_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
        assert_eq!(r.len(), 2);
        assert!(report.steps[1].content.is_some());
        let rendered = report.render(&expr);
        assert!(rendered.contains("content="), "{rendered}");
        // Seed-step predicates are recorded too.
        let expr = parse_path("//title[about(., \"cooking\")]").unwrap();
        let (_, report) =
            evaluate_explained_with_text(&c, &i, &t, &expr, &EvalOptions::default(), Some(&text));
        assert_eq!(
            report.steps[0].content,
            Some(crate::plan::ContentPlacement::PostFilter)
        );
    }

    #[test]
    fn strategy_counts_tally_connection_steps() {
        let (c, i, t) = fixture();
        let expr = parse_path("//library//book//author").unwrap();
        let mut ev = Evaluator::new();
        ev.evaluate(&c, &i, &t, &expr, &forced(Strategy::ForwardHopJoin));
        let counts = ev.strategy_counts();
        assert_eq!(counts.forward_hop_join, 2);
        assert_eq!(counts.total(), 2);
        // The tally resets per run.
        ev.evaluate(&c, &i, &t, &expr, &forced(Strategy::BackwardHopJoin));
        assert_eq!(ev.strategy_counts().forward_hop_join, 0);
        assert_eq!(ev.strategy_counts().backward_hop_join, 2);
    }
}
