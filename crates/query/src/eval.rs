//! Set-at-a-time evaluation of path expressions against the HOPI index.
//!
//! * `/tag` steps walk the element-level **tree** (XPath child axis).
//! * `//tag` steps use the **connection axis**: all elements reachable over
//!   one or more tree or link edges — the query class HOPI exists for. Each
//!   `//` step is answered from the 2-hop cover, either by probing
//!   candidate pairs (`Lout ∩ Lin` intersections) or by enumerating
//!   descendant sets, whichever side is cheaper.
//!
//! Following XPath, `a//b` never returns the context node itself for
//! `a == b` (the 2-hop cover cannot distinguish a reflexive hit from a
//! cyclic path back to the node, and self-cycles are a degenerate case for
//! document data).

use crate::expr::{parse_path, Axis, ParseError, PathExpr};
use crate::tag_index::TagIndex;
use hopi_core::{HopiIndex, LabelSource};
use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashSet;

/// Evaluation error (currently only malformed expressions via
/// [`evaluate_str`]).
#[derive(Debug)]
pub enum EvalError {
    /// The expression failed to parse.
    Parse(ParseError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}

/// Tunables of set-at-a-time evaluation.
#[derive(Clone, Copy, Debug)]
pub struct EvalOptions {
    /// Above this candidate-probe count (`|current| × |candidates|`), a `//`
    /// step switches from pairwise reachability probes to descendant-set
    /// enumeration. Small budgets favor enumeration, large budgets favor
    /// per-pair `LIN ⋈ LOUT` probes.
    pub probe_budget: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            probe_budget: 4_096,
        }
    }
}

/// Parses and evaluates a path expression. Returns matching element ids,
/// sorted and deduplicated.
pub fn evaluate_str(
    collection: &Collection,
    index: &HopiIndex,
    tags: &TagIndex,
    expr: &str,
) -> Result<Vec<ElemId>, EvalError> {
    Ok(evaluate(collection, index, tags, &parse_path(expr)?))
}

/// Evaluates a parsed path expression with default [`EvalOptions`].
///
/// The index is any [`LabelSource`] — the live [`HopiIndex`] or a frozen
/// [`hopi_core::FrozenCover`] snapshot; answers are identical.
pub fn evaluate<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
) -> Vec<ElemId> {
    evaluate_with(collection, index, tags, expr, &EvalOptions::default())
}

/// Evaluates a parsed path expression under explicit options (see
/// [`evaluate`] for the index abstraction).
pub fn evaluate_with<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    expr: &PathExpr,
    options: &EvalOptions,
) -> Vec<ElemId> {
    let mut current = seed(collection, tags, expr);
    for step in &expr.steps[1..] {
        current = match step.axis {
            Axis::Child => child_step(collection, &current, step.tag.as_deref()),
            Axis::Connection => connection_step(
                collection,
                index,
                tags,
                &current,
                step.tag.as_deref(),
                options,
            ),
        };
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Seeds the first step: document roots for `/`, anywhere for `//`.
fn seed(collection: &Collection, tags: &TagIndex, expr: &PathExpr) -> Vec<ElemId> {
    let first = &expr.steps[0];
    match first.axis {
        Axis::Child => {
            let mut out: Vec<ElemId> = collection
                .doc_ids()
                .map(|d| collection.global_id(d, 0))
                .filter(|&root| matches_tag(collection, tags, root, first.tag.as_deref()))
                .collect();
            out.sort_unstable();
            out
        }
        Axis::Connection => candidates(collection, tags, first.tag.as_deref()),
    }
}

/// All elements matching a node test, sorted.
fn candidates(collection: &Collection, tags: &TagIndex, tag: Option<&str>) -> Vec<ElemId> {
    match tag {
        Some(t) => tags.elements(t).to_vec(),
        None => {
            let mut out = Vec::with_capacity(collection.element_count());
            for d in collection.doc_ids() {
                let base = collection.global_id(d, 0);
                let len = collection.document(d).expect("live doc").len() as u32;
                out.extend(base..base + len);
            }
            out.sort_unstable();
            out
        }
    }
}

fn matches_tag(collection: &Collection, tags: &TagIndex, e: ElemId, tag: Option<&str>) -> bool {
    match tag {
        None => true,
        Some(t) => {
            // Tag index membership is cheaper than materializing the doc.
            let _ = collection;
            tags.has_tag(e, t)
        }
    }
}

/// `/tag`: tree children of the current set.
fn child_step(collection: &Collection, current: &[ElemId], tag: Option<&str>) -> Vec<ElemId> {
    let mut out: FxHashSet<ElemId> = FxHashSet::default();
    for &u in current {
        let Some((d, local)) = collection.to_local(u) else {
            continue;
        };
        let doc = collection.document(d).expect("live doc");
        let base = collection.global_id(d, 0);
        for &c in &doc.element(local).children {
            if tag.is_none_or(|t| doc.element(c).tag == t) {
                out.insert(base + c);
            }
        }
    }
    let mut v: Vec<ElemId> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// `//tag`: connection-axis step via the index. Both strategies return the
/// same sorted, deduplicated set — the `probe_budget` picks an execution
/// plan, never an answer.
fn connection_step<S: LabelSource>(
    collection: &Collection,
    index: &S,
    tags: &TagIndex,
    current: &[ElemId],
    tag: Option<&str>,
    options: &EvalOptions,
) -> Vec<ElemId> {
    let cands = candidates(collection, tags, tag);
    if cands.is_empty() || current.is_empty() {
        return Vec::new();
    }
    if current.len().saturating_mul(cands.len()) <= options.probe_budget {
        // Pairwise probes (the paper's per-pair LIN⋈LOUT query).
        let mut out: Vec<ElemId> = cands
            .iter()
            .copied()
            .filter(|&t| index.connected_from_any(current, t))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    } else {
        // Descendant-set enumeration: union of descendants of the (smaller)
        // current set, intersected with the candidates.
        let mut reach: FxHashSet<ElemId> = FxHashSet::default();
        for &u in current {
            for v in index.descendants(u) {
                if v != u {
                    reach.insert(v);
                }
            }
        }
        // A node in `current` may still be reachable from *another* current
        // node; the u != v filter above already allows that.
        let mut out: Vec<ElemId> = cands.into_iter().filter(|t| reach.contains(t)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_partition::{build_index, BuildConfig};
    use hopi_xml::parser::parse_collection;

    fn fixture() -> (Collection, HopiIndex, TagIndex) {
        let c = parse_collection([
            (
                "lib",
                r#"<library>
                     <shelf>
                       <book><title/><author/></book>
                       <book><title/></book>
                     </shelf>
                     <link xlink:href="annex"/>
                   </library>"#,
            ),
            (
                "annex",
                r#"<annex>
                     <box><book><author/></book></box>
                   </annex>"#,
            ),
        ])
        .unwrap();
        let (index, _) = build_index(&c, &BuildConfig::default());
        let tags = TagIndex::build(&c);
        (c, index, tags)
    }

    fn names(c: &Collection, ids: &[ElemId]) -> Vec<String> {
        ids.iter()
            .map(|&e| {
                let (d, l) = c.to_local(e).unwrap();
                format!("{}:{}", c.document(d).unwrap().name, l)
            })
            .collect()
    }

    #[test]
    fn child_axis_is_tree_only() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "/library/shelf/book").unwrap();
        assert_eq!(r.len(), 2);
        // The annex book is NOT a tree child of shelf.
        assert!(names(&c, &r).iter().all(|n| n.starts_with("lib")));
    }

    #[test]
    fn connection_axis_crosses_links() {
        let (c, i, t) = fixture();
        // //library//author: the annex author is reachable via the link.
        let r = evaluate_str(&c, &i, &t, "/library//author").unwrap();
        assert_eq!(r.len(), 2, "{:?}", names(&c, &r));
    }

    #[test]
    fn leading_connection_matches_anywhere() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "//book").unwrap();
        assert_eq!(r.len(), 3);
        let r = evaluate_str(&c, &i, &t, "//book//author").unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn wildcards() {
        let (c, i, t) = fixture();
        let r = evaluate_str(&c, &i, &t, "/library/*").unwrap();
        assert_eq!(r.len(), 2); // shelf + link
        let r = evaluate_str(&c, &i, &t, "//box//*").unwrap();
        assert_eq!(r.len(), 2); // book + author
    }

    #[test]
    fn root_anchored_tag_mismatch_is_empty() {
        let (c, i, t) = fixture();
        assert!(evaluate_str(&c, &i, &t, "/annex/shelf").unwrap().is_empty());
        assert!(evaluate_str(&c, &i, &t, "//nothing").unwrap().is_empty());
    }

    #[test]
    fn connection_excludes_self() {
        let (c, i, t) = fixture();
        // //book//book: no book reaches another book here except via…
        // lib books don't reach annex book (link hangs off library, not
        // book), so the result is empty.
        let r = evaluate_str(&c, &i, &t, "//book//book").unwrap();
        assert!(r.is_empty(), "{:?}", names(&c, &r));
    }

    #[test]
    fn probe_budget_does_not_change_answers() {
        let (c, i, t) = fixture();
        for query in ["/library//author", "//book//author", "//box//*"] {
            let expr = parse_path(query).unwrap();
            let default = evaluate(&c, &i, &t, &expr);
            for probe_budget in [0, 1, usize::MAX] {
                let tuned = evaluate_with(&c, &i, &t, &expr, &EvalOptions { probe_budget });
                assert_eq!(tuned, default, "budget {probe_budget} on {query}");
            }
        }
    }

    #[test]
    fn both_branches_return_sorted_deduped_results() {
        // Budget 0 forces descendant-set enumeration on every `//` step;
        // usize::MAX forces pairwise probes. The answers must be the same
        // sorted, deduplicated set — including on multi-step queries whose
        // intermediate context sets feed the next step.
        use hopi_xml::generator::{random_collection, RandomConfig};
        for seed in [2u64, 13, 21] {
            let c = random_collection(&RandomConfig {
                num_docs: 10,
                elements_range: (4, 9),
                num_links: 15,
                num_intra_links: 5,
                allow_cycles: true,
                seed,
            });
            let (index, _) = build_index(&c, &BuildConfig::default());
            let tags = TagIndex::build(&c);
            for query in ["//root//e2", "//e1//e4//e0", "//root//*", "//e3//e3"] {
                let expr = parse_path(query).unwrap();
                let enumerated =
                    evaluate_with(&c, &index, &tags, &expr, &EvalOptions { probe_budget: 0 });
                let probed = evaluate_with(
                    &c,
                    &index,
                    &tags,
                    &expr,
                    &EvalOptions {
                        probe_budget: usize::MAX,
                    },
                );
                assert_eq!(probed, enumerated, "seed {seed} query {query}");
                let mut sorted = probed.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(
                    probed, sorted,
                    "seed {seed} query {query}: not sorted+deduped"
                );
            }
        }
    }

    #[test]
    fn frozen_cover_answers_match_live_index() {
        use hopi_core::FrozenCover;
        let (c, i, t) = fixture();
        let frozen = FrozenCover::from_cover(i.cover());
        for query in [
            "/library//author",
            "//book//author",
            "//box//*",
            "//book//book",
            "/library/shelf/book",
        ] {
            let expr = parse_path(query).unwrap();
            for probe_budget in [0, usize::MAX] {
                let options = EvalOptions { probe_budget };
                assert_eq!(
                    evaluate_with(&c, &frozen, &t, &expr, &options),
                    evaluate_with(&c, &i, &t, &expr, &options),
                    "budget {probe_budget} on {query}"
                );
            }
        }
    }

    #[test]
    fn parse_errors_propagate() {
        let (c, i, t) = fixture();
        assert!(matches!(
            evaluate_str(&c, &i, &t, "book"),
            Err(EvalError::Parse(_))
        ));
    }

    #[test]
    fn probe_and_enumerate_strategies_agree() {
        // Force both strategies on the same data by varying the budget via
        // candidate sizes: compare against a naive oracle.
        use hopi_graph::traversal::is_reachable;
        use hopi_xml::generator::{random_collection, RandomConfig};
        for seed in [1u64, 5, 9] {
            let c = random_collection(&RandomConfig {
                num_docs: 8,
                elements_range: (3, 8),
                num_links: 12,
                num_intra_links: 4,
                allow_cycles: true,
                seed,
            });
            let (index, _) = build_index(&c, &BuildConfig::default());
            let tags = TagIndex::build(&c);
            let g = c.element_graph();
            // //root//e3 — oracle via BFS.
            for target_tag in ["e0", "e3", "e7"] {
                let got =
                    evaluate_str(&c, &index, &tags, &format!("//root//{target_tag}")).unwrap();
                let roots = tags.elements("root");
                let mut expect: Vec<ElemId> = tags
                    .elements(target_tag)
                    .iter()
                    .copied()
                    .filter(|&t| roots.iter().any(|&r| r != t && is_reachable(&g, r, t)))
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "seed {seed} tag {target_tag}");
            }
        }
    }
}
