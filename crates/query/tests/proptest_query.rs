//! Property tests for path evaluation: on arbitrary collections, the
//! index-backed evaluator must agree with a naive BFS-based oracle for
//! every expression shape (including content predicates against random
//! element text), and the ranked evaluator must agree on membership with
//! correct minimal distances.

use hopi_core::{DistanceCoverBuilder, FrozenCover};
use hopi_graph::{traversal, DistanceClosure};
use hopi_partition::{build_index, BuildConfig};
use hopi_query::{
    evaluate, evaluate_ranked, evaluate_ranked_with_text, evaluate_with, evaluate_with_text,
    parse_path, Axis, ContentOp, ContentPredicate, EvalOptions, PathExpr, Step,
    Strategy as PlanStrategy, TagIndex,
};
use hopi_text::{FrozenTextIndex, TextIndex};
use hopi_xml::{Collection, ElemId, XmlDocument};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

/// (element counts per doc, links, per-doc text entropy).
type CollectionBlueprint = (Vec<usize>, Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Arbitrary collection with a limited tag alphabet so expressions match.
fn arb_collection() -> impl Strategy<Value = CollectionBlueprint> {
    let docs = proptest::collection::vec(2usize..7, 2..6);
    docs.prop_flat_map(|docs| {
        let n = docs.len();
        let links = proptest::collection::vec((0..n, 0..n), 0..8);
        let texts = proptest::collection::vec((0..n, 0usize..4096), 0..12);
        (Just(docs), links, texts)
    })
}

/// Small term alphabet so query phrases actually hit.
const TERMS: [&str; 5] = ["xml", "hop", "index", "cover", "zig"];

fn realize(docs: &[usize], links: &[(usize, usize)], texts: &[(usize, usize)]) -> Collection {
    let tags = ["a", "b", "c"];
    let mut c = Collection::new();
    for (i, &n) in docs.iter().enumerate() {
        let mut d = XmlDocument::new(format!("d{i}"), "root");
        for k in 1..n {
            d.add_element((k / 2) as u32, tags[k % tags.len()]);
        }
        // Scatter random multi-term text over random elements; repeated
        // hits on one element append (so term frequencies vary too).
        for &(_, ent) in texts.iter().filter(|&&(di, _)| di == i) {
            let target = (ent % n) as u32;
            let picked: Vec<&str> = TERMS
                .iter()
                .enumerate()
                .filter(|(j, _)| (ent >> (j + 4)) & 1 == 1)
                .map(|(_, t)| *t)
                .collect();
            if !picked.is_empty() {
                d.append_text(target, &picked.join(" "));
            }
        }
        c.add_document(d);
    }
    for &(da, db) in links {
        if da == db {
            continue;
        }
        let (da, db) = (da as u32, db as u32);
        let la = (da as usize) % c.document(da).unwrap().len();
        let lb = (db as usize + 1) % c.document(db).unwrap().len();
        c.add_link(c.global_id(da, la as u32), c.global_id(db, lb as u32));
    }
    c
}

/// Full-scan predicate check against the element's raw text.
fn pred_holds(collection: &Collection, e: ElemId, pred: &ContentPredicate) -> bool {
    let text = collection.element_text(e).unwrap_or_default();
    let tokens: FxHashSet<String> = hopi_text::tokenize(text).collect();
    match pred.op {
        ContentOp::Contains => pred.terms.iter().all(|t| tokens.contains(t)),
        ContentOp::About => pred.terms.iter().any(|t| tokens.contains(t)),
    }
}

/// Naive oracle: evaluate step-by-step with BFS reachability.
fn oracle(collection: &Collection, expr: &PathExpr) -> Vec<ElemId> {
    let g = collection.element_graph();
    let all: Vec<ElemId> = (0..g.id_bound() as u32)
        .filter(|&e| g.is_alive(e))
        .collect();
    let tag_of = |e: ElemId| -> String {
        let (d, l) = collection.to_local(e).unwrap();
        collection.document(d).unwrap().element(l).tag.clone()
    };
    let matches = |e: ElemId, tag: &Option<String>| match tag {
        None => true,
        Some(t) => &tag_of(e) == t,
    };
    let mut current: Vec<ElemId> = match expr.steps[0].axis {
        Axis::Child => collection
            .doc_ids()
            .map(|d| collection.global_id(d, 0))
            .filter(|&r| matches(r, &expr.steps[0].tag))
            .collect(),
        Axis::Connection => all
            .iter()
            .copied()
            .filter(|&e| matches(e, &expr.steps[0].tag))
            .collect(),
    };
    if let Some(pred) = &expr.steps[0].predicate {
        current.retain(|&e| pred_holds(collection, e, pred));
    }
    for step in &expr.steps[1..] {
        let mut next: FxHashSet<ElemId> = FxHashSet::default();
        match step.axis {
            Axis::Child => {
                for &u in &current {
                    let (d, l) = collection.to_local(u).unwrap();
                    let doc = collection.document(d).unwrap();
                    let base = collection.global_id(d, 0);
                    for &ch in &doc.element(l).children {
                        if matches(base + ch, &step.tag) {
                            next.insert(base + ch);
                        }
                    }
                }
            }
            Axis::Connection => {
                for &t in &all {
                    if !matches(t, &step.tag) {
                        continue;
                    }
                    if current
                        .iter()
                        .any(|&u| u != t && traversal::is_reachable(&g, u, t))
                    {
                        next.insert(t);
                    }
                }
            }
        }
        current = next.into_iter().collect();
        if let Some(pred) = &step.predicate {
            current.retain(|&e| pred_holds(collection, e, pred));
        }
        current.sort_unstable();
    }
    current.sort_unstable();
    current
}

fn expressions() -> Vec<PathExpr> {
    [
        "//a",
        "//b//c",
        "/root//a",
        "/root/a",
        "/root/*//b",
        "//a//*",
        "//c//a//b",
        "/root/a/b",
        "//*//a",
    ]
    .iter()
    .map(|s| parse_path(s).unwrap())
    .collect()
}

/// Expressions exercising content predicates at the seed, middle, and
/// final step, in conjunctive and disjunctive form, plus an out-of-
/// vocabulary term ("zag").
fn content_expressions() -> Vec<PathExpr> {
    [
        "//a[contains(., \"xml\")]",
        "//b[about(., \"xml hop\")]",
        "//a[about(., \"hop cover\")]//b",
        "/root//b[contains(., \"hop index\")]",
        "//*[about(., \"cover\")]",
        "//a//c[contains(., \"zig zag\")]",
        "/root/a[contains(., \"index\")]/b",
        "//c[contains(., \"xml\")]//a[about(., \"zig\")]",
    ]
    .iter()
    .map(|s| parse_path(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eval_matches_oracle((docs, links, shapes) in arb_collection()) {
        let c = realize(&docs, &links, &shapes);
        let (index, _) = build_index(&c, &BuildConfig::default());
        let tags = TagIndex::build(&c);
        for expr in expressions() {
            let got = evaluate(&c, &index, &tags, &expr);
            let expect = oracle(&c, &expr);
            prop_assert_eq!(got, expect, "expr {}", expr);
        }
    }

    #[test]
    fn all_four_strategies_match_oracle((docs, links, shapes) in arb_collection()) {
        // Every physical `//`-step strategy — forced via `EvalOptions` —
        // agrees with the BFS oracle on arbitrary (cyclic) collections,
        // against both the mutable index and the frozen CSR cover.
        let c = realize(&docs, &links, &shapes);
        let (index, _) = build_index(&c, &BuildConfig::default());
        let frozen = FrozenCover::from_cover(index.cover());
        let tags = TagIndex::build(&c);
        for expr in expressions() {
            let expect = oracle(&c, &expr);
            for strategy in PlanStrategy::ALL {
                let options = EvalOptions {
                    force_strategy: Some(strategy),
                    ..EvalOptions::default()
                };
                let mutable = evaluate_with(&c, &index, &tags, &expr, &options);
                prop_assert_eq!(&mutable, &expect, "expr {} strategy {} mutable", expr, strategy);
                let frozen_r = evaluate_with(&c, &frozen, &tags, &expr, &options);
                prop_assert_eq!(&frozen_r, &expect, "expr {} strategy {} frozen", expr, strategy);
            }
        }
    }

    #[test]
    fn ranked_matches_boolean_membership((docs, links, shapes) in arb_collection()) {
        let c = realize(&docs, &links, &shapes);
        let (index, _) = build_index(&c, &BuildConfig::default());
        let dc = DistanceClosure::from_graph(&c.element_graph());
        let cover = DistanceCoverBuilder::new(&dc).build();
        let tags = TagIndex::build(&c);
        for expr in expressions() {
            let boolean = evaluate(&c, &index, &tags, &expr);
            let mut ranked: Vec<ElemId> = evaluate_ranked(&c, &cover, &tags, &expr)
                .into_iter()
                .map(|m| m.element)
                .collect();
            ranked.sort_unstable();
            prop_assert_eq!(ranked, boolean, "expr {}", expr);
        }
    }

    #[test]
    fn content_predicates_match_full_scan_oracle((docs, links, texts) in arb_collection()) {
        // Content-and-structure queries agree with a naive full-scan
        // oracle, through the mutable AND frozen term index, on the
        // boolean AND ranked paths.
        let c = realize(&docs, &links, &texts);
        let (index, _) = build_index(&c, &BuildConfig::default());
        let frozen_cover = FrozenCover::from_cover(index.cover());
        let tags = TagIndex::build(&c);
        let text = TextIndex::build(&c);
        let frozen_text = FrozenTextIndex::from_index(&text);
        let dc = DistanceClosure::from_graph(&c.element_graph());
        let distance_cover = DistanceCoverBuilder::new(&dc).build();
        let options = EvalOptions::default();
        for expr in content_expressions() {
            let expect = oracle(&c, &expr);
            let mutable = evaluate_with_text(&c, &index, &tags, &expr, &options, Some(&text));
            prop_assert_eq!(&mutable, &expect, "expr {} mutable", expr);
            let frozen = evaluate_with_text(
                &c, &frozen_cover, &tags, &expr, &options, Some(&frozen_text),
            );
            prop_assert_eq!(&frozen, &expect, "expr {} frozen", expr);
            let mut ranked: Vec<ElemId> =
                evaluate_ranked_with_text(&c, &distance_cover, &tags, &expr, Some(&text))
                    .into_iter()
                    .map(|m| m.element)
                    .collect();
            ranked.sort_unstable();
            prop_assert_eq!(&ranked, &expect, "expr {} ranked", expr);
        }
    }

    #[test]
    fn single_connection_step_distances_are_minimal((docs, links, shapes) in arb_collection()) {
        // For two-step //X//Y expressions, the reported distance must equal
        // the minimal BFS distance from any X element.
        let c = realize(&docs, &links, &shapes);
        let dc = DistanceClosure::from_graph(&c.element_graph());
        let cover = DistanceCoverBuilder::new(&dc).build();
        let tags = TagIndex::build(&c);
        let expr = parse_path("//a//b").unwrap();
        let ranked = evaluate_ranked(&c, &cover, &tags, &expr);
        let g = c.element_graph();
        for m in ranked {
            let expect = tags
                .elements("a")
                .iter()
                .filter(|&&u| u != m.element)
                .filter_map(|&u| {
                    let d = traversal::bfs_distances(&g, u)[m.element as usize];
                    (d != u32::MAX).then_some(d)
                })
                .min()
                .expect("ranked match must be reachable");
            prop_assert_eq!(m.distance, expect, "element {}", m.element);
        }
    }
}

#[test]
fn step_struct_is_constructible() {
    // API sanity: Step/PathExpr are plain data for programmatic building.
    let expr = PathExpr {
        steps: vec![
            Step {
                axis: Axis::Connection,
                tag: Some("a".into()),
                predicate: ContentPredicate::new(ContentOp::About, "hop"),
            },
            Step {
                axis: Axis::Child,
                tag: None,
                predicate: None,
            },
        ],
    };
    assert_eq!(expr.to_string(), "//a[about(., \"hop\")]/*");
}
