//! Property tests for the latency histogram: quantiles must agree with
//! a sorted-values oracle within the bucket ladder's error bound, and
//! concurrent recording plus merging must lose nothing.

use hopi_obs::{Histogram, HistogramSnapshot, MAX_FINITE_MICROS};
use proptest::prelude::*;

/// The ladder's contract: exact below 4 µs, else the reported quantile
/// is the bucket's inclusive upper bound — at least the true value and
/// at most 25 % above it.
fn check_quantile(values: &mut [u64], qs: &[f64]) -> Result<(), TestCaseError> {
    let h = Histogram::new();
    for &v in values.iter() {
        h.record_micros(v);
    }
    values.sort_unstable();
    let s = h.snapshot();
    prop_assert_eq!(s.count(), values.len() as u64);
    prop_assert_eq!(s.sum_micros(), values.iter().sum::<u64>());
    for &q in qs {
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let oracle = values[rank - 1].min(MAX_FINITE_MICROS);
        let got = s.quantile_micros(q);
        prop_assert!(
            got >= oracle,
            "q={} reported {} < oracle {}",
            q,
            got,
            oracle
        );
        // 4·got ≤ 5·oracle + 4: ≤ 25 % relative error, with slack for
        // the exact sub-4 µs buckets where oracle can be 0.
        prop_assert!(
            4 * got <= 5 * oracle + 4,
            "q={} reported {} overshoots oracle {}",
            q,
            got,
            oracle
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn quantiles_match_oracle_within_bucket_error(
        mut values in proptest::collection::vec(0u64..500_000_000, 1..400),
        q_seed in 0u64..1_000,
    ) {
        let qs = [
            0.0,
            0.5,
            0.95,
            0.99,
            1.0,
            (q_seed % 1000) as f64 / 1000.0,
        ];
        check_quantile(&mut values, &qs)?;
    }

    #[test]
    fn snapshot_merge_equals_recording_into_one(
        a in proptest::collection::vec(0u64..10_000_000, 0..200),
        b in proptest::collection::vec(0u64..10_000_000, 0..200),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record_micros(v);
            hall.record_micros(v);
        }
        for &v in &b {
            hb.record_micros(v);
            hall.record_micros(v);
        }
        // Atomic merge and snapshot merge must both equal the union.
        let mut snap = HistogramSnapshot::default();
        snap.merge(&ha.snapshot());
        snap.merge(&hb.snapshot());
        ha.merge(&hb);
        let union = hall.snapshot();
        prop_assert_eq!(snap.count(), union.count());
        prop_assert_eq!(snap.sum_micros(), union.sum_micros());
        prop_assert_eq!(ha.snapshot().count(), union.count());
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            prop_assert_eq!(snap.quantile_micros(q), union.quantile_micros(q));
            prop_assert_eq!(ha.snapshot().quantile_micros(q), union.quantile_micros(q));
        }
    }
}

/// Hammer one shared histogram from many threads, then check nothing
/// was dropped and the quantiles bound the recorded values.
#[test]
fn cross_thread_record_and_merge_are_consistent() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let shared = std::sync::Arc::new(Histogram::new());
    let locals: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = std::sync::Arc::clone(&shared);
            std::thread::spawn(move || {
                let local = Histogram::new();
                for i in 0..PER_THREAD {
                    // Deterministic per-thread values spanning the ladder.
                    let v = (t * PER_THREAD + i) * 37 % 2_000_000;
                    shared.record_micros(v);
                    local.record_micros(v);
                }
                local.snapshot()
            })
        })
        .collect();
    let mut merged = HistogramSnapshot::default();
    for handle in locals {
        merged.merge(&handle.join().expect("recorder thread panicked"));
    }
    let shared = shared.snapshot();
    assert_eq!(shared.count(), THREADS * PER_THREAD);
    assert_eq!(merged.count(), shared.count());
    assert_eq!(merged.sum_micros(), shared.sum_micros());
    for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(
            merged.quantile_micros(q),
            shared.quantile_micros(q),
            "merged and shared disagree at q={q}"
        );
    }
    assert!(shared.quantile_micros(1.0) < 2_500_000);
}
