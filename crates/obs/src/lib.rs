//! # hopi-obs — observability primitives for the HOPI runtime
//!
//! The paper's evaluation (§7) is entirely about measured build and
//! query cost, so the runtime must be able to *observe* those costs in
//! production, not just in benchmark harnesses. This crate is the
//! zero-dependency instrumentation spine the other crates hang metrics
//! on:
//!
//! * [`Histogram`] — a lock-free, mergeable log-linear latency
//!   histogram over microseconds: a fixed bucket ladder (exact below
//!   4 µs, then four linear sub-buckets per power of two, ≤ 25 %
//!   relative quantile error), recorded with relaxed atomics so the hot
//!   path is one `fetch_add`. [`HistogramSnapshot`] extracts quantiles
//!   and renders Prometheus `_bucket`/`_sum`/`_count` exposition.
//! * [`Span`] / [`Stopwatch`] — scoped timing that records into a
//!   histogram on drop (or just measures). Serve-path code times
//!   through these rather than calling `Instant::now()` inline;
//!   `hopi-lint` enforces that with the `instant-in-loop` rule.
//! * [`StageRegistry`] — a fixed taxonomy of pipeline stages, each with
//!   its own histogram, so per-request stage breakdowns aggregate into
//!   per-stage distributions.
//! * [`TraceId`] / [`Trace`] — per-request trace ids (unique within a
//!   process, seeded per process) and the per-request record of which
//!   stages ran and how long each took; the server echoes the id in an
//!   `x-hopi-trace` header and files slow requests by it.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets: exact buckets for 0–3 µs, four linear
/// sub-buckets per power of two from 2² µs through 2²⁷ µs, and one
/// overflow (`+Inf`) bucket for ≥ 2²⁸ µs (≈ 268 s).
pub const BUCKETS: usize = 109;

/// Largest finite value the ladder distinguishes (2²⁸ − 1 µs);
/// quantiles that land in the overflow bucket report this.
pub const MAX_FINITE_MICROS: u64 = (1 << 28) - 1;

/// Bucket holding `us`: identity below 4, then `(g-1)*4 + sub` where
/// `g = floor(log2 us)` and `sub` is the next two bits below the
/// leading one. Monotone in `us`; everything past the ladder clamps to
/// the overflow bucket.
fn bucket_index(us: u64) -> usize {
    if us < 4 {
        return us as usize;
    }
    let g = 63 - u64::from(us.leading_zeros());
    let sub = (us >> (g - 2)) & 3;
    let idx = ((g - 1) * 4 + sub) as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `idx` in microseconds; `None` for
/// the overflow (`+Inf`) bucket.
pub fn bucket_upper_micros(idx: usize) -> Option<u64> {
    if idx < 4 {
        Some(idx as u64)
    } else if idx + 1 >= BUCKETS {
        None
    } else {
        let g = (idx / 4 + 1) as u32;
        let s = (idx % 4) as u64;
        Some((1u64 << g) + ((s + 1) << (g - 2)) - 1)
    }
}

/// A lock-free log-linear latency histogram. `record` is one relaxed
/// `fetch_add` per counter — safe to share across worker threads with
/// no coordination; reads may observe a torn (but monotone) view, which
/// is fine for monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            sum_micros: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn record_micros(&self, us: u64) {
        if let Some(b) = self.buckets.get(bucket_index(us)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_micros.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation of a [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_micros(duration_micros(d));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every observation currently in `other` into `self`
    /// (mergeable: per-thread histograms can fold into a global one).
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v != 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.sum_micros
            .fetch_add(other.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile extraction and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A non-atomic copy of a [`Histogram`], cheap to merge and query.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum_micros: u64,
    count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_micros: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.sum_micros += other.sum_micros;
        self.count += other.count;
    }

    /// The `q`-quantile in microseconds: the inclusive upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest observation.
    /// Exact below 4 µs; otherwise at most 25 % above the true value
    /// (the bucket's relative width). Returns 0 when empty and
    /// [`MAX_FINITE_MICROS`] when the rank lands in the overflow
    /// bucket.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_micros(idx).unwrap_or(MAX_FINITE_MICROS);
            }
        }
        MAX_FINITE_MICROS
    }

    /// Renders Prometheus text-exposition series for this histogram:
    /// cumulative `{name}_bucket{{…,le="…"}}` lines for every occupied
    /// bucket plus `le="+Inf"`, then `{name}_sum` (seconds) and
    /// `{name}_count`. `labels` is a pre-rendered `k="v",…` block
    /// (possibly empty); `le` upper bounds are in seconds per
    /// Prometheus convention.
    pub fn render_prometheus(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write as _;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            let last = idx + 1 == BUCKETS;
            if c == 0 && !last {
                continue;
            }
            let _ = match bucket_upper_micros(idx) {
                Some(hi) => {
                    let le = hi as f64 / 1e6;
                    writeln!(
                        out,
                        "{name}_bucket{{{}le=\"{le}\"}} {cum}",
                        label_prefix(labels)
                    )
                }
                None => writeln!(
                    out,
                    "{name}_bucket{{{}le=\"+Inf\"}} {cum}",
                    label_prefix(labels)
                ),
            };
        }
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            label_block(labels),
            self.sum_micros as f64 / 1e6
        );
        let _ = writeln!(out, "{name}_count{} {}", label_block(labels), self.count);
    }

    /// Like [`HistogramSnapshot::render_prometheus`], but with `le`
    /// bounds and `_sum` in the recorded units themselves (for
    /// histograms over counts — batch sizes — rather than durations).
    pub fn render_prometheus_raw(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write as _;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            let last = idx + 1 == BUCKETS;
            if c == 0 && !last {
                continue;
            }
            let _ = match bucket_upper_micros(idx) {
                Some(hi) => {
                    writeln!(
                        out,
                        "{name}_bucket{{{}le=\"{hi}\"}} {cum}",
                        label_prefix(labels)
                    )
                }
                None => writeln!(
                    out,
                    "{name}_bucket{{{}le=\"+Inf\"}} {cum}",
                    label_prefix(labels)
                ),
            };
        }
        let _ = writeln!(out, "{name}_sum{} {}", label_block(labels), self.sum_micros);
        let _ = writeln!(out, "{name}_count{} {}", label_block(labels), self.count);
    }
}

fn label_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

fn label_block(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A started wall-clock timer. The one sanctioned way for serve-path
/// code to measure elapsed time (`hopi-lint` flags inline
/// `Instant::now()` in loops); obs owns the `Instant` calls.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed microseconds since [`Stopwatch::start`].
    pub fn elapsed_micros(&self) -> u64 {
        duration_micros(self.start.elapsed())
    }
}

/// A scoped timing span: measures from [`Span::enter`] until
/// [`Span::finish`] (or drop) and records the duration into the bound
/// histogram exactly once.
#[derive(Debug)]
pub struct Span<'a> {
    hist: Option<&'a Histogram>,
    sw: Stopwatch,
}

impl<'a> Span<'a> {
    /// Starts a span recording into `hist`.
    pub fn enter(hist: &'a Histogram) -> Span<'a> {
        Span {
            hist: Some(hist),
            sw: Stopwatch::start(),
        }
    }

    /// Ends the span, records it, and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        let us = self.sw.elapsed_micros();
        if let Some(h) = self.hist.take() {
            h.record_micros(us);
        }
        us
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record_micros(self.sw.elapsed_micros());
        }
    }
}

/// A fixed taxonomy of pipeline stages, each with its own histogram.
/// Stage names are static so per-request [`Trace`] breakdowns aggregate
/// here without allocation.
#[derive(Debug)]
pub struct StageRegistry {
    stages: Vec<(&'static str, Histogram)>,
}

impl StageRegistry {
    /// A registry with one histogram per stage name.
    pub fn new(names: &[&'static str]) -> StageRegistry {
        StageRegistry {
            stages: names.iter().map(|n| (*n, Histogram::new())).collect(),
        }
    }

    /// Records `us` microseconds against `stage` (unknown stages are
    /// dropped — the taxonomy is closed by design).
    pub fn record_micros(&self, stage: &str, us: u64) {
        if let Some((_, h)) = self.stages.iter().find(|(n, _)| *n == stage) {
            h.record_micros(us);
        }
    }

    /// The histogram for `stage`, if registered.
    pub fn histogram(&self, stage: &str) -> Option<&Histogram> {
        self.stages
            .iter()
            .find(|(n, _)| *n == stage)
            .map(|(_, h)| h)
    }

    /// Iterates `(stage, histogram)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.stages.iter().map(|(n, h)| (*n, h))
    }
}

/// A per-request trace id: unique within a process (atomic counter) and
/// distinct across processes (per-process random seed), rendered as 16
/// hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The next trace id.
    pub fn next() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 is a bijection, so distinct counters yield distinct
        // ids; the process seed decorrelates concurrent servers.
        TraceId(splitmix64(
            process_seed().wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ))
    }

    /// The raw 64-bit id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        // RandomState carries the process's ASLR/time entropy; no extra
        // dependency needed for a monitoring-grade seed.
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        h.finish() | 1
    })
}

/// One request's trace: its id, an optional human-readable detail (the
/// query text, say), and how long each pipeline stage took. Built
/// single-threaded inside the request handler; the server folds the
/// stage durations into a [`StageRegistry`] and files slow traces in
/// the slow-query log.
#[derive(Clone, Debug)]
pub struct Trace {
    id: TraceId,
    detail: Option<String>,
    stages: Vec<(&'static str, u64)>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::begin()
    }
}

impl Trace {
    /// Starts a trace with a fresh id.
    pub fn begin() -> Trace {
        Trace {
            id: TraceId::next(),
            detail: None,
            stages: Vec::new(),
        }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Runs `f`, charging its wall time to `stage`.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let v = f();
        self.add(stage, sw.elapsed_micros());
        v
    }

    /// Charges `us` microseconds to `stage` (accumulating if the stage
    /// was already seen in this trace).
    pub fn add(&mut self, stage: &'static str, us: u64) {
        if let Some((_, total)) = self.stages.iter_mut().find(|(n, _)| *n == stage) {
            *total += us;
        } else {
            self.stages.push((stage, us));
        }
    }

    /// Attaches a human-readable detail (e.g. the query expression).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        self.detail = Some(detail.into());
    }

    /// The attached detail, if any.
    pub fn detail(&self) -> Option<&str> {
        self.detail.as_deref()
    }

    /// Stage durations in first-seen order.
    pub fn stages(&self) -> &[(&'static str, u64)] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_and_contiguous() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indices never decrease as values grow.
        let mut prev = 0usize;
        for us in 0..10_000u64 {
            let idx = bucket_index(us);
            assert!(idx >= prev, "index regressed at {us}");
            prev = idx;
            let hi = bucket_upper_micros(idx).expect("finite");
            assert!(us <= hi, "{us} above its bucket bound {hi}");
            if idx > 0 {
                let lo = bucket_upper_micros(idx - 1).expect("finite") + 1;
                assert!(us >= lo, "{us} below its bucket floor {lo}");
            }
        }
        // Overflow clamps to the last bucket.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << 28), BUCKETS - 1);
        assert!(bucket_upper_micros(BUCKETS - 1).is_none());
        assert_eq!(bucket_upper_micros(BUCKETS - 2), Some(MAX_FINITE_MICROS));
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for us in [0u64, 1, 1, 2, 3] {
            h.record_micros(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum_micros(), 7);
        assert_eq!(s.quantile_micros(0.0), 0);
        assert_eq!(s.quantile_micros(0.5), 1);
        assert_eq!(s.quantile_micros(1.0), 3);
    }

    #[test]
    fn quantile_upper_bounds_true_value_within_25_percent() {
        let h = Histogram::new();
        let values: Vec<u64> = (0..1000).map(|i| i * 37 + 5).collect();
        for &v in &values {
            h.record_micros(v);
        }
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let oracle = values[rank - 1]; // values are sorted
            let got = s.quantile_micros(q);
            assert!(got >= oracle, "q={q}: {got} < oracle {oracle}");
            assert!(4 * got <= 5 * oracle + 4, "q={q}: {got} >> oracle {oracle}");
        }
    }

    #[test]
    fn merge_is_additive() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record_micros(v * 11);
            b.record_micros(v * 13);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 200);
        assert_eq!(
            s.sum_micros(),
            (0..100u64).map(|v| v * 11 + v * 13).sum::<u64>()
        );
        let mut m = HistogramSnapshot::default();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_ends_at_inf() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 1 << 30] {
            h.record_micros(v);
        }
        let mut out = String::new();
        h.snapshot()
            .render_prometheus("x_seconds", "endpoint=\"query\"", &mut out);
        let mut last_cum = 0u64;
        let mut saw_inf = false;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("x_seconds_bucket{endpoint=\"query\",le=") {
                let cum: u64 = rest
                    .split("} ")
                    .nth(1)
                    .expect("value")
                    .parse()
                    .expect("integer");
                assert!(cum >= last_cum, "non-monotone: {line}");
                last_cum = cum;
                saw_inf |= rest.starts_with("\"+Inf\"");
            }
        }
        assert!(saw_inf, "missing +Inf bucket:\n{out}");
        assert_eq!(last_cum, 5);
        assert!(out.contains("x_seconds_count{endpoint=\"query\"} 5"));
        assert!(out.contains("x_seconds_sum{endpoint=\"query\"} "));
    }

    #[test]
    fn trace_ids_are_unique_and_render_as_hex() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = TraceId::next();
            assert!(seen.insert(id.as_u64()), "duplicate trace id {id}");
            let s = id.to_string();
            assert_eq!(s.len(), 16);
            assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn trace_accumulates_stages_and_registry_aggregates() {
        let mut t = Trace::begin();
        t.add("eval", 10);
        t.add("serialize", 5);
        t.add("eval", 7);
        t.set_detail("//sec");
        assert_eq!(t.stages(), &[("eval", 17), ("serialize", 5)]);
        assert_eq!(t.detail(), Some("//sec"));

        let reg = StageRegistry::new(&["eval", "serialize"]);
        for (stage, us) in t.stages() {
            reg.record_micros(stage, *us);
        }
        reg.record_micros("unknown", 99);
        let eval = reg.histogram("eval").expect("registered").snapshot();
        assert_eq!(eval.count(), 1);
        assert_eq!(eval.sum_micros(), 17);
        assert!(reg.histogram("unknown").is_none());
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn span_records_once() {
        let h = Histogram::new();
        {
            let _s = Span::enter(&h);
        }
        let us = Span::enter(&h).finish();
        let s = h.snapshot();
        assert_eq!(s.count(), 2, "drop and finish each record exactly once");
        assert!(us < 1_000_000, "a no-op span should be fast");
    }
}
