//! Property tests for the partitioners: any partitioning must be a disjoint
//! cover of the live documents with exactly the crossing links in `L_P`,
//! node caps / closure budgets must hold, and the PSG must witness exactly
//! the source→target connectivity of the underlying element graph.

use hopi_graph::{traversal, TransitiveClosure};
use hopi_partition::{
    old_partitioner, tc_partitioner, EdgeWeightStrategy, OldPartitionerConfig,
    PartitionSkeletonGraph, Partitioning, TcPartitionerConfig,
};
use hopi_xml::{Collection, XmlDocument};
use proptest::prelude::*;
use rustc_hash::FxHashMap;

type Blueprint = (Vec<usize>, Vec<(usize, usize)>);

fn arb_collection() -> impl Strategy<Value = Blueprint> {
    let docs = proptest::collection::vec(1usize..8, 2..12);
    docs.prop_flat_map(|docs| {
        let n = docs.len();
        let links = proptest::collection::vec((0..n, 0..n), 0..20);
        (Just(docs), links)
    })
}

fn realize((docs, links): &Blueprint) -> Collection {
    let mut c = Collection::new();
    for (i, &n) in docs.iter().enumerate() {
        let mut d = XmlDocument::new(format!("d{i}"), "r");
        for k in 1..n {
            d.add_element((k - 1) as u32 / 2, "e");
        }
        c.add_document(d);
    }
    for &(a, b) in links {
        if a != b {
            let (a, b) = (a as u32, b as u32);
            c.add_link(c.global_id(a, 0), c.global_id(b, 0));
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn old_partitioner_invariants(bp in arb_collection(), cap in 4u64..40) {
        let c = realize(&bp);
        let p = old_partitioner::partition(&c, &OldPartitionerConfig {
            max_nodes_per_partition: cap,
            strategy: EdgeWeightStrategy::LinkCount,
            seed: 5,
        });
        p.check_invariants(&c);
        for part in &p.partitions {
            prop_assert!(
                part.node_weight <= cap || part.docs.len() == 1,
                "weight {} cap {cap} docs {}", part.node_weight, part.docs.len()
            );
        }
    }

    #[test]
    fn tc_partitioner_invariants(bp in arb_collection(), budget in 8u64..120) {
        let c = realize(&bp);
        let p = tc_partitioner::partition(&c, &TcPartitionerConfig {
            max_connections_per_partition: budget,
            strategy: EdgeWeightStrategy::LinkCount,
            seed: 5,
        });
        p.check_invariants(&c);
        for (pi, part) in p.partitions.iter().enumerate() {
            // Tracked closure size matches a fresh computation.
            let (g, _, _) = p.partition_element_graph(&c, pi as u32);
            let actual = TransitiveClosure::from_graph(&g).connection_count() as u64;
            prop_assert_eq!(part.tc_size, Some(actual));
            prop_assert!(
                actual <= budget || part.docs.len() == 1,
                "closure {actual} budget {budget}"
            );
        }
    }

    #[test]
    fn psg_reachability_matches_element_graph(bp in arb_collection()) {
        let c = realize(&bp);
        let p = Partitioning::per_document(&c);
        // Oracle connectivity within partitions via per-partition closures.
        let mut closures = FxHashMap::default();
        for pi in 0..p.len() as u32 {
            let (g, _, g2l) = p.partition_element_graph(&c, pi);
            closures.insert(pi, (TransitiveClosure::from_graph(&g), g2l));
        }
        let psg = PartitionSkeletonGraph::build(&c, &p, |pi, from, to| {
            let (tc, g2l) = &closures[&pi];
            match (g2l.get(&from), g2l.get(&to)) {
                (Some(&f), Some(&t)) => tc.contains(f, t),
                _ => false,
            }
        });
        // For every (source, target) PSG pair: PSG reachability must equal
        // element-graph reachability.
        let ge = c.element_graph();
        for s in psg.sources() {
            for t in psg.targets() {
                let psg_reach = traversal::is_reachable(&psg.graph, s, t);
                let elem_reach =
                    traversal::is_reachable(&ge, psg.nodes[s as usize], psg.nodes[t as usize]);
                prop_assert_eq!(
                    psg_reach, elem_reach,
                    "source {} target {}", psg.nodes[s as usize], psg.nodes[t as usize]
                );
            }
        }
    }

    #[test]
    fn partition_graphs_tile_the_element_graph(bp in arb_collection(), budget in 8u64..200) {
        let c = realize(&bp);
        let p = tc_partitioner::partition(&c, &TcPartitionerConfig {
            max_connections_per_partition: budget,
            ..Default::default()
        });
        let total_edges: usize = (0..p.len() as u32)
            .map(|i| p.partition_element_graph(&c, i).0.edge_count())
            .sum();
        prop_assert_eq!(
            total_edges + p.cross_links.len(),
            c.element_graph().edge_count()
        );
    }
}
