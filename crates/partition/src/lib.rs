//! # hopi-partition — partitioning the document-level graph
//!
//! HOPI's divide-and-conquer construction first splits the collection into
//! partitions whose transitive closures fit in memory (paper §3.3), computes
//! a 2-hop cover per partition, and joins the covers. This crate provides:
//!
//! * [`partitioning::Partitioning`] — partitions, the partition map
//!   `part : D → {P_1..P_m}`, and the cross-partition link set `L_P`.
//! * [`old_partitioner`] — the original partitioner of [26]: greedy growth
//!   over the weighted document-level graph under a conservative **node
//!   (element) count cap** (the `Px` configurations of Table 2).
//! * [`tc_partitioner`] — the new partitioner of paper §4.3: grows a
//!   partition while *incrementally maintaining its transitive closure*, and
//!   closes the partition when the closure reaches the memory budget (the
//!   `Nx` configurations of Table 2).
//! * [`edge_weights`] — the link-count default and the new `A·D` / `A+D`
//!   connection-count weights computed on the skeleton graph (paper §4.3).
//! * [`skeleton`] — the skeleton graph `S(X)` (Definition 2) with
//!   ancestor/descendant annotations and the bounded-BFS approximation of
//!   per-link-endpoint ancestor/descendant counts.
//! * [`psg`] — the partition-level skeleton graph `S(P)` (Definition 1)
//!   that the structurally recursive cover join of paper §4.1 operates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_weights;
pub mod old_partitioner;
pub mod partitioning;
pub mod pipeline;
pub mod psg;
pub mod skeleton;
pub mod tc_partitioner;

pub use edge_weights::{DocEdgeWeights, EdgeWeightStrategy};
pub use old_partitioner::OldPartitionerConfig;
pub use partitioning::{Partition, Partitioning};
pub use pipeline::{
    build_index, BuildConfig, BuildReport, JoinAlgorithm, PartitionerChoice, PsgJoinReport,
};
pub use psg::PartitionSkeletonGraph;
pub use skeleton::SkeletonGraph;
pub use tc_partitioner::TcPartitionerConfig;
