//! The original HOPI partitioner from [26] (paper §3.3): grow partitions on
//! the weighted document-level graph under a **conservative node-count
//! cap**, "limiting the sum of node weights within a single partition and
//! minimizing the weight of cross-partition edges".
//!
//! Growth is greedy: a random unassigned seed document starts a partition;
//! the neighbor (in the undirected document graph) connected to the
//! partition by the highest accumulated edge weight is absorbed next, until
//! the node-weight cap would be exceeded. This keeps heavily linked
//! documents together, which minimizes `L_P` — exactly the heuristic the
//! original paper describes. The `Px` rows of Table 2 use caps of `x·10⁴`
//! elements.

use crate::edge_weights::{DocEdgeWeights, EdgeWeightStrategy};
use crate::partitioning::Partitioning;
use hopi_xml::{Collection, DocId};
use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashMap;

/// Configuration of the original (node-weight-capped) partitioner.
#[derive(Clone, Debug)]
pub struct OldPartitionerConfig {
    /// Maximum sum of document node weights (element counts) per partition.
    /// A single document heavier than the cap still gets its own partition.
    pub max_nodes_per_partition: u64,
    /// Edge-weight strategy steering the greedy growth.
    pub strategy: EdgeWeightStrategy,
    /// Seed for the randomized seed-document order.
    pub seed: u64,
}

impl Default for OldPartitionerConfig {
    fn default() -> Self {
        OldPartitionerConfig {
            max_nodes_per_partition: 50_000, // P5 at paper scale
            strategy: EdgeWeightStrategy::LinkCount,
            seed: 0x01d,
        }
    }
}

/// Runs the original partitioner.
pub fn partition(collection: &Collection, config: &OldPartitionerConfig) -> Partitioning {
    let weights = DocEdgeWeights::compute(collection, config.strategy);
    let (doc_graph, _) = collection.document_graph();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<DocId> = collection.doc_ids().collect();
    order.shuffle(&mut rng);

    let mut part_of = vec![u32::MAX; collection.doc_id_bound()];
    let mut next_partition = 0u32;

    let absorb_neighbors = |d: DocId, part_of: &[u32], frontier: &mut FxHashMap<DocId, u64>| {
        for &nb in doc_graph
            .successors(d)
            .iter()
            .chain(doc_graph.predecessors(d))
        {
            if part_of[nb as usize] == u32::MAX {
                *frontier.entry(nb).or_insert(0) += weights.undirected(d, nb).max(1);
            }
        }
    };

    // Fill partitions up to the node cap: greedy growth along weighted
    // document edges, refilling from fresh seeds when a connected region is
    // exhausted (the original partitioner packs documents to the size limit
    // regardless of connectivity).
    let mut cursor = 0usize;
    while cursor < order.len() {
        while cursor < order.len() && part_of[order[cursor] as usize] != u32::MAX {
            cursor += 1;
        }
        if cursor == order.len() {
            break;
        }
        let p = next_partition;
        next_partition += 1;
        let mut weight = 0u64;
        let mut frontier: FxHashMap<DocId, u64> = FxHashMap::default();
        let mut seed_cursor = cursor;
        let mut first = true;

        while weight < config.max_nodes_per_partition {
            // Highest-weight candidate that still fits, or a fresh seed.
            let candidate = match frontier
                .iter()
                .filter(|(&d, _)| {
                    weight + collection.doc_weight(d) as u64 <= config.max_nodes_per_partition
                })
                .max_by_key(|(&d, &w)| (w, std::cmp::Reverse(d)))
            {
                Some((&best, _)) => {
                    frontier.remove(&best);
                    Some(best)
                }
                None => {
                    let mut found = None;
                    while seed_cursor < order.len() {
                        let d = order[seed_cursor];
                        if part_of[d as usize] == u32::MAX
                            && (first
                                || weight + collection.doc_weight(d) as u64
                                    <= config.max_nodes_per_partition)
                        {
                            found = Some(d);
                            break;
                        }
                        seed_cursor += 1;
                    }
                    found
                }
            };
            let Some(best) = candidate else { break };
            part_of[best as usize] = p;
            weight += collection.doc_weight(best) as u64;
            first = false;
            absorb_neighbors(best, &part_of, &mut frontier);
        }
    }
    let mut partitioning =
        Partitioning::from_assignment(collection, next_partition as usize, part_of);
    for p in &mut partitioning.partitions {
        p.tc_size = None;
    }
    partitioning
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::generator::{dblp, random_collection, DblpConfig, RandomConfig};

    #[test]
    fn respects_node_cap() {
        let c = dblp(&DblpConfig::scaled(0.02));
        let cfg = OldPartitionerConfig {
            max_nodes_per_partition: 200,
            ..Default::default()
        };
        let p = partition(&c, &cfg);
        p.check_invariants(&c);
        for part in &p.partitions {
            assert!(
                part.node_weight <= 200 || part.docs.len() == 1,
                "partition weight {} with {} docs",
                part.node_weight,
                part.docs.len()
            );
        }
    }

    #[test]
    fn covers_all_documents() {
        let c = random_collection(&RandomConfig::default());
        let p = partition(&c, &OldPartitionerConfig::default());
        p.check_invariants(&c);
        let total: usize = p.partitions.iter().map(|q| q.docs.len()).sum();
        assert_eq!(total, c.doc_count());
    }

    #[test]
    fn larger_cap_fewer_partitions() {
        let c = dblp(&DblpConfig::scaled(0.02));
        let small = partition(
            &c,
            &OldPartitionerConfig {
                max_nodes_per_partition: 100,
                ..Default::default()
            },
        );
        let large = partition(
            &c,
            &OldPartitionerConfig {
                max_nodes_per_partition: 2000,
                ..Default::default()
            },
        );
        assert!(large.len() < small.len());
    }

    #[test]
    fn greedy_growth_reduces_cross_links() {
        // Compared with per-document partitioning, greedy growth must
        // strictly reduce the number of cross-partition links on a linked
        // collection.
        let c = dblp(&DblpConfig::scaled(0.02));
        let naive = Partitioning::per_document(&c);
        let grown = partition(
            &c,
            &OldPartitionerConfig {
                max_nodes_per_partition: 1_000,
                ..Default::default()
            },
        );
        assert!(
            grown.cross_links.len() < naive.cross_links.len(),
            "greedy {} !< naive {}",
            grown.cross_links.len(),
            naive.cross_links.len()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let c = dblp(&DblpConfig::scaled(0.01));
        let cfg = OldPartitionerConfig {
            max_nodes_per_partition: 300,
            ..Default::default()
        };
        let a = partition(&c, &cfg);
        let b = partition(&c, &cfg);
        assert_eq!(a.part_of, b.part_of);
    }

    #[test]
    fn oversized_document_gets_own_partition() {
        use hopi_xml::XmlDocument;
        let mut c = Collection::new();
        let mut big = XmlDocument::new("big", "r");
        for _ in 0..50 {
            big.add_element(0, "x");
        }
        c.add_document(big);
        c.add_document(XmlDocument::new("small", "r"));
        let p = partition(
            &c,
            &OldPartitionerConfig {
                max_nodes_per_partition: 10,
                ..Default::default()
            },
        );
        p.check_invariants(&c);
        assert_eq!(p.len(), 2);
    }
}
