//! The partition-level skeleton graph `S(P)` (paper §4.1, Definition 1).
//!
//! Nodes: sources and targets of cross-partition links. Edges: the
//! cross-partition links `L_P`, plus edges that "represent connections of
//! link targets and sources within the same partition" — i.e. `t → s`
//! whenever target `t` reaches source `s` inside their shared partition.
//! The intra-partition reachability test is delegated to an oracle (in the
//! build pipeline: the already-computed partition cover).

use crate::partitioning::Partitioning;
use hopi_graph::DiGraph;
use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashMap;

/// The PSG with compact node indexing.
pub struct PartitionSkeletonGraph {
    /// Global element ids of the PSG nodes.
    pub nodes: Vec<ElemId>,
    /// Global element id → compact PSG index.
    pub index: FxHashMap<ElemId, u32>,
    /// Graph over compact indices.
    pub graph: DiGraph,
    /// Is the node a source of a cross-partition link?
    pub is_source: Vec<bool>,
    /// Is the node a target of a cross-partition link?
    pub is_target: Vec<bool>,
    /// Partition of each node.
    pub partition: Vec<u32>,
}

impl PartitionSkeletonGraph {
    /// Builds the PSG. `connected_in_partition(partition, from, to)` must
    /// answer whether `from →* to` holds within the partition's element
    /// graph (global element ids).
    pub fn build(
        collection: &Collection,
        partitioning: &Partitioning,
        mut connected_in_partition: impl FnMut(u32, ElemId, ElemId) -> bool,
    ) -> Self {
        let mut nodes: Vec<ElemId> = Vec::new();
        let mut index: FxHashMap<ElemId, u32> = FxHashMap::default();
        let mut is_source: Vec<bool> = Vec::new();
        let mut is_target: Vec<bool> = Vec::new();
        let mut partition: Vec<u32> = Vec::new();
        {
            let mut intern = |e: ElemId| -> u32 {
                *index.entry(e).or_insert_with(|| {
                    nodes.push(e);
                    is_source.push(false);
                    is_target.push(false);
                    partition.push(
                        partitioning
                            .partition_of_elem(collection, e)
                            .expect("PSG node in live partition"),
                    );
                    nodes.len() as u32 - 1
                })
            };
            for l in &partitioning.cross_links {
                let f = intern(l.from);
                let t = intern(l.to);
                // Recorded below once the borrow ends.
                let _ = (f, t);
            }
        }
        let mut graph = DiGraph::new();
        if !nodes.is_empty() {
            graph.ensure_node(nodes.len() as u32 - 1);
        }
        for l in &partitioning.cross_links {
            let f = index[&l.from];
            let t = index[&l.to];
            is_source[f as usize] = true;
            is_target[t as usize] = true;
            graph.add_edge(f, t);
        }

        // Intra-partition connection edges: target t → source s, same
        // partition, t reaches s in the partition.
        let mut per_partition: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, &p) in partition.iter().enumerate() {
            per_partition.entry(p).or_default().push(i as u32);
        }
        for (&p, members) in &per_partition {
            for &ti in members {
                if !is_target[ti as usize] {
                    continue;
                }
                for &si in members {
                    if si == ti || !is_source[si as usize] {
                        continue;
                    }
                    if connected_in_partition(p, nodes[ti as usize], nodes[si as usize]) {
                        graph.add_edge(ti, si);
                    }
                }
            }
        }
        PartitionSkeletonGraph {
            nodes,
            index,
            graph,
            is_source,
            is_target,
            partition,
        }
    }

    /// Number of PSG nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no cross-partition links at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Compact indices of all link sources.
    pub fn sources(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len() as u32).filter(|&i| self.is_source[i as usize])
    }

    /// Compact indices of all link targets.
    pub fn targets(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len() as u32).filter(|&i| self.is_target[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::{traversal, TransitiveClosure};
    use hopi_xml::XmlDocument;

    /// Reproduces the paper's Figure 3 situation: two partitions, the link
    /// target in P1 connects within the partition down to the sources of
    /// further cross links.
    fn fixture() -> (Collection, Partitioning) {
        let mut c = Collection::new();
        // P0: doc a (root 0, child 1), doc b (root 2, child 3).
        // P1: doc x (root 4, children 5,6).
        let mut a = XmlDocument::new("a", "r");
        a.add_element(0, "s");
        c.add_document(a);
        let mut b = XmlDocument::new("b", "r");
        b.add_element(0, "s");
        c.add_document(b);
        let mut x = XmlDocument::new("x", "r");
        x.add_element(0, "p");
        x.add_element(0, "q");
        c.add_document(x);
        // Intra-partition link a/s -> b/root (inside P0).
        c.add_link(1, 2);
        // Cross links: b/s(3) -> x/root(4); x/q(6) -> a/root(0).
        c.add_link(3, 4);
        c.add_link(6, 0);
        let part = Partitioning::from_assignment(&c, 2, vec![0, 0, 1]);
        (c, part)
    }

    fn oracle(c: &Collection, p: &Partitioning) -> impl FnMut(u32, ElemId, ElemId) -> bool {
        let mut closures: FxHashMap<u32, (TransitiveClosure, FxHashMap<ElemId, u32>)> =
            FxHashMap::default();
        for pi in 0..p.len() as u32 {
            let (g, _, g2l) = p.partition_element_graph(c, pi);
            closures.insert(pi, (TransitiveClosure::from_graph(&g), g2l));
        }
        move |part, from, to| {
            let (tc, g2l) = &closures[&part];
            match (g2l.get(&from), g2l.get(&to)) {
                (Some(&f), Some(&t)) => tc.contains(f, t),
                _ => false,
            }
        }
    }

    #[test]
    fn psg_nodes_and_edges() {
        let (c, p) = fixture();
        let mut orc = oracle(&c, &p);
        let psg = PartitionSkeletonGraph::build(&c, &p, &mut orc);
        // Cross-link endpoints: 3, 4, 6, 0.
        let mut ns = psg.nodes.clone();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 3, 4, 6]);
        // Cross edges 3→4 and 6→0.
        assert!(psg.graph.has_edge(psg.index[&3], psg.index[&4]));
        assert!(psg.graph.has_edge(psg.index[&6], psg.index[&0]));
        // Intra-partition connection edges: target 4 (x/root) reaches source
        // 6 (x/q) inside P1; target 0 (a/root) reaches source 3? 0→1→(link
        // 1→2 inside P0)→2→3: yes, via the intra-partition link.
        assert!(psg.graph.has_edge(psg.index[&4], psg.index[&6]));
        assert!(psg.graph.has_edge(psg.index[&0], psg.index[&3]));
        // The PSG is strongly connected in this fixture.
        assert!(traversal::is_reachable(
            &psg.graph,
            psg.index[&3],
            psg.index[&3]
        ));
    }

    #[test]
    fn source_target_flags() {
        let (c, p) = fixture();
        let mut orc = oracle(&c, &p);
        let psg = PartitionSkeletonGraph::build(&c, &p, &mut orc);
        assert!(psg.is_source[psg.index[&3] as usize]);
        assert!(psg.is_target[psg.index[&4] as usize]);
        assert!(psg.is_source[psg.index[&6] as usize]);
        assert!(psg.is_target[psg.index[&0] as usize]);
        assert_eq!(psg.sources().count(), 2);
        assert_eq!(psg.targets().count(), 2);
    }

    #[test]
    fn empty_when_no_cross_links() {
        let (c, _) = fixture();
        let p = Partitioning::single_partition(&c);
        let psg = PartitionSkeletonGraph::build(&c, &p, |_, _, _| true);
        assert!(psg.is_empty());
    }

    #[test]
    fn partition_annotation() {
        let (c, p) = fixture();
        let mut orc = oracle(&c, &p);
        let psg = PartitionSkeletonGraph::build(&c, &p, &mut orc);
        assert_eq!(psg.partition[psg.index[&3] as usize], 0);
        assert_eq!(psg.partition[psg.index[&4] as usize], 1);
    }
}
