//! The new transitive-closure-size-aware partitioner (paper §4.3).
//!
//! The old partitioner caps the *node count* per partition, a conservative
//! proxy for closure size that "misses opportunities as it completely
//! ignores the structure of the graph, yielding partitions that are too
//! small most of the time". The new algorithm "computes, while incrementally
//! building the partition, the transitive closure of the partition and
//! continues with the next partition when the transitive closure is as
//! large as the available memory" — partitions are closed by *measured*
//! closure size, not by a node-count guess. The `Nx` rows of Table 2 use
//! budgets of `x·10⁵` connections.

use crate::edge_weights::{DocEdgeWeights, EdgeWeightStrategy};
use crate::partitioning::Partitioning;
use hopi_graph::TransitiveClosure;
use hopi_xml::{Collection, DocId, ElemId};
use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashMap;

/// Configuration of the closure-size-aware partitioner.
#[derive(Clone, Debug)]
pub struct TcPartitionerConfig {
    /// Maximum number of closure connections per partition ("as large as
    /// the available memory"). A single document whose own closure exceeds
    /// the budget still forms a partition by itself.
    pub max_connections_per_partition: u64,
    /// Edge-weight strategy steering the greedy growth. Paper §7.2: "the
    /// new partitioning algorithm in combination with edge weights set to
    /// A*D gave similar results to the old partitioning algorithm".
    pub strategy: EdgeWeightStrategy,
    /// Seed for the randomized seed-document order.
    pub seed: u64,
}

impl Default for TcPartitionerConfig {
    fn default() -> Self {
        TcPartitionerConfig {
            max_connections_per_partition: 1_000_000, // N10 at paper scale
            strategy: EdgeWeightStrategy::AncTimesDesc,
            seed: 0x7c,
        }
    }
}

/// Incrementally grown partition state: a local-id closure over the
/// partition's elements.
struct GrowingPartition {
    closure: TransitiveClosure,
    global_to_local: FxHashMap<ElemId, u32>,
    docs: Vec<DocId>,
}

impl GrowingPartition {
    fn new() -> Self {
        GrowingPartition {
            closure: TransitiveClosure::new(),
            global_to_local: FxHashMap::default(),
            docs: Vec::new(),
        }
    }

    /// Adds a document (tree + intra links + links to/from already-present
    /// docs) to the incremental closure. Returns the new connection count.
    fn add_doc(
        &mut self,
        collection: &Collection,
        d: DocId,
        links_by_doc: &FxHashMap<DocId, Vec<(ElemId, ElemId)>>,
    ) -> u64 {
        let doc = collection.document(d).expect("live doc");
        let base = collection.global_id(d, 0);
        for (local, _) in doc.elements() {
            let id = self.closure.add_node();
            self.global_to_local.insert(base + local, id);
        }
        for (p, c) in doc.tree_edges() {
            self.closure.insert_edge(
                self.global_to_local[&(base + p)],
                self.global_to_local[&(base + c)],
            );
        }
        for &(f, t) in doc.intra_links() {
            self.closure.insert_edge(
                self.global_to_local[&(base + f)],
                self.global_to_local[&(base + t)],
            );
        }
        // Inter-document links between d and docs already in the partition
        // (both directions are in links_by_doc under both endpoints).
        if let Some(ls) = links_by_doc.get(&d) {
            for &(f, t) in ls {
                if let (Some(&lf), Some(&lt)) =
                    (self.global_to_local.get(&f), self.global_to_local.get(&t))
                {
                    self.closure.insert_edge(lf, lt);
                }
            }
        }
        self.closure.connection_count() as u64
    }
}

/// Runs the closure-size-aware partitioner.
pub fn partition(collection: &Collection, config: &TcPartitionerConfig) -> Partitioning {
    let weights = DocEdgeWeights::compute(collection, config.strategy);
    let (doc_graph, _) = collection.document_graph();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<DocId> = collection.doc_ids().collect();
    order.shuffle(&mut rng);

    // Links grouped under both endpoint documents, so adding a document can
    // wire it to everything already present.
    let mut links_by_doc: FxHashMap<DocId, Vec<(ElemId, ElemId)>> = FxHashMap::default();
    for l in collection.links() {
        let fd = collection.doc_of(l.from).expect("live source");
        let td = collection.doc_of(l.to).expect("live target");
        links_by_doc.entry(fd).or_default().push((l.from, l.to));
        links_by_doc.entry(td).or_default().push((l.from, l.to));
    }

    let mut part_of = vec![u32::MAX; collection.doc_id_bound()];
    let mut tc_sizes: Vec<u64> = Vec::new();
    let mut next_partition = 0u32;

    let absorb = |d: DocId, part_of: &[u32], frontier: &mut FxHashMap<DocId, u64>| {
        for &nb in doc_graph
            .successors(d)
            .iter()
            .chain(doc_graph.predecessors(d))
        {
            if part_of[nb as usize] == u32::MAX {
                *frontier.entry(nb).or_insert(0) += weights.undirected(d, nb).max(1);
            }
        }
    };

    // Partitions are filled until the closure budget is reached: greedy
    // growth along weighted document edges, and when a connected region is
    // exhausted the partition keeps filling from the next unassigned seed
    // ("continues with the next partition when the transitive closure is as
    // large as the available memory").
    let mut cursor = 0usize;
    while cursor < order.len() {
        // Next unassigned seed.
        while cursor < order.len() && part_of[order[cursor] as usize] != u32::MAX {
            cursor += 1;
        }
        if cursor == order.len() {
            break;
        }
        let p = next_partition;
        next_partition += 1;
        let mut grow = GrowingPartition::new();
        let mut size = 0u64;
        let mut frontier: FxHashMap<DocId, u64> = FxHashMap::default();
        let mut seed_cursor = cursor;

        'fill: while size < config.max_connections_per_partition {
            // Pick the heaviest frontier doc, or a fresh seed when the
            // frontier is exhausted.
            let candidate = match frontier
                .iter()
                .max_by_key(|(&d, &w)| (w, std::cmp::Reverse(d)))
            {
                Some((&best, _)) => {
                    frontier.remove(&best);
                    best
                }
                None => {
                    while seed_cursor < order.len()
                        && part_of[order[seed_cursor] as usize] != u32::MAX
                    {
                        seed_cursor += 1;
                    }
                    match order.get(seed_cursor) {
                        Some(&d) => d,
                        None => break 'fill, // no documents left anywhere
                    }
                }
            };
            let snapshot = size;
            let grown = grow.add_doc(collection, candidate, &links_by_doc);
            if grown > config.max_connections_per_partition && !grow.docs.is_empty() {
                // Over budget: close with the previous size; `candidate`
                // stays unassigned (the closure is discarded anyway).
                size = snapshot;
                break 'fill;
            }
            size = grown;
            part_of[candidate as usize] = p;
            grow.docs.push(candidate);
            absorb(candidate, &part_of, &mut frontier);
        }
        tc_sizes.push(size);
    }

    let mut partitioning =
        Partitioning::from_assignment(collection, next_partition as usize, part_of);
    for (p, s) in partitioning.partitions.iter_mut().zip(tc_sizes) {
        p.tc_size = Some(s);
    }
    partitioning
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::TransitiveClosure;
    use hopi_xml::generator::{dblp, random_collection, DblpConfig, RandomConfig};

    #[test]
    fn tracked_tc_size_matches_actual() {
        let c = dblp(&DblpConfig::scaled(0.01));
        let cfg = TcPartitionerConfig {
            max_connections_per_partition: 2_000,
            ..Default::default()
        };
        let p = partition(&c, &cfg);
        p.check_invariants(&c);
        for (pi, part) in p.partitions.iter().enumerate() {
            let (g, _, _) = p.partition_element_graph(&c, pi as u32);
            let actual = TransitiveClosure::from_graph(&g).connection_count() as u64;
            assert_eq!(part.tc_size, Some(actual), "partition {pi}");
        }
    }

    #[test]
    fn respects_connection_budget() {
        let c = dblp(&DblpConfig::scaled(0.02));
        let budget = 1_500;
        let p = partition(
            &c,
            &TcPartitionerConfig {
                max_connections_per_partition: budget,
                ..Default::default()
            },
        );
        for part in &p.partitions {
            assert!(
                part.tc_size.unwrap() <= budget || part.docs.len() == 1,
                "partition closure {} over budget with {} docs",
                part.tc_size.unwrap(),
                part.docs.len()
            );
        }
    }

    #[test]
    fn balanced_closure_sizes() {
        // Paper §7.2: "the new algorithm creates partitions with a similar
        // size of the transitive closures". Most partitions (excluding the
        // leftovers) should be within an order of magnitude of each other.
        let c = dblp(&DblpConfig::scaled(0.05));
        let budget = 3_000u64;
        let p = partition(
            &c,
            &TcPartitionerConfig {
                max_connections_per_partition: budget,
                ..Default::default()
            },
        );
        let filled = p
            .partitions
            .iter()
            .filter(|q| q.tc_size.unwrap() > budget / 2)
            .count();
        assert!(
            filled * 2 >= p.len().saturating_sub(2),
            "most partitions should be filled near budget ({} of {})",
            filled,
            p.len()
        );
    }

    #[test]
    fn covers_all_documents() {
        let c = random_collection(&RandomConfig::default());
        let p = partition(&c, &TcPartitionerConfig::default());
        p.check_invariants(&c);
    }

    #[test]
    fn bigger_budget_fewer_partitions() {
        let c = dblp(&DblpConfig::scaled(0.02));
        let small = partition(
            &c,
            &TcPartitionerConfig {
                max_connections_per_partition: 800,
                ..Default::default()
            },
        );
        let large = partition(
            &c,
            &TcPartitionerConfig {
                max_connections_per_partition: 20_000,
                ..Default::default()
            },
        );
        assert!(large.len() < small.len());
    }

    #[test]
    fn all_weight_strategies_work() {
        let c = dblp(&DblpConfig::scaled(0.01));
        for strategy in [
            EdgeWeightStrategy::LinkCount,
            EdgeWeightStrategy::AncTimesDesc,
            EdgeWeightStrategy::AncPlusDesc,
        ] {
            let p = partition(
                &c,
                &TcPartitionerConfig {
                    max_connections_per_partition: 2_000,
                    strategy,
                    ..Default::default()
                },
            );
            p.check_invariants(&c);
        }
    }
}
