//! Edge-weight strategies for the document-level graph (paper §3.3 / §4.3).
//!
//! The original HOPI partitioner weights a document edge `(d_i, d_k)` by the
//! number of links from `d_i` to `d_k`. Paper §4.3 proposes weighting by how
//! many *connections* a link carries: with `A` the (approximate) global
//! ancestor count of the link source and `D` the descendant count of the
//! link target, `A·D` counts the connections over the link and `A+D` the
//! nodes connected over it — "giving more weight to edges in the center of
//! the graph".

use crate::skeleton::SkeletonGraph;
use hopi_xml::{Collection, DocId};
use rustc_hash::FxHashMap;

/// How to weight document-level edges for partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EdgeWeightStrategy {
    /// Number of links between the two documents (the default of [26]).
    #[default]
    LinkCount,
    /// Per link, `A(source) · D(target)` — the number of connections made
    /// over this link (paper §4.3).
    AncTimesDesc,
    /// Per link, `A(source) + D(target)` — the number of nodes connected
    /// over this link (paper §4.3).
    AncPlusDesc,
}

/// Bounded-BFS depth used when approximating `A`/`D` on the skeleton graph.
pub const DEFAULT_APPROX_DEPTH: u32 = 4;

/// Computed document-edge weights.
#[derive(Clone, Debug, Default)]
pub struct DocEdgeWeights {
    weights: FxHashMap<(DocId, DocId), u64>,
}

impl DocEdgeWeights {
    /// Computes edge weights under the chosen strategy.
    pub fn compute(collection: &Collection, strategy: EdgeWeightStrategy) -> Self {
        match strategy {
            EdgeWeightStrategy::LinkCount => {
                let (_, counts) = collection.document_graph();
                DocEdgeWeights {
                    weights: counts.into_iter().map(|(k, v)| (k, v as u64)).collect(),
                }
            }
            EdgeWeightStrategy::AncTimesDesc | EdgeWeightStrategy::AncPlusDesc => {
                let skeleton = SkeletonGraph::build(collection);
                let a = skeleton.approx_ancestor_counts(DEFAULT_APPROX_DEPTH);
                let d = skeleton.approx_descendant_counts(DEFAULT_APPROX_DEPTH);
                let mut weights: FxHashMap<(DocId, DocId), u64> = FxHashMap::default();
                for l in collection.links() {
                    let fd = collection.doc_of(l.from).expect("live source");
                    let td = collection.doc_of(l.to).expect("live target");
                    let fi = skeleton.index[&l.from] as usize;
                    let ti = skeleton.index[&l.to] as usize;
                    // +1: the endpoints themselves take part in every
                    // connection over the link.
                    let av = a[fi] + 1;
                    let dv = d[ti] + 1;
                    let w = match strategy {
                        EdgeWeightStrategy::AncTimesDesc => av * dv,
                        EdgeWeightStrategy::AncPlusDesc => av + dv,
                        EdgeWeightStrategy::LinkCount => unreachable!(),
                    };
                    *weights.entry((fd, td)).or_insert(0) += w;
                }
                DocEdgeWeights { weights }
            }
        }
    }

    /// Weight of document edge `(from, to)` (0 when absent).
    pub fn get(&self, from: DocId, to: DocId) -> u64 {
        self.weights.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Undirected weight between two documents (sum of both directions) —
    /// partition growth treats the document graph as undirected.
    pub fn undirected(&self, a: DocId, b: DocId) -> u64 {
        self.get(a, b) + self.get(b, a)
    }

    /// Iterates `(from, to, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, DocId, u64)> + '_ {
        self.weights.iter().map(|(&(f, t), &w)| (f, t, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::XmlDocument;

    /// d0 has a deep tree whose leaf links to d1's root; d1 has a large
    /// subtree. Also d0 -> d2 twice from shallow elements.
    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut d0 = XmlDocument::new("d0", "r");
        let a = d0.add_element(0, "a");
        let b = d0.add_element(a, "b");
        let leaf = d0.add_element(b, "leaf");
        let s1 = d0.add_element(0, "s1");
        let s2 = d0.add_element(0, "s2");
        let _ = (leaf, s1, s2);
        c.add_document(d0); // globals 0..=5
        let mut d1 = XmlDocument::new("d1", "r");
        for _ in 0..6 {
            d1.add_element(0, "x");
        }
        c.add_document(d1); // globals 6..=12
        let mut d2 = XmlDocument::new("d2", "r");
        d2.add_element(0, "y");
        c.add_document(d2); // globals 13..=14
        c.add_link(3, 6); // d0/leaf -> d1/root (deep source, big target)
        c.add_link(4, 13); // d0/s1 -> d2/root
        c.add_link(5, 13); // d0/s2 -> d2/root
        c
    }

    #[test]
    fn link_count_weights() {
        let c = collection();
        let w = DocEdgeWeights::compute(&c, EdgeWeightStrategy::LinkCount);
        assert_eq!(w.get(0, 1), 1);
        assert_eq!(w.get(0, 2), 2);
        assert_eq!(w.get(1, 2), 0);
        assert_eq!(w.undirected(2, 0), 2);
    }

    #[test]
    fn anc_times_desc_favors_central_links() {
        let c = collection();
        let w = DocEdgeWeights::compute(&c, EdgeWeightStrategy::AncTimesDesc);
        // d0/leaf has 3 tree ancestors, d1/root has 6 descendants:
        // weight (3+1)*(6+1) = 28.
        assert_eq!(w.get(0, 1), 28);
        // Each s_i has 1 ancestor, d2/root has 1 descendant: (1+1)*(1+1)=4
        // per link, 8 total.
        assert_eq!(w.get(0, 2), 8);
        assert!(w.get(0, 1) > w.get(0, 2), "central link outweighs");
    }

    #[test]
    fn anc_plus_desc_weights() {
        let c = collection();
        let w = DocEdgeWeights::compute(&c, EdgeWeightStrategy::AncPlusDesc);
        // (3+1)+(6+1) = 11 for the central link.
        assert_eq!(w.get(0, 1), 11);
        // ((1+1)+(1+1)) = 4 per s_i link, 8 total.
        assert_eq!(w.get(0, 2), 8);
    }

    #[test]
    fn empty_collection() {
        let c = Collection::new();
        let w = DocEdgeWeights::compute(&c, EdgeWeightStrategy::AncTimesDesc);
        assert_eq!(w.iter().count(), 0);
    }
}
