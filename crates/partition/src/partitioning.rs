//! Partitions and partitionings of a collection (paper §2).
//!
//! A *partition* `P_i = (D_i, L_i)` is a subcollection closed over its own
//! links; a *partitioning* `P(X) = ({P_1..P_m}, L_P)` splits the documents
//! disjointly and collects the leftover cross-partition links in `L_P`.

use hopi_graph::DiGraph;
use hopi_xml::{Collection, DocId, ElemId, Link};
use rustc_hash::FxHashMap;

/// One partition: a set of documents. Links internal to the partition stay
/// implicit (they are recovered from the collection when materializing the
/// partition's element graph).
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Documents of this partition.
    pub docs: Vec<DocId>,
    /// Sum of document node weights (element counts).
    pub node_weight: u64,
    /// Transitive-closure size if the partitioner tracked it (paper §4.3).
    pub tc_size: Option<u64>,
}

/// A partitioning of a collection: disjoint partitions plus the
/// cross-partition links `L_P`.
#[derive(Clone, Debug, Default)]
pub struct Partitioning {
    /// The partitions `P_1 .. P_m`.
    pub partitions: Vec<Partition>,
    /// `part_of[doc] = partition index` (`u32::MAX` for dead docs).
    pub part_of: Vec<u32>,
    /// Cross-partition links `L_P`.
    pub cross_links: Vec<Link>,
}

impl Partitioning {
    /// Builds a partitioning from a document → partition assignment,
    /// computing node weights and `L_P`.
    pub fn from_assignment(
        collection: &Collection,
        num_partitions: usize,
        part_of: Vec<u32>,
    ) -> Self {
        let mut partitions = vec![Partition::default(); num_partitions];
        for d in collection.doc_ids() {
            let p = part_of[d as usize];
            assert!(
                (p as usize) < num_partitions,
                "document {d} unassigned (partition {p})"
            );
            partitions[p as usize].docs.push(d);
            partitions[p as usize].node_weight += collection.doc_weight(d) as u64;
        }
        let mut cross_links = Vec::new();
        for &l in collection.links() {
            let fd = collection.doc_of(l.from).expect("live link source");
            let td = collection.doc_of(l.to).expect("live link target");
            if part_of[fd as usize] != part_of[td as usize] {
                cross_links.push(l);
            }
        }
        Partitioning {
            partitions,
            part_of,
            cross_links,
        }
    }

    /// The trivial partitioning: every document in one partition
    /// (`L_P = ∅`). Used by the flat (no-partition) baseline build.
    pub fn single_partition(collection: &Collection) -> Self {
        let mut part_of = vec![u32::MAX; collection.doc_id_bound()];
        for d in collection.doc_ids() {
            part_of[d as usize] = 0;
        }
        Self::from_assignment(collection, 1, part_of)
    }

    /// The "naive"/`single` configuration of Table 2: each document forms
    /// its own partition, so every inter-document link is a cross link.
    pub fn per_document(collection: &Collection) -> Self {
        let mut part_of = vec![u32::MAX; collection.doc_id_bound()];
        let mut next = 0u32;
        for d in collection.doc_ids() {
            part_of[d as usize] = next;
            next += 1;
        }
        Self::from_assignment(collection, next as usize, part_of)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partition map `part(doc)`.
    pub fn partition_of_doc(&self, d: DocId) -> Option<u32> {
        let p = *self.part_of.get(d as usize)?;
        (p != u32::MAX).then_some(p)
    }

    /// The partition an element belongs to.
    pub fn partition_of_elem(&self, collection: &Collection, e: ElemId) -> Option<u32> {
        self.partition_of_doc(collection.doc_of(e)?)
    }

    /// Materializes the element-level graph of partition `p` with **local**
    /// dense node ids. Returns the graph, the local → global id map, and the
    /// global → local map. The graph contains the partition's tree edges,
    /// intra-document links, and intra-partition inter-document links `L_i`.
    pub fn partition_element_graph(
        &self,
        collection: &Collection,
        p: u32,
    ) -> (DiGraph, Vec<ElemId>, FxHashMap<ElemId, u32>) {
        let part = &self.partitions[p as usize];
        let mut local_to_global: Vec<ElemId> = Vec::new();
        let mut global_to_local: FxHashMap<ElemId, u32> = FxHashMap::default();
        for &d in &part.docs {
            let doc = collection.document(d).expect("live doc in partition");
            for (local, _) in doc.elements() {
                let g = collection.global_id(d, local);
                global_to_local.insert(g, local_to_global.len() as u32);
                local_to_global.push(g);
            }
        }
        let mut graph = DiGraph::with_nodes(local_to_global.len());
        for &d in &part.docs {
            let doc = collection.document(d).expect("live doc");
            let base = collection.global_id(d, 0);
            for (pa, ch) in doc.tree_edges() {
                graph.add_edge(global_to_local[&(base + pa)], global_to_local[&(base + ch)]);
            }
            for &(f, t) in doc.intra_links() {
                graph.add_edge(global_to_local[&(base + f)], global_to_local[&(base + t)]);
            }
        }
        // Intra-partition inter-document links L_i.
        for &l in collection.links() {
            if let (Some(&lf), Some(&lt)) =
                (global_to_local.get(&l.from), global_to_local.get(&l.to))
            {
                graph.add_edge(lf, lt);
            }
        }
        (graph, local_to_global, global_to_local)
    }

    /// Checks partitioning invariants: disjoint cover of live documents,
    /// `L_P` exactly the links crossing partitions.
    pub fn check_invariants(&self, collection: &Collection) {
        let mut seen = vec![false; collection.doc_id_bound()];
        for (pi, p) in self.partitions.iter().enumerate() {
            for &d in &p.docs {
                assert!(!seen[d as usize], "doc {d} in two partitions");
                seen[d as usize] = true;
                assert_eq!(self.part_of[d as usize], pi as u32, "part_of mismatch");
            }
        }
        for d in collection.doc_ids() {
            assert!(seen[d as usize], "doc {d} not covered");
        }
        let crossing: Vec<Link> = collection
            .links()
            .iter()
            .copied()
            .filter(|l| {
                let fd = collection.doc_of(l.from).unwrap();
                let td = collection.doc_of(l.to).unwrap();
                self.part_of[fd as usize] != self.part_of[td as usize]
            })
            .collect();
        assert_eq!(crossing.len(), self.cross_links.len(), "L_P size mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::generator::{random_collection, RandomConfig};
    use hopi_xml::XmlDocument;

    fn three_doc_collection() -> Collection {
        let mut c = Collection::new();
        for name in ["a", "b", "c"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "x");
            c.add_document(d);
        }
        // a -> b, b -> c
        c.add_link(c.global_id(0, 1), c.global_id(1, 0));
        c.add_link(c.global_id(1, 1), c.global_id(2, 0));
        c
    }

    #[test]
    fn from_assignment_collects_cross_links() {
        let c = three_doc_collection();
        // {a,b} | {c}
        let p = Partitioning::from_assignment(&c, 2, vec![0, 0, 1]);
        p.check_invariants(&c);
        assert_eq!(p.len(), 2);
        assert_eq!(p.partitions[0].docs, vec![0, 1]);
        assert_eq!(p.cross_links.len(), 1);
        assert_eq!(p.partition_of_doc(2), Some(1));
    }

    #[test]
    fn single_partition_has_no_cross_links() {
        let c = three_doc_collection();
        let p = Partitioning::single_partition(&c);
        p.check_invariants(&c);
        assert_eq!(p.len(), 1);
        assert!(p.cross_links.is_empty());
        assert_eq!(p.partitions[0].node_weight, 6);
    }

    #[test]
    fn per_document_crosses_all_links() {
        let c = three_doc_collection();
        let p = Partitioning::per_document(&c);
        p.check_invariants(&c);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cross_links.len(), 2);
    }

    #[test]
    fn partition_element_graph_local_ids() {
        let c = three_doc_collection();
        let p = Partitioning::from_assignment(&c, 2, vec![0, 0, 1]);
        let (g, l2g, g2l) = p.partition_element_graph(&c, 0);
        assert_eq!(g.node_count(), 4); // docs a,b with 2 elements each
        assert_eq!(l2g.len(), 4);
        // Tree edges locally: a: 0->1, b: 2->3; plus intra-partition link
        // a/x(1) -> b/root(2).
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 3);
        for (local, &global) in l2g.iter().enumerate() {
            assert_eq!(g2l[&global], local as u32);
        }
        // Partition 1 sees only doc c's tree.
        let (g1, l2g1, _) = p.partition_element_graph(&c, 1);
        assert_eq!(g1.node_count(), 2);
        assert_eq!(g1.edge_count(), 1);
        assert_eq!(l2g1, vec![c.global_id(2, 0), c.global_id(2, 1)]);
    }

    #[test]
    fn partition_of_elem_follows_doc() {
        let c = three_doc_collection();
        let p = Partitioning::from_assignment(&c, 2, vec![0, 0, 1]);
        assert_eq!(p.partition_of_elem(&c, c.global_id(0, 1)), Some(0));
        assert_eq!(p.partition_of_elem(&c, c.global_id(2, 0)), Some(1));
    }

    #[test]
    fn random_collection_roundtrip() {
        let c = random_collection(&RandomConfig::default());
        let p = Partitioning::per_document(&c);
        p.check_invariants(&c);
        // Element graphs of all partitions together hold all tree edges.
        let total_edges: usize = (0..p.len() as u32)
            .map(|i| p.partition_element_graph(&c, i).0.edge_count())
            .sum();
        let cross = p.cross_links.len();
        assert_eq!(total_edges + cross, c.element_graph().edge_count());
    }
}
