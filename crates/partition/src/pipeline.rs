//! The partitioned HOPI build pipeline (paper §3.3 and §4).
//!
//! Construction proceeds in three stages:
//!
//! 1. **Partition** the document-level graph with one of the
//!    [`PartitionerChoice`] strategies (no partitioning, per-document, the
//!    node-capped partitioner of [26], or the closure-budget partitioner of
//!    §4.3).
//! 2. **Cover each partition**: materialize the partition's element graph,
//!    compute its transitive closure, and run the greedy 2-hop cover
//!    builder — optionally preselecting cross-partition link targets as
//!    centers (§4.2). Partitions are processed concurrently (the paper
//!    computes partition covers independently); covers are merged into the
//!    global cover in partition order, so the result is identical for any
//!    worker count.
//! 3. **Join the covers** across the cross-partition links `L_P`, either
//!    incrementally one link at a time (§3.3, [`JoinAlgorithm::Incremental`])
//!    or with the partition-skeleton-graph batch join of §4.1
//!    ([`JoinAlgorithm::Psg`]).

use crate::old_partitioner;
use crate::partitioning::Partitioning;
use crate::psg::PartitionSkeletonGraph;
use crate::tc_partitioner;
use crate::{OldPartitionerConfig, TcPartitionerConfig};
use hopi_core::{old_join, CoverBuilder, HopiIndex, TwoHopCover};
use hopi_graph::{traversal, FixedBitSet, TransitiveClosure};
use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Which partitioner splits the document-level graph.
#[derive(Clone, Debug)]
pub enum PartitionerChoice {
    /// No partitioning: one partition holding the whole collection (the
    /// paper's §7.2 baseline — smallest covers, slowest builds).
    Flat,
    /// One partition per document (the `single` configuration of Table 2).
    PerDocument,
    /// The original node-count-capped partitioner of [26] (`Px` rows).
    Old(OldPartitionerConfig),
    /// The closure-budget partitioner of §4.3 (`Nx` rows).
    Tc(TcPartitionerConfig),
}

/// How per-partition covers are joined across cross-partition links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// §3.3: integrate `L_P` one link at a time into the merged cover.
    Incremental,
    /// §4.1: batch join over the partition skeleton graph.
    Psg,
}

/// Configuration of one index build.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// Document-graph partitioner.
    pub partitioner: PartitionerChoice,
    /// Cover-join algorithm.
    pub join: JoinAlgorithm,
    /// Preselect cross-partition link targets as centers inside each
    /// partition cover (paper §4.2).
    pub preselect_link_targets: bool,
    /// PSG-join recursion threshold: above this many PSG nodes, skeleton
    /// reachability rows are computed by per-node BFS instead of the
    /// SCC-condensation closure algorithm (slower, but without the
    /// condensation's transient per-component state). The produced cover
    /// is identical either way.
    pub psg_direct_threshold: usize,
    /// Worker threads for per-partition cover construction (`0` = one per
    /// available CPU). The built cover is independent of this value.
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            // The paper's best configuration: closure-budget partitioner
            // (§4.3) + PSG join (§4.1).
            partitioner: PartitionerChoice::Tc(TcPartitionerConfig::default()),
            join: JoinAlgorithm::Psg,
            preselect_link_targets: false,
            psg_direct_threshold: usize::MAX,
            threads: 0,
        }
    }
}

/// Shape of the PSG join of one build.
#[derive(Clone, Debug, Default)]
pub struct PsgJoinReport {
    /// PSG nodes (distinct cross-link endpoints).
    pub nodes: usize,
    /// PSG edges (cross links + intra-partition connection edges).
    pub edges: usize,
    /// Reachability chunks processed (1 = direct, single closure).
    pub chunks: usize,
}

/// Statistics of one index build.
#[derive(Clone, Debug, Default)]
pub struct BuildReport {
    /// Number of partitions.
    pub partitions: usize,
    /// Cross-partition links `|L_P|`.
    pub cross_links: usize,
    /// Final cover size `|L|` (stored label entries).
    pub cover_size: usize,
    /// Label entries added by the cover join.
    pub join_entries: usize,
    /// Milliseconds spent partitioning the collection graph.
    pub partition_ms: u64,
    /// Milliseconds spent building per-partition covers.
    pub covers_ms: u64,
    /// Milliseconds spent joining covers.
    pub join_ms: u64,
    /// Total build milliseconds.
    pub total_ms: u64,
    /// PSG-join shape, when the PSG join ran.
    pub psg: Option<PsgJoinReport>,
}

impl BuildReport {
    /// Compression ratio versus a materialized transitive closure with
    /// `closure_connections` connections (the paper's headline metric).
    pub fn compression_vs(&self, closure_connections: u64) -> f64 {
        closure_connections as f64 / self.cover_size.max(1) as f64
    }
}

/// Builds the HOPI index for a collection (paper §3.3 / §4).
pub fn build_index(collection: &Collection, config: &BuildConfig) -> (HopiIndex, BuildReport) {
    let t_total = Instant::now();
    let partitioning = match &config.partitioner {
        PartitionerChoice::Flat => Partitioning::single_partition(collection),
        PartitionerChoice::PerDocument => Partitioning::per_document(collection),
        PartitionerChoice::Old(cfg) => old_partitioner::partition(collection, cfg),
        PartitionerChoice::Tc(cfg) => tc_partitioner::partition(collection, cfg),
    };
    let partition_ms = t_total.elapsed().as_millis() as u64;

    // Cross-link targets per partition, for §4.2 center preselection.
    let mut preselect: FxHashMap<u32, Vec<ElemId>> = FxHashMap::default();
    if config.preselect_link_targets {
        for l in &partitioning.cross_links {
            if let Some(p) = partitioning.partition_of_elem(collection, l.to) {
                preselect.entry(p).or_default().push(l.to);
            }
        }
    }

    let t_covers = Instant::now();
    let partition_covers = build_partition_covers(collection, &partitioning, &preselect, config);
    let mut cover = TwoHopCover::new();
    if collection.elem_id_bound() > 0 {
        cover.ensure_node(collection.elem_id_bound() as u32 - 1);
    }
    for (local_cover, map) in &partition_covers {
        cover.merge_remapped(local_cover, map);
    }
    let covers_ms = t_covers.elapsed().as_millis() as u64;

    let t_join = Instant::now();
    let mut join_entries = 0usize;
    let mut psg_report = None;
    if !partitioning.cross_links.is_empty() {
        match config.join {
            JoinAlgorithm::Incremental => {
                for l in &partitioning.cross_links {
                    join_entries += old_join::integrate_link(&mut cover, l.from, l.to);
                }
            }
            JoinAlgorithm::Psg => {
                let (entries, report) = psg_join(
                    collection,
                    &partitioning,
                    &mut cover,
                    config.psg_direct_threshold,
                );
                join_entries = entries;
                psg_report = Some(report);
            }
        }
    }
    let join_ms = t_join.elapsed().as_millis() as u64;

    let report = BuildReport {
        partitions: partitioning.len(),
        cross_links: partitioning.cross_links.len(),
        cover_size: cover.size(),
        join_entries,
        partition_ms,
        covers_ms,
        join_ms,
        total_ms: t_total.elapsed().as_millis() as u64,
        psg: psg_report,
    };
    (HopiIndex::from_cover(cover), report)
}

/// One partition's cover plus its local → global id map.
type PartitionCover = (TwoHopCover, Vec<ElemId>);

/// Computes all per-partition covers (possibly concurrently) together with
/// their local → global id maps, in partition order.
fn build_partition_covers(
    collection: &Collection,
    partitioning: &Partitioning,
    preselect: &FxHashMap<u32, Vec<ElemId>>,
    config: &BuildConfig,
) -> Vec<PartitionCover> {
    let m = partitioning.len();
    let workers = match config.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(m.max(1));

    let build_one = |p: usize| -> PartitionCover {
        let (graph, local_to_global, global_to_local) =
            partitioning.partition_element_graph(collection, p as u32);
        let tc = TransitiveClosure::from_graph(&graph);
        let builder = CoverBuilder::new(&tc);
        let cover = match preselect.get(&(p as u32)) {
            Some(targets) => {
                let locals: Vec<u32> = targets
                    .iter()
                    .filter_map(|t| global_to_local.get(t).copied())
                    .collect();
                builder.build_with_preselected(&locals).0
            }
            None => builder.build(),
        };
        (cover, local_to_global)
    };

    if workers <= 1 || m <= 1 {
        return (0..m).map(build_one).collect();
    }

    // Work-stealing over partition indices; results land in their slot, so
    // the merged cover is independent of scheduling.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<PartitionCover>>> =
        (0..m).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let p = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if p >= m {
                    break;
                }
                let built = build_one(p);
                *slots[p].lock().expect("result slot") = Some(built);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("partition built")
        })
        .collect()
}

/// The §4.1 batch join: computes the transitive closure `H̄` of the
/// partition skeleton graph `S(P)` (whose nodes are just the cross-link
/// endpoints), builds a 2-hop cover *of the skeleton*, and lifts its labels
/// into the global cover — every skeleton label `w ∈ L̄out(x)` fans out to
/// the intra-partition ancestors of `x`, every `w ∈ L̄in(y)` to the
/// intra-partition descendants of `y`. Compressing the skeleton first is
/// what keeps the join's output near the size of a fresh flat cover
/// instead of materializing per-link reachability sets.
///
/// Correctness: a cross-partition connection `u →* v` decomposes as
/// `u →* s` (intra-partition, `s` a link source), `s →̄* t` (skeleton), and
/// `t →* v` (intra-partition). The skeleton cover witnesses `s →̄* t` with
/// some center `w` — stored, or one of the implicit self labels, which the
/// lift materializes by augmenting `L̄out(x)`/`L̄in(x)` with `x` itself — so
/// `w` lands in `Lout(u)` and `Lin(v)`.
fn psg_join(
    collection: &Collection,
    partitioning: &Partitioning,
    cover: &mut TwoHopCover,
    direct_threshold: usize,
) -> (usize, PsgJoinReport) {
    // All skeleton inputs are computed against the pre-join cover, which is
    // exact for intra-partition connections and empty across partitions.
    let psg = PartitionSkeletonGraph::build(collection, partitioning, |_, from, to| {
        cover.connected(from, to)
    });
    let n = psg.len();

    // Intra-partition ancestor/descendant sets of every skeleton node.
    let anc_of: Vec<Vec<ElemId>> = psg.nodes.iter().map(|&e| cover.ancestors(e)).collect();
    let desc_of: Vec<Vec<ElemId>> = psg.nodes.iter().map(|&e| cover.descendants(e)).collect();

    // Skeleton closure H̄. Below the threshold it is computed with the
    // SCC-condensation closure algorithm (fastest, but its per-component
    // row unioning holds extra transient state); above it, rows come from
    // plain per-node BFS — slower, no transient duplication, identical
    // rows either way (the `ablations` binary asserts the covers match).
    // The final row table is needed in full by the skeleton cover builder,
    // so `chunks` reports BFS batches, not peak row storage.
    let (skeleton_tc, chunks) = if n <= direct_threshold {
        (TransitiveClosure::from_graph(&psg.graph), 1)
    } else {
        let rows: Vec<FixedBitSet> = (0..n as u32)
            .map(|x| traversal::reachable_from(&psg.graph, x))
            .collect();
        (
            TransitiveClosure::from_desc_rows(rows, vec![true; n]),
            n.div_ceil(direct_threshold.max(1)),
        )
    };

    // The 2-hop cover of the skeleton, then the lift. Stored labels fan
    // out to the intra-partition ancestor/descendant sets; the skeleton
    // cover's *implicit self labels* are materialized only for nodes that
    // actually serve as centers (a connection witnessed as `y ∈ L̄out(x)`
    // needs `y` present on the Lin side too, and vice versa). Connections
    // whose source and target skeleton node coincide are already covered
    // by that partition's own cover and need no join entries at all.
    let skeleton_cover = CoverBuilder::new(&skeleton_tc).build();
    let mut entries = 0usize;
    for x in 0..n as u32 {
        for &w in skeleton_cover.lout(x) {
            let w_global = psg.nodes[w as usize];
            for &a in &anc_of[x as usize] {
                entries += usize::from(cover.add_out(a, w_global));
            }
        }
        for &w in skeleton_cover.lin(x) {
            let w_global = psg.nodes[w as usize];
            for &d in &desc_of[x as usize] {
                entries += usize::from(cover.add_in(d, w_global));
            }
        }
        let x_global = psg.nodes[x as usize];
        if !skeleton_cover.holders_in(x).is_empty() {
            // `x` witnesses connections as an Lin center: complete its
            // implicit `x ∈ L̄out(x)` side.
            for &a in &anc_of[x as usize] {
                entries += usize::from(cover.add_out(a, x_global));
            }
        }
        if !skeleton_cover.holders_out(x).is_empty() {
            // Symmetric completion of the implicit `x ∈ L̄in(x)`.
            for &d in &desc_of[x as usize] {
                entries += usize::from(cover.add_in(d, x_global));
            }
        }
    }

    let report = PsgJoinReport {
        nodes: n,
        edges: psg.graph.edge_count(),
        chunks,
    };
    (entries, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::XmlDocument;

    fn linked_collection() -> Collection {
        let mut c = Collection::new();
        for name in ["a", "b", "c"] {
            let mut d = XmlDocument::new(name, "r");
            d.add_element(0, "s");
            d.add_element(0, "t");
            c.add_document(d);
        }
        // a/s -> b, b/t -> c, c/s -> a (a cycle through all documents).
        c.add_link(c.global_id(0, 1), c.global_id(1, 0));
        c.add_link(c.global_id(1, 2), c.global_id(2, 0));
        c.add_link(c.global_id(2, 1), c.global_id(0, 0));
        c
    }

    fn assert_exact(c: &Collection, index: &HopiIndex) {
        let g = c.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        for u in 0..g.id_bound() as u32 {
            for v in 0..g.id_bound() as u32 {
                assert_eq!(index.connected(u, v), tc.contains(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn all_configurations_exact() {
        let c = linked_collection();
        for partitioner in [
            PartitionerChoice::Flat,
            PartitionerChoice::PerDocument,
            PartitionerChoice::Old(OldPartitionerConfig::default()),
            PartitionerChoice::Tc(TcPartitionerConfig {
                max_connections_per_partition: 16,
                ..Default::default()
            }),
        ] {
            for join in [JoinAlgorithm::Incremental, JoinAlgorithm::Psg] {
                let (index, report) = build_index(
                    &c,
                    &BuildConfig {
                        partitioner: partitioner.clone(),
                        join,
                        ..Default::default()
                    },
                );
                assert_exact(&c, &index);
                assert_eq!(report.cover_size, index.size());
                index.cover().check_invariants();
            }
        }
    }

    #[test]
    fn flat_build_has_no_join() {
        let c = linked_collection();
        let (index, report) = build_index(
            &c,
            &BuildConfig {
                partitioner: PartitionerChoice::Flat,
                ..Default::default()
            },
        );
        assert_eq!(report.partitions, 1);
        assert_eq!(report.cross_links, 0);
        assert_eq!(report.join_entries, 0);
        assert!(report.psg.is_none());
        assert_exact(&c, &index);
    }

    #[test]
    fn chunked_psg_join_matches_direct() {
        let c = linked_collection();
        let base = BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            join: JoinAlgorithm::Psg,
            ..Default::default()
        };
        let (direct, dr) = build_index(&c, &base);
        assert_eq!(dr.psg.as_ref().map(|p| p.chunks), Some(1));
        for threshold in [4, 2, 1] {
            let (chunked, cr) = build_index(
                &c,
                &BuildConfig {
                    psg_direct_threshold: threshold,
                    ..base.clone()
                },
            );
            assert!(cr.psg.as_ref().is_some_and(|p| p.chunks >= 1));
            assert_eq!(chunked.size(), direct.size(), "threshold {threshold}");
            let n = c.elem_id_bound() as u32;
            for u in 0..n {
                assert_eq!(chunked.cover().lin(u), direct.cover().lin(u));
                assert_eq!(chunked.cover().lout(u), direct.cover().lout(u));
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_cover() {
        let c = linked_collection();
        let base = BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            threads: 1,
            ..Default::default()
        };
        let (one, _) = build_index(&c, &base);
        let (four, _) = build_index(&c, &BuildConfig { threads: 4, ..base });
        assert_eq!(one.size(), four.size());
        let n = c.elem_id_bound() as u32;
        for u in 0..n {
            assert_eq!(one.cover().lin(u), four.cover().lin(u));
            assert_eq!(one.cover().lout(u), four.cover().lout(u));
        }
    }

    #[test]
    fn preselection_stays_exact() {
        let c = linked_collection();
        let (index, _) = build_index(
            &c,
            &BuildConfig {
                partitioner: PartitionerChoice::PerDocument,
                preselect_link_targets: true,
                ..Default::default()
            },
        );
        assert_exact(&c, &index);
    }

    #[test]
    fn empty_collection_builds() {
        let c = Collection::new();
        let (index, report) = build_index(&c, &BuildConfig::default());
        assert_eq!(index.size(), 0);
        assert_eq!(report.cover_size, 0);
    }

    #[test]
    fn compression_reported() {
        let c = linked_collection();
        let g = c.element_graph();
        let connections = TransitiveClosure::from_graph(&g).connection_count() as u64;
        let (_, report) = build_index(&c, &BuildConfig::default());
        assert!(report.compression_vs(connections) > 0.0);
    }
}
