//! The skeleton graph `S(X)` (paper §4.3, Definition 2).
//!
//! Nodes are the sources and targets of links in `L(X)`; edges are the links
//! plus, for every link target `v`, an edge to every link source `x` in the
//! same document with `v →* x` in the element-level **tree** of the
//! document. Each node is annotated with its tree ancestor count `anc(x)`
//! and descendant count `desc(x)`; a bounded breadth-first traversal then
//! approximates the *global* ancestor/descendant counts `A(x)`, `D(x)` that
//! the connection-count edge weights `A·D` and `A+D` are built from.

use hopi_graph::{traversal, DiGraph};
use hopi_xml::{Collection, ElemId};
use rustc_hash::FxHashMap;

/// The skeleton graph with annotations.
pub struct SkeletonGraph {
    /// Node ids (global element ids) in compact order.
    pub nodes: Vec<ElemId>,
    /// Global element id → compact skeleton index.
    pub index: FxHashMap<ElemId, u32>,
    /// The graph over compact indices.
    pub graph: DiGraph,
    /// Whether a node is a link source.
    pub is_source: Vec<bool>,
    /// Whether a node is a link target.
    pub is_target: Vec<bool>,
    /// Tree-local ancestor counts `anc(x)`.
    pub anc: Vec<u32>,
    /// Tree-local descendant counts `desc(x)`.
    pub desc: Vec<u32>,
    /// Which compact edges correspond to actual links (vs intra-document
    /// target→source connection edges): `(from_idx, to_idx)` pairs.
    pub link_edges: Vec<(u32, u32)>,
}

impl SkeletonGraph {
    /// Builds `S(X)` for a collection. Considers inter-document links *and*
    /// intra-document links as `L(X)` (paper: `L(X) := L ∪ ⋃_d L_I(d)`).
    pub fn build(collection: &Collection) -> Self {
        let all_links = collection.all_links();
        let mut nodes: Vec<ElemId> = Vec::new();
        let mut index: FxHashMap<ElemId, u32> = FxHashMap::default();
        let mut is_source: Vec<bool> = Vec::new();
        let mut is_target: Vec<bool> = Vec::new();
        let mut intern = |e: ElemId,
                          nodes: &mut Vec<ElemId>,
                          is_source: &mut Vec<bool>,
                          is_target: &mut Vec<bool>|
         -> u32 {
            *index.entry(e).or_insert_with(|| {
                nodes.push(e);
                is_source.push(false);
                is_target.push(false);
                nodes.len() as u32 - 1
            })
        };
        let mut graph = DiGraph::new();
        let mut link_edges = Vec::new();
        for l in &all_links {
            let f = intern(l.from, &mut nodes, &mut is_source, &mut is_target);
            let t = intern(l.to, &mut nodes, &mut is_source, &mut is_target);
            is_source[f as usize] = true;
            is_target[t as usize] = true;
            graph.ensure_node(f.max(t));
            graph.add_edge(f, t);
            link_edges.push((f, t));
        }
        if !nodes.is_empty() {
            graph.ensure_node(nodes.len() as u32 - 1);
        }

        // Tree annotations.
        let mut anc = vec![0u32; nodes.len()];
        let mut desc = vec![0u32; nodes.len()];
        for (i, &e) in nodes.iter().enumerate() {
            let (d, local) = collection.to_local(e).expect("live skeleton node");
            let doc = collection.document(d).expect("live doc");
            anc[i] = doc.tree_ancestor_count(local);
            desc[i] = doc.tree_descendant_count(local);
        }

        // Intra-document connection edges: target v → source x when v is a
        // tree ancestor of x (v →* x in T_E(doc)).
        // Group skeleton nodes per document for the pairing.
        let mut per_doc: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (i, &e) in nodes.iter().enumerate() {
            let d = collection.doc_of(e).expect("live node");
            per_doc.entry(d).or_default().push(i as u32);
        }
        for (d, members) in &per_doc {
            let doc = collection.document(*d).expect("live doc");
            let base = collection.global_id(*d, 0);
            for &vi in members {
                if !is_target[vi as usize] {
                    continue;
                }
                let v_local = nodes[vi as usize] - base;
                for &xi in members {
                    if xi == vi || !is_source[xi as usize] {
                        continue;
                    }
                    let x_local = nodes[xi as usize] - base;
                    if is_tree_ancestor(doc, v_local, x_local) {
                        graph.add_edge(vi, xi);
                    }
                }
            }
        }
        SkeletonGraph {
            nodes,
            index,
            graph,
            is_source,
            is_target,
            anc,
            desc,
            link_edges,
        }
    }

    /// Approximates global descendant counts `D(x)` by a bounded forward
    /// BFS: whenever the traversal from `x` crosses into a node `v`, `D(x)`
    /// grows by `desc(v)` (paper §4.3; "the computation is limited to paths
    /// of a certain length, hence the resulting numbers are only
    /// approximates").
    pub fn approx_descendant_counts(&self, max_depth: u32) -> Vec<u64> {
        let n = self.nodes.len();
        let mut out = vec![0u64; n];
        for x in 0..n as u32 {
            let mut total = self.desc[x as usize] as u64;
            traversal::bounded_bfs(&self.graph, x, max_depth, |node, depth| {
                if depth > 0 {
                    total += self.desc[node as usize] as u64;
                }
            });
            out[x as usize] = total;
        }
        out
    }

    /// Approximates global ancestor counts `A(x)` by a bounded backward BFS.
    pub fn approx_ancestor_counts(&self, max_depth: u32) -> Vec<u64> {
        let n = self.nodes.len();
        let rev = self.graph.reversed();
        let mut out = vec![0u64; n];
        for x in 0..n as u32 {
            let mut total = self.anc[x as usize] as u64;
            traversal::bounded_bfs(&rev, x, max_depth, |node, depth| {
                if depth > 0 {
                    total += self.anc[node as usize] as u64;
                }
            });
            out[x as usize] = total;
        }
        out
    }
}

/// Is `a` an ancestor of `x` (or equal) in the document tree?
fn is_tree_ancestor(doc: &hopi_xml::XmlDocument, a: u32, x: u32) -> bool {
    let mut cur = Some(x);
    while let Some(c) = cur {
        if c == a {
            return true;
        }
        cur = doc.element(c).parent;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_xml::XmlDocument;

    /// Three documents: d2/x links to d0/mid (making mid a link target that
    /// sits *above* the link source d0/src in d0's tree), and d0/src links
    /// to d1's root.
    fn collection() -> Collection {
        let mut c = Collection::new();
        let mut d0 = XmlDocument::new("d0", "r"); // global 0
        let mid = d0.add_element(0, "mid"); // global 1
        let s = d0.add_element(mid, "src"); // global 2
        let _ = s;
        c.add_document(d0);
        let mut d1 = XmlDocument::new("d1", "r"); // global 3
        let leaf = d1.add_element(0, "leaf"); // global 4
        let _ = leaf;
        c.add_document(d1);
        // external -> d0/mid so that d0/mid is a target above source d0/src.
        let mut d2 = XmlDocument::new("d2", "r"); // global 5
        d2.add_element(0, "x"); // global 6
        c.add_document(d2);
        c.add_link(6, 1); // d2/x -> d0/mid
        c.add_link(2, 3); // d0/src -> d1/root
        c
    }

    #[test]
    fn skeleton_nodes_are_link_endpoints() {
        let c = collection();
        let sk = SkeletonGraph::build(&c);
        let mut ns = sk.nodes.clone();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2, 3, 6]);
        assert_eq!(sk.link_edges.len(), 2);
    }

    #[test]
    fn target_to_source_connection_edge() {
        let c = collection();
        let sk = SkeletonGraph::build(&c);
        // d0/mid (target, global 1) is tree ancestor of d0/src (source,
        // global 2) → edge mid→src in the skeleton.
        let mid = sk.index[&1];
        let src = sk.index[&2];
        assert!(sk.graph.has_edge(mid, src));
        // Therefore d2/x reaches d1/root in the skeleton transitively.
        let x = sk.index[&6];
        let d1root = sk.index[&3];
        assert!(hopi_graph::traversal::is_reachable(&sk.graph, x, d1root));
    }

    #[test]
    fn annotations_match_trees() {
        let c = collection();
        let sk = SkeletonGraph::build(&c);
        let mid = sk.index[&1] as usize;
        assert_eq!(sk.anc[mid], 1); // root above it
        assert_eq!(sk.desc[mid], 1); // src below it
        let d1root = sk.index[&3] as usize;
        assert_eq!(sk.anc[d1root], 0);
        assert_eq!(sk.desc[d1root], 1);
    }

    #[test]
    fn approx_counts_accumulate_over_links() {
        let c = collection();
        let sk = SkeletonGraph::build(&c);
        let d = sk.approx_descendant_counts(4);
        let a = sk.approx_ancestor_counts(4);
        let x = sk.index[&6] as usize;
        // From d2/x: desc(x)=0, reaches mid (desc 1), src (desc 0),
        // d1/root (desc 1) → D ≈ 2.
        assert_eq!(d[x], 2);
        let d1root = sk.index[&3] as usize;
        // Ancestors of d1/root: src (anc 2: root+mid), mid (anc 1),
        // x (anc 1) → A ≈ 4.
        assert_eq!(a[d1root], 4);
    }

    #[test]
    fn bounded_depth_truncates() {
        let c = collection();
        let sk = SkeletonGraph::build(&c);
        let d0 = sk.approx_descendant_counts(0);
        let x = sk.index[&6] as usize;
        assert_eq!(d0[x], 0, "depth 0 sees only the node's own tree");
        let d1 = sk.approx_descendant_counts(1);
        assert_eq!(d1[x], 1, "depth 1 reaches mid only");
    }

    #[test]
    fn intra_links_count_as_skeleton_links() {
        let mut c = Collection::new();
        let mut d = XmlDocument::new("d", "r");
        let a = d.add_element(0, "a");
        let b = d.add_element(0, "b");
        d.add_intra_link(a, b);
        c.add_document(d);
        let sk = SkeletonGraph::build(&c);
        assert_eq!(sk.nodes.len(), 2);
        assert_eq!(sk.link_edges.len(), 1);
    }
}
