//! Criterion microbenches for query latency: the reachability test
//! (the paper's `LIN ⋈ LOUT` intersection), ancestor/descendant
//! enumeration, and the distance query — against both the in-memory cover
//! and the LIN/LOUT store.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hopi_bench::dblp_collection;
use hopi_build::{build_index, BuildConfig};
use hopi_core::DistanceCoverBuilder;
use hopi_graph::DistanceClosure;
use hopi_store::LinLoutStore;
use rand::prelude::*;
use rand::rngs::StdRng;

fn bench_queries(c: &mut Criterion) {
    let collection = dblp_collection(0.02);
    let (index, _) = build_index(&collection, &BuildConfig::default());
    let store = LinLoutStore::from_cover(index.cover());
    let n = collection.elem_id_bound() as u32;
    let mut rng = StdRng::seed_from_u64(7);
    let pairs: Vec<(u32, u32)> = (0..1024)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    let mut group = c.benchmark_group("queries");
    let mut i = 0usize;
    group.bench_function("cover_connected", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let (u, v) = pairs[i];
            std::hint::black_box(index.connected(u, v))
        })
    });
    group.bench_function("store_connected", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let (u, v) = pairs[i];
            std::hint::black_box(store.connected(u, v))
        })
    });
    group.bench_function("cover_descendants", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            std::hint::black_box(index.descendants(pairs[i].0).len())
        })
    });
    group.bench_function("store_descendants", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            std::hint::black_box(store.descendants(pairs[i].0).len())
        })
    });
    group.bench_function("cover_ancestors", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            std::hint::black_box(index.ancestors(pairs[i].1).len())
        })
    });
    group.finish();

    // Distance queries on a smaller collection (the distance closure is the
    // expensive part, not the query).
    let small = dblp_collection(0.005);
    let dc = DistanceClosure::from_graph(&small.element_graph());
    let dist_cover = DistanceCoverBuilder::new(&dc).build();
    let dist_store = LinLoutStore::from_distance_cover(&dist_cover);
    let m = small.elem_id_bound() as u32;
    let dpairs: Vec<(u32, u32)> = (0..1024)
        .map(|_| (rng.gen_range(0..m), rng.gen_range(0..m)))
        .collect();
    let mut group = c.benchmark_group("distance_queries");
    group.bench_function("cover_distance", |b| {
        b.iter(|| {
            i = (i + 1) % dpairs.len();
            let (u, v) = dpairs[i];
            std::hint::black_box(dist_cover.distance(u, v))
        })
    });
    group.bench_function("store_distance_min_join", |b| {
        b.iter(|| {
            i = (i + 1) % dpairs.len();
            let (u, v) = dpairs[i];
            std::hint::black_box(dist_store.distance(u, v))
        })
    });
    group.finish();

    // Baseline for context: BFS reachability without the index.
    let graph = collection.element_graph();
    let mut group = c.benchmark_group("no_index_baseline");
    group.bench_function("bfs_is_reachable", |b| {
        b.iter_batched(
            || {
                i = (i + 1) % pairs.len();
                pairs[i]
            },
            |(u, v)| std::hint::black_box(hopi_graph::traversal::is_reachable(&graph, u, v)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
