//! Criterion microbenches for the algorithmic kernels behind index
//! construction and maintenance: densest-subgraph peeling, transitive
//! closure materialization, incremental closure edge insertion, the
//! separator test, and single-link cover integration.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hopi_bench::dblp_collection;
use hopi_build::{build_index, old_join, BuildConfig};
use hopi_core::densest::{densest_subgraph, BipartiteCenterGraph};
use hopi_graph::{FixedBitSet, TransitiveClosure};
use hopi_maintenance::separates;
use rand::prelude::*;
use rand::rngs::StdRng;

fn center_graph(nl: usize, nr: usize, density: f64, seed: u64) -> BipartiteCenterGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj = vec![FixedBitSet::new(nr); nl];
    for row in adj.iter_mut() {
        for j in 0..nr as u32 {
            if rng.gen_bool(density) {
                row.insert(j);
            }
        }
    }
    BipartiteCenterGraph {
        left: (0..nl as u32).collect(),
        right: (0..nr as u32).collect(),
        adj,
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("densest_subgraph");
    for (nl, nr, d) in [(100, 100, 0.5), (400, 400, 0.1), (50, 800, 0.3)] {
        let g = center_graph(nl, nr, d, 42);
        group.bench_function(format!("peel_{nl}x{nr}_d{d}"), |b| {
            b.iter(|| std::hint::black_box(densest_subgraph(&g)))
        });
    }
    group.finish();

    let collection = dblp_collection(0.02);
    let graph = collection.element_graph();

    let mut group = c.benchmark_group("closure");
    group.sample_size(20);
    group.bench_function("materialize_dblp_0.02", |b| {
        b.iter(|| std::hint::black_box(TransitiveClosure::from_graph(&graph).connection_count()))
    });
    group.bench_function("incremental_edge_insert", |b| {
        let tc = TransitiveClosure::from_graph(&graph);
        let mut rng = StdRng::seed_from_u64(3);
        let n = graph.id_bound() as u32;
        b.iter_batched(
            || (tc.clone(), rng.gen_range(0..n), rng.gen_range(0..n)),
            |(mut tc, u, v)| std::hint::black_box(tc.insert_edge(u, v)),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("maintenance_kernels");
    let docs: Vec<u32> = collection.doc_ids().collect();
    let mut i = 0usize;
    group.bench_function("separator_test", |b| {
        b.iter(|| {
            i = (i + 1) % docs.len();
            std::hint::black_box(separates(&collection, docs[i]))
        })
    });
    let (index, _) = build_index(&collection, &BuildConfig::default());
    let n = collection.elem_id_bound() as u32;
    let mut rng = StdRng::seed_from_u64(11);
    group.sample_size(20);
    group.bench_function("integrate_link", |b| {
        b.iter_batched(
            || {
                (
                    index.cover().clone(),
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                )
            },
            |(mut cover, u, v)| std::hint::black_box(old_join::integrate_link(&mut cover, u, v)),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("full_build_dblp_0.02_default", |b| {
        b.iter(|| {
            std::hint::black_box(
                build_index(&collection, &BuildConfig::default())
                    .1
                    .cover_size,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
