//! Regenerates the **§7.3 index-maintenance experiments**:
//!
//! * fraction of documents that *separate* the document-level graph
//!   (paper: "about 60%" of the DBLP subset; 100% of INEX);
//! * average separator-test time (paper: ≈ 2 s on Java/Oracle full scale);
//! * average fast (Theorem 2) deletion time (paper: ≈ 13 s);
//! * general (Theorem 3) deletion time for non-separating documents
//!   (paper: can approach cover-rebuild cost for hub documents);
//! * §6.1 insertion timings (documents and links), supporting the
//!   abstract's "efficient updates" claim.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin maintenance [--scale 0.03]
//! ```

use hopi_bench::{dblp_collection, inex_collection, scale_arg, TablePrinter};
use hopi_build::{build_index, BuildConfig};
use hopi_maintenance::{
    delete_document, insert_document, insert_link, separates, DeletionAlgorithm, DocumentLinks,
};
use hopi_xml::{CollectionStats, DocId, XmlDocument};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    let scale = scale_arg(0.03);
    let mut collection = dblp_collection(scale);
    let stats = CollectionStats::of(&collection);
    println!("maintenance experiments — DBLP-like @ scale {scale}: {stats}\n");

    // --- Separator fraction + test timing over all documents.
    let docs: Vec<DocId> = collection.doc_ids().collect();
    let t0 = Instant::now();
    let separating: Vec<bool> = docs.iter().map(|&d| separates(&collection, d)).collect();
    let test_time = t0.elapsed();
    let frac = separating.iter().filter(|&&s| s).count() as f64 / docs.len() as f64;
    println!(
        "separator fraction: {:.1}% of {} documents (paper: ~60%)",
        frac * 100.0,
        docs.len()
    );
    println!(
        "separator test: {:.3} ms/doc average (paper: ~2 s on 2004 Java+Oracle)",
        test_time.as_secs_f64() * 1000.0 / docs.len() as f64
    );

    // --- Deletion timings.
    let (mut index, report) = build_index(&collection, &BuildConfig::default());
    println!(
        "\nindex built: {} entries in {:.1}s; deleting documents…\n",
        report.cover_size,
        report.total_ms as f64 / 1000.0
    );

    let mut rng = StdRng::seed_from_u64(0xde1);
    let mut sep_docs: Vec<DocId> = docs
        .iter()
        .zip(&separating)
        .filter(|(_, &s)| s)
        .map(|(&d, _)| d)
        .collect();
    let mut nonsep_docs: Vec<DocId> = docs
        .iter()
        .zip(&separating)
        .filter(|(_, &s)| !s)
        .map(|(&d, _)| d)
        .collect();
    sep_docs.shuffle(&mut rng);
    nonsep_docs.shuffle(&mut rng);

    let t = TablePrinter::new(&[("operation", 26), ("count", 6), ("mean", 12), ("max", 12)]);

    // Fast deletions (Theorem 2).
    let mut fast_times = Vec::new();
    for &d in sep_docs.iter().take(20) {
        let t0 = Instant::now();
        let outcome = delete_document(&mut collection, &mut index, d);
        fast_times.push(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::FastSeparator);
    }
    report_times(&t, "fast delete (Thm 2)", &fast_times);

    // General deletions (Theorem 3). Re-test separation: earlier deletions
    // may have changed the document graph.
    let mut general_times = Vec::new();
    let mut seeds_used = Vec::new();
    for &d in nonsep_docs.iter().take(10) {
        if collection.document(d).is_none() || separates(&collection, d) {
            continue;
        }
        let t0 = Instant::now();
        let outcome = delete_document(&mut collection, &mut index, d);
        general_times.push(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(outcome.algorithm, DeletionAlgorithm::General);
        seeds_used.push(outcome.recompute_seeds);
    }
    report_times(&t, "general delete (Thm 3)", &general_times);
    if !seeds_used.is_empty() {
        println!(
            "  (partial recomputation seeds: mean {:.0}, max {})",
            seeds_used.iter().sum::<usize>() as f64 / seeds_used.len() as f64,
            seeds_used.iter().max().unwrap()
        );
    }

    // --- Insertions (§6.1).
    let mut doc_insert_times = Vec::new();
    let live: Vec<DocId> = collection.doc_ids().collect();
    for i in 0..20 {
        let mut doc = XmlDocument::new(format!("ins{i}"), "article");
        doc.add_element(0, "title");
        let cites = doc.add_element(0, "citations");
        let c1 = doc.add_element(cites, "cite");
        let c2 = doc.add_element(cites, "cite");
        let t1 = live[rng.gen_range(0..live.len())];
        let t2 = live[rng.gen_range(0..live.len())];
        let links = DocumentLinks {
            outgoing: vec![
                (c1, collection.global_id(t1, 0)),
                (c2, collection.global_id(t2, 0)),
            ],
            incoming: vec![],
        };
        let t0 = Instant::now();
        insert_document(&mut collection, &mut index, doc, &links);
        doc_insert_times.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    report_times(&t, "insert document + 2 links", &doc_insert_times);

    let mut link_insert_times = Vec::new();
    let live: Vec<DocId> = collection.doc_ids().collect();
    for _ in 0..30 {
        let a = live[rng.gen_range(0..live.len())];
        let b = live[rng.gen_range(0..live.len())];
        if a == b {
            continue;
        }
        let from = collection.global_id(a, 0);
        let to = collection.global_id(b, 0);
        let t0 = Instant::now();
        insert_link(&mut collection, &mut index, from, to).expect("live endpoints");
        link_insert_times.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    report_times(&t, "insert link", &link_insert_times);

    // --- INEX: no links ⇒ every document separates (paper §7.3).
    let inex = inex_collection(scale * 0.02);
    let all_separate = inex.doc_ids().all(|d| separates(&inex, d));
    println!(
        "\nINEX-like ({} docs, {} links): all documents separate = {} (paper: every document separates)",
        inex.doc_count(),
        inex.links().len(),
        all_separate
    );
    assert!(all_separate);
}

fn report_times(t: &TablePrinter, name: &str, times_ms: &[f64]) {
    if times_ms.is_empty() {
        t.row(&[name.into(), "0".into(), "-".into(), "-".into()]);
        return;
    }
    let mean = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    let max = times_ms.iter().fold(0.0f64, |a, &b| a.max(b));
    t.row(&[
        name.into(),
        times_ms.len().to_string(),
        format!("{mean:.2} ms"),
        format!("{max:.2} ms"),
    ]);
}
