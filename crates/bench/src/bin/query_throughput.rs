//! Serving-layer throughput: the mutable engine behind a reader/writer
//! lock (the pre-snapshot `OnlineHopi` read path) versus an immutable
//! frozen-cover snapshot, on an INEX-shaped collection.
//!
//! Four workloads on 1 and N reader threads:
//!
//! * `probe` — point reachability tests (the paper's §3.4 `LIN ⋈ LOUT`
//!   join probe); the frozen side uses the batched `connected_many`
//!   kernel.
//! * `descendants` — descendant-set enumeration (backward-index scans).
//! * `path` — full `//`-axis path-expression evaluation (the cost-based
//!   step planner picks a strategy per step).
//! * `hopjoin` — the same expressions with the forward hop join forced on
//!   every `//` step, isolating the set-at-a-time kernel from the
//!   planner.
//!
//! Emits `BENCH_query.json` so later PRs have a perf trajectory to compare
//! against, and enforces a single-thread frozen `path` QPS floor (the
//! workload ran at ~4 QPS before the hop-join planner; a return to probe
//! or enumeration quadratics fails the bench).
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin query_throughput \
//!     [--scale 0.004] [--threads N] [--smoke] [--out BENCH_query.json]
//! ```

use hopi_bench::{
    add_cross_links, flag_arg, inex_collection, record_sampled, scale_arg, thread_ladder,
};
use hopi_build::{Hopi, HopiSnapshot};
use hopi_obs::{Histogram, HistogramSnapshot, Stopwatch};
use hopi_query::{evaluate_with, parse_path, EvalOptions, PathExpr, Strategy};
use parking_lot::RwLock;
use rand::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// One measured cell of the matrix.
struct Sample {
    workload: &'static str,
    mode: &'static str,
    threads: usize,
    ops: usize,
    elapsed_ms: f64,
    /// Per-operation latency across all threads (1/64 sampled for the
    /// sub-microsecond workloads; per batch for `probe`/`frozen`).
    latency: HistogramSnapshot,
}

impl Sample {
    fn qps(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = scale_arg(if smoke { 0.0006 } else { 0.004 });
    let out_path = flag_arg(&args, "--out").unwrap_or_else(|| "BENCH_query.json".into());
    let reader_threads: usize = flag_arg(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(4)
        });

    // INEX-shaped collection plus a sprinkling of cross-document links so
    // connection probes cross documents (the generator's pure INEX has
    // none; the 24×7 scenario is about *linked* collections).
    let mut collection = inex_collection(scale);
    add_cross_links(&mut collection);
    let hopi = Hopi::build(collection).expect("valid generated collection");
    let stats = hopi.stats();
    eprintln!(
        "query_throughput — INEX-like @ scale {scale}: {} docs, {} elements, {} links, \
         {} cover entries; {reader_threads} reader threads",
        stats.documents, stats.elements, stats.links, stats.cover_entries
    );

    let n = hopi.collection().elem_id_bound() as u32;
    let mut rng = StdRng::seed_from_u64(0xbe7c);
    let probe_pairs: Vec<(u32, u32)> = (0..8192)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let enum_nodes: Vec<u32> = (0..1024).map(|_| rng.gen_range(0..n)).collect();
    let path_exprs = ["//article//fig", "//sec//p", "/article/bdy//ss1"];

    let (probe_rounds, enum_rounds, path_rounds) = if smoke { (20, 4, 2) } else { (200, 40, 10) };

    // The mutable baseline: the engine behind a reader/writer lock, one
    // read-lock acquisition per query — exactly the pre-snapshot serving
    // path. The frozen side shares one Arc<HopiSnapshot>.
    let snapshot = hopi.snapshot();
    let engine = Arc::new(RwLock::new(hopi));

    let mut samples: Vec<Sample> = Vec::new();
    for &threads in &thread_ladder(reader_threads) {
        // --- probe ---
        samples.push(run(
            "probe",
            "mutable",
            threads,
            probe_rounds * probe_pairs.len(),
            |lat| {
                let engine = engine.clone();
                let pairs = probe_pairs.clone();
                move || {
                    let mut hits = 0usize;
                    for _ in 0..probe_rounds {
                        for (i, &(u, v)) in pairs.iter().enumerate() {
                            // One read-lock round trip per probe — the
                            // pre-snapshot OnlineHopi::connected path.
                            hits += record_sampled(&lat, i, || {
                                usize::from(engine.read().connected(u, v))
                            });
                        }
                    }
                    hits
                }
            },
        ));
        samples.push(run(
            "probe",
            "frozen",
            threads,
            probe_rounds * probe_pairs.len(),
            |lat| {
                let snap = snapshot.clone();
                let pairs = probe_pairs.clone();
                move || {
                    let mut hits = 0usize;
                    let mut out = Vec::new();
                    for _ in 0..probe_rounds {
                        let sw = Stopwatch::start();
                        snap.connected_many(&pairs, &mut out);
                        lat.record_micros(sw.elapsed_micros());
                        hits += out.iter().filter(|&&b| b).count();
                    }
                    hits
                }
            },
        ));

        // --- descendants ---
        samples.push(run(
            "descendants",
            "mutable",
            threads,
            enum_rounds * enum_nodes.len(),
            |lat| {
                let engine = engine.clone();
                let nodes = enum_nodes.clone();
                move || {
                    let mut total = 0usize;
                    for _ in 0..enum_rounds {
                        for (i, &u) in nodes.iter().enumerate() {
                            total += record_sampled(&lat, i, || engine.read().descendants(u).len());
                        }
                    }
                    total
                }
            },
        ));
        samples.push(run(
            "descendants",
            "frozen",
            threads,
            enum_rounds * enum_nodes.len(),
            |lat| {
                let snap = snapshot.clone();
                let nodes = enum_nodes.clone();
                move || {
                    let mut total = 0usize;
                    let mut buf = Vec::new();
                    for _ in 0..enum_rounds {
                        for (i, &u) in nodes.iter().enumerate() {
                            record_sampled(&lat, i, || snap.frozen().descendants_into(u, &mut buf));
                            total += buf.len();
                        }
                    }
                    total
                }
            },
        ));

        // --- path ---
        samples.push(run(
            "path",
            "mutable",
            threads,
            path_rounds * path_exprs.len(),
            |lat| {
                let engine = engine.clone();
                move || {
                    let mut total = 0usize;
                    for _ in 0..path_rounds {
                        for expr in path_exprs {
                            let sw = Stopwatch::start();
                            total += engine.read().query(expr).expect("valid expr").len();
                            lat.record_micros(sw.elapsed_micros());
                        }
                    }
                    total
                }
            },
        ));
        samples.push(run(
            "path",
            "frozen",
            threads,
            path_rounds * path_exprs.len(),
            |lat| {
                let snap = snapshot.clone();
                move || {
                    let mut total = 0usize;
                    for _ in 0..path_rounds {
                        for expr in path_exprs {
                            let sw = Stopwatch::start();
                            total += snap.query(expr).expect("valid expr").len();
                            lat.record_micros(sw.elapsed_micros());
                        }
                    }
                    total
                }
            },
        ));

        // --- hopjoin (forced forward hop join, bypassing the planner) ---
        let parsed: Vec<PathExpr> = path_exprs
            .iter()
            .map(|e| parse_path(e).expect("valid expr"))
            .collect();
        let hop_options = EvalOptions {
            force_strategy: Some(Strategy::ForwardHopJoin),
            ..EvalOptions::default()
        };
        samples.push(run(
            "hopjoin",
            "mutable",
            threads,
            path_rounds * path_exprs.len(),
            |lat| {
                let engine = engine.clone();
                let exprs = parsed.clone();
                move || {
                    let mut total = 0usize;
                    for _ in 0..path_rounds {
                        for expr in &exprs {
                            let sw = Stopwatch::start();
                            let guard = engine.read();
                            total += evaluate_with(
                                guard.collection(),
                                guard.index(),
                                guard.tags(),
                                expr,
                                &hop_options,
                            )
                            .len();
                            lat.record_micros(sw.elapsed_micros());
                        }
                    }
                    total
                }
            },
        ));
        samples.push(run(
            "hopjoin",
            "frozen",
            threads,
            path_rounds * path_exprs.len(),
            |lat| {
                let snap = snapshot.clone();
                let exprs = parsed.clone();
                move || {
                    let mut total = 0usize;
                    for _ in 0..path_rounds {
                        for expr in &exprs {
                            let sw = Stopwatch::start();
                            total += evaluate_with(
                                snap.collection(),
                                snap.frozen(),
                                snap.tags(),
                                expr,
                                &hop_options,
                            )
                            .len();
                            lat.record_micros(sw.elapsed_micros());
                        }
                    }
                    total
                }
            },
        ));
    }

    // Persist and print the measurements *before* the regression gate, so
    // a failing floor still leaves the trajectory data to diagnose it.
    let json = render_json(scale, smoke, &stats_tuple(&snapshot), &samples);
    std::fs::write(&out_path, &json).expect("write BENCH_query.json");
    eprintln!("wrote {out_path}");
    print_table(&samples);

    // Regression floor: frozen single-thread path evaluation ran at ~4 QPS
    // before the hop-join planner. Fail the bench loudly if a plan
    // regression drags serving anywhere back toward that.
    let floor = if smoke { 50.0 } else { 200.0 };
    let path_frozen = samples
        .iter()
        .find(|s| s.workload == "path" && s.mode == "frozen" && s.threads == 1)
        .map(Sample::qps)
        .expect("path/frozen/1t sample");
    assert!(
        path_frozen >= floor,
        "path workload regressed: {path_frozen:.1} QPS < floor {floor}"
    );
}

/// Collection facts for the JSON header.
fn stats_tuple(snapshot: &HopiSnapshot) -> (usize, usize, usize, usize) {
    let c = snapshot.collection();
    (
        c.doc_count(),
        c.element_count(),
        c.links().len(),
        snapshot.cover_entries(),
    )
}

/// Runs `make_worker()` on `threads` threads; each worker performs
/// `ops / threads`-ish operations (every thread runs the full op script, so
/// total ops = script_ops × threads — throughput is aggregate).
fn run<W, F>(
    workload: &'static str,
    mode: &'static str,
    threads: usize,
    script_ops: usize,
    make_worker: F,
) -> Sample
where
    W: FnOnce() -> usize + Send + 'static,
    F: Fn(Arc<Histogram>) -> W,
{
    // One shared lock-free histogram; every worker records into it.
    let latency = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let mut sink = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(make_worker(latency.clone())))
            .collect();
        for h in handles {
            sink += h.join().expect("reader thread");
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    std::hint::black_box(sink);
    Sample {
        workload,
        mode,
        threads,
        ops: script_ops * threads,
        elapsed_ms,
        latency: latency.snapshot(),
    }
}

fn render_json(
    scale: f64,
    smoke: bool,
    &(docs, elements, links, cover_entries): &(usize, usize, usize, usize),
    samples: &[Sample],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"collection\": {{\"kind\": \"inex-linked\", \"scale\": {scale}, \
         \"documents\": {docs}, \"elements\": {elements}, \"links\": {links}, \
         \"cover_entries\": {cover_entries}}},\n"
    ));
    s.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"ops\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
            r.workload,
            r.mode,
            r.threads,
            r.ops,
            r.elapsed_ms,
            r.qps(),
            r.latency.quantile_micros(0.50),
            r.latency.quantile_micros(0.95),
            r.latency.quantile_micros(0.99),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"frozen_speedup\": {\n");
    let mut cells: Vec<String> = Vec::new();
    for workload in ["probe", "descendants", "path", "hopjoin"] {
        for threads in samples
            .iter()
            .map(|s| s.threads)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let find = |mode: &str| {
                samples
                    .iter()
                    .find(|s| s.workload == workload && s.mode == mode && s.threads == threads)
                    .map(Sample::qps)
            };
            if let (Some(frozen), Some(mutable)) = (find("frozen"), find("mutable")) {
                cells.push(format!(
                    "    \"{workload}_{threads}t\": {:.2}",
                    frozen / mutable.max(1e-9)
                ));
            }
        }
    }
    s.push_str(&cells.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}

fn print_table(samples: &[Sample]) {
    let t = hopi_bench::TablePrinter::new(&[
        ("workload", 12),
        ("mode", 8),
        ("threads", 7),
        ("ops", 10),
        ("ms", 10),
        ("qps", 12),
        ("p50µs", 8),
        ("p99µs", 8),
    ]);
    for r in samples {
        t.row(&[
            r.workload.into(),
            r.mode.into(),
            r.threads.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.qps()),
            r.latency.quantile_micros(0.50).to_string(),
            r.latency.quantile_micros(0.99).to_string(),
        ]);
    }
}
