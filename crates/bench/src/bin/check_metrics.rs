//! Validates a Prometheus text-exposition (0.0.4) scrape, as written by
//! `server_throughput --metrics-out`. CI runs this over the smoke
//! bench's `/metrics` scrape so a malformed exposition — a rendering
//! regression no Rust unit test of an individual histogram would catch —
//! fails the build.
//!
//! Checks, line by line and per series:
//!
//! * every non-comment line parses as `name{labels} value` (or
//!   `name value`), with a valid metric name and a finite-or-`+Inf`
//!   numeric value;
//! * `# TYPE` comments are well-formed and each sample's metric matches
//!   a declared family (histogram samples via their `_bucket` /
//!   `_count` / `_sum` suffixes);
//! * at least one `_bucket` series exists (the PR's reason to exist:
//!   latency histograms), every histogram family has a `+Inf` bucket,
//!   and bucket counts are cumulative (monotone non-decreasing in `le`)
//!   within each label set;
//! * the required families for the serving path are present:
//!   `hopi_build_info`, `hopi_request_duration_seconds`,
//!   `hopi_requests_total`.
//!
//! ```sh
//! cargo run -p hopi-bench --bin check_metrics -- metrics.prom
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Families that must appear in any hopi-server scrape.
const REQUIRED_FAMILIES: &[&str] = &[
    "hopi_build_info",
    "hopi_requests_total",
    "hopi_request_duration_seconds",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: check_metrics <scrape-file>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_metrics: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("check_metrics OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("check_metrics: {e}");
            }
            eprintln!("check_metrics: {} error(s) in {path}", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    /// Full label block, brace-less, exactly as rendered.
    labels: String,
    value: f64,
}

fn check(text: &str) -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    let mut families: Vec<String> = Vec::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let (name, kind) = (words.next(), words.next());
                    match (name, kind) {
                        (
                            Some(n),
                            Some("counter" | "gauge" | "histogram" | "summary" | "untyped"),
                        ) => {
                            families.push(n.to_string());
                        }
                        _ => errors.push(format!("line {lineno}: malformed # TYPE: {line}")),
                    }
                }
                Some("HELP") | Some("EOF") => {}
                _ => {} // free-form comments are legal
            }
            continue;
        }
        match parse_sample(line) {
            Ok(s) => samples.push(s),
            Err(e) => errors.push(format!("line {lineno}: {e}: {line}")),
        }
    }

    if samples.is_empty() {
        errors.push("no samples in scrape".into());
    }

    // Every sample must belong to a declared family (histogram suffixes
    // resolve to their base family name).
    for s in &samples {
        let base = ["_bucket", "_count", "_sum"]
            .iter()
            .find_map(|suf| s.name.strip_suffix(suf))
            .filter(|base| families.iter().any(|f| f == base))
            .unwrap_or(&s.name);
        if !families.iter().any(|f| f == base) {
            errors.push(format!("sample `{}` has no # TYPE declaration", s.name));
        }
    }

    for family in REQUIRED_FAMILIES {
        if !families.iter().any(|f| f == family) {
            errors.push(format!("required family `{family}` missing from scrape"));
        }
    }

    // Histogram buckets: group by (family, labels-minus-le); require a
    // +Inf bucket and cumulative counts within each group.
    let mut groups: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut bucket_series = 0usize;
    for s in &samples {
        let Some(base) = s.name.strip_suffix("_bucket") else {
            continue;
        };
        bucket_series += 1;
        match split_le(&s.labels) {
            Some((rest, le)) => {
                groups
                    .entry((base.to_string(), rest))
                    .or_default()
                    .push((le, s.value));
            }
            None => errors.push(format!(
                "bucket sample without le label: {}{{{}}}",
                s.name, s.labels
            )),
        }
    }
    if bucket_series == 0 {
        errors.push("no _bucket series in scrape — histograms missing".into());
    }
    for ((family, labels), mut buckets) in groups {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        if buckets.last().is_none_or(|&(le, _)| le.is_finite()) {
            errors.push(format!(
                "histogram {family}{{{labels}}} lacks a +Inf bucket"
            ));
        }
        for pair in buckets.windows(2) {
            if pair[1].1 < pair[0].1 {
                errors.push(format!(
                    "histogram {family}{{{labels}}} buckets not cumulative: \
                     le={} count {} > le={} count {}",
                    pair[0].0, pair[0].1, pair[1].0, pair[1].1
                ));
            }
        }
    }

    if errors.is_empty() {
        Ok(format!(
            "{} samples, {} families, {} bucket series",
            samples.len(),
            families.len(),
            bucket_series
        ))
    } else {
        Err(errors)
    }
}

/// Parses `name{labels} value` or `name value`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "no value separator".to_string())?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("unparseable value `{v}`"))?,
    };
    let (name, labels) = match name_labels.split_once('{') {
        Some((n, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label block".to_string())?;
            if !labels.is_empty() && !valid_labels(labels) {
                return Err(format!("malformed labels `{{{labels}}}`"));
            }
            (n, labels.to_string())
        }
        None => (name_labels, String::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// `k="v",k2="v2"` — values may contain anything except an unescaped
/// quote (the renderer never emits escapes, so none are accepted).
fn valid_labels(labels: &str) -> bool {
    let mut rest = labels;
    loop {
        let Some(eq) = rest.find("=\"") else {
            return false;
        };
        let key = &rest[..eq];
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return false;
        }
        let after = &rest[eq + 2..];
        let Some(close) = after.find('"') else {
            return false;
        };
        match after[close + 1..].strip_prefix(',') {
            Some(next) => rest = next,
            None => return after[close + 1..].is_empty(),
        }
    }
}

/// Splits the `le` label out of a bucket's label block, returning the
/// remaining labels (order preserved) and the parsed bound.
fn split_le(labels: &str) -> Option<(String, f64)> {
    let mut rest_parts = Vec::new();
    let mut le = None;
    for part in split_label_pairs(labels) {
        if let Some(v) = part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            le = Some(match v {
                "+Inf" => f64::INFINITY,
                v => v.parse().ok()?,
            });
        } else {
            rest_parts.push(part);
        }
    }
    Some((rest_parts.join(","), le?))
}

/// Splits `k="v",k2="v2"` on the commas *between* pairs (values are
/// quote-delimited, so a split inside a value cannot happen for the
/// renderer's output, which never escapes quotes).
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    for (i, c) in labels.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < labels.len() {
        out.push(&labels[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# TYPE hopi_build_info gauge
hopi_build_info{version=\"0.2.0\",store_format=\"3\"} 1
# TYPE hopi_requests_total counter
hopi_requests_total{endpoint=\"query\"} 7
# TYPE hopi_request_duration_seconds histogram
hopi_request_duration_seconds_bucket{endpoint=\"query\",le=\"0.001\"} 3
hopi_request_duration_seconds_bucket{endpoint=\"query\",le=\"+Inf\"} 7
hopi_request_duration_seconds_sum{endpoint=\"query\"} 0.5
hopi_request_duration_seconds_count{endpoint=\"query\"} 7
";

    #[test]
    fn accepts_a_well_formed_scrape() {
        assert!(check(GOOD).is_ok());
    }

    #[test]
    fn rejects_missing_inf_bucket_and_non_cumulative_counts() {
        let no_inf = GOOD.replace(
            "hopi_request_duration_seconds_bucket{endpoint=\"query\",le=\"+Inf\"} 7\n",
            "",
        );
        assert!(check(&no_inf)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("+Inf")));

        let decreasing = GOOD.replace("le=\"+Inf\"} 7", "le=\"+Inf\"} 1");
        assert!(check(&decreasing)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("not cumulative")));
    }

    #[test]
    fn rejects_malformed_lines_and_undeclared_samples() {
        let garbled = format!("{GOOD}hopi_bad{{oops}} 1\n");
        assert!(check(&garbled).is_err());

        let undeclared = format!("{GOOD}hopi_mystery_total 3\n");
        assert!(check(&undeclared)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("no # TYPE")));

        let no_buckets = "\
# TYPE hopi_build_info gauge
hopi_build_info 1
# TYPE hopi_requests_total counter
hopi_requests_total 1
# TYPE hopi_request_duration_seconds histogram
hopi_request_duration_seconds_count 1
";
        assert!(check(no_buckets)
            .unwrap_err()
            .iter()
            .any(|e| e.contains("no _bucket")));
    }
}
