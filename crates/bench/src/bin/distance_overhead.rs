//! Regenerates the **§5 distance experiment** backing the abstract's claim
//! of "low space overhead for including distance information in the index":
//! builds the plain and the distance-aware cover over the same collections
//! and compares entry counts, stored integers (the DIST column adds one
//! integer per entry), and build times — including the effect of the
//! sampled density estimation (§5.2).
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin distance_overhead [--scale 0.02]
//! ```

use hopi_bench::{dblp_collection, inex_collection, scale_arg, TablePrinter};
use hopi_core::{CoverBuilder, DistanceCoverBuilder};
use hopi_graph::{DistanceClosure, TransitiveClosure};
use hopi_store::LinLoutStore;
use hopi_xml::{Collection, CollectionStats};
use std::time::Instant;

fn main() {
    let scale = scale_arg(0.02);
    let t = TablePrinter::new(&[
        ("collection", 12),
        ("els", 8),
        ("plain sz", 10),
        ("dist sz", 10),
        ("entry ovh", 10),
        ("ints ovh", 9),
        ("plain ms", 9),
        ("dist ms", 9),
        ("sampled", 8),
    ]);
    run("DBLP-like", &dblp_collection(scale), &t);
    run("INEX-like", &inex_collection(scale * 0.01), &t);
    println!(
        "\npaper: distance information is an extra DIST attribute on existing entries\n\
         (≈1.5x stored integers, no blow-up in entry count); shortest-path center\n\
         filtering changes build behaviour via the §5.2 sampled density estimation."
    );
}

fn run(name: &str, collection: &Collection, t: &TablePrinter) {
    let stats = CollectionStats::of(collection);
    let graph = collection.element_graph();

    let t0 = Instant::now();
    let tc = TransitiveClosure::from_graph(&graph);
    let plain = CoverBuilder::new(&tc).build();
    let plain_ms = t0.elapsed().as_millis();
    drop(tc);

    let t0 = Instant::now();
    let dc = DistanceClosure::from_graph(&graph);
    let (dist, dstats) = DistanceCoverBuilder::new(&dc).build_with_stats();
    let dist_ms = t0.elapsed().as_millis();

    let plain_store = LinLoutStore::from_cover(&plain);
    let dist_store = LinLoutStore::from_distance_cover(&dist);

    t.row(&[
        name.into(),
        stats.elements.to_string(),
        plain.size().to_string(),
        dist.size().to_string(),
        format!("{:.2}x", dist.size() as f64 / plain.size().max(1) as f64),
        format!(
            "{:.2}x",
            dist_store.stored_integers() as f64 / plain_store.stored_integers().max(1) as f64
        ),
        plain_ms.to_string(),
        dist_ms.to_string(),
        dstats.sampled_estimates.to_string(),
    ]);

    // Sanity: distances exact on a sample.
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(99);
    let n = graph.id_bound() as u32;
    for _ in 0..500 {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        assert_eq!(
            dist.distance(u, v),
            dc.dist(u, v),
            "distance drift ({u},{v})"
        );
    }
}
