//! HTTP serving throughput: the `hopi-server` subsystem under loopback
//! load, on an INEX-shaped linked collection.
//!
//! Workloads, each on 1 and N keep-alive client threads:
//!
//! * `probe` — point reachability requests (`GET /connected?u=&v=`), one
//!   HTTP round trip per probe;
//! * `probe_batch` — batched probes (`POST /connected_many`, 128 pairs
//!   per request), amortizing HTTP framing over the §3.4-style batched
//!   join kernel;
//! * `stats` — the observability path (`GET /stats`).
//!
//! Emits `BENCH_server.json` next to `BENCH_query.json`, so the HTTP
//! layer's overhead over the in-process snapshot numbers is tracked
//! per-PR. The smoke acceptance floor is ≥ 10k point-probe requests/s.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin server_throughput \
//!     [--scale 0.004] [--threads N] [--smoke] [--out BENCH_server.json] \
//!     [--metrics-out metrics.prom]
//! ```

use hopi_bench::{add_cross_links, flag_arg, inex_collection, scale_arg, thread_ladder};
use hopi_build::{Hopi, OnlineHopi};
use hopi_obs::{Histogram, HistogramSnapshot, Stopwatch};
use hopi_server::{serve, Client, ServerConfig};
use rand::prelude::*;
use std::net::SocketAddr;
use std::time::Instant;

/// Pairs per `POST /connected_many` request.
const BATCH: usize = 128;

/// One measured cell.
struct Sample {
    workload: &'static str,
    clients: usize,
    requests: usize,
    probes: usize,
    elapsed_ms: f64,
    /// Per-request round-trip latency across all client threads.
    latency: HistogramSnapshot,
}

impl Sample {
    fn rps(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
    fn probes_per_s(&self) -> f64 {
        self.probes as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = scale_arg(if smoke { 0.0006 } else { 0.004 });
    let out_path = flag_arg(&args, "--out").unwrap_or_else(|| "BENCH_server.json".into());
    let client_threads: usize = flag_arg(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(4)
        });

    let mut collection = inex_collection(scale);
    add_cross_links(&mut collection);
    let hopi = Hopi::build(collection).expect("valid generated collection");
    let stats = hopi.stats();
    eprintln!(
        "server_throughput — INEX-like @ scale {scale}: {} docs, {} elements, {} links, \
         {} cover entries; {client_threads} client threads",
        stats.documents, stats.elements, stats.links, stats.cover_entries
    );

    let n = stats.elements as u32;
    let mut rng = StdRng::seed_from_u64(0xbe7c);
    let pairs: Vec<(u32, u32)> = (0..4096)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    // Pre-render request targets/bodies so client threads measure the
    // server, not client-side formatting.
    let point_paths: Vec<String> = pairs
        .iter()
        .map(|(u, v)| format!("/connected?u={u}&v={v}"))
        .collect();
    let batch_bodies: Vec<String> = pairs
        .chunks(BATCH)
        .map(|chunk| {
            let items: Vec<String> = chunk.iter().map(|(u, v)| format!("[{u},{v}]")).collect();
            format!("{{\"pairs\":[{}]}}", items.join(","))
        })
        .collect();

    let handle = serve(
        OnlineHopi::new(hopi),
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            threads: client_threads.max(2),
            read_only: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let (point_rounds, batch_rounds, stats_requests) =
        if smoke { (2, 8, 500) } else { (20, 80, 5000) };

    let mut samples: Vec<Sample> = Vec::new();
    for &clients in &thread_ladder(client_threads) {
        samples.push(run(
            "probe",
            clients,
            point_rounds * point_paths.len(),
            point_rounds * point_paths.len(),
            addr,
            |client, lat| {
                for _ in 0..point_rounds {
                    for path in &point_paths {
                        let sw = Stopwatch::start();
                        let resp = client.get(path).expect("probe request");
                        lat.record_micros(sw.elapsed_micros());
                        assert_eq!(resp.status, 200, "{}", resp.body);
                    }
                }
            },
        ));
        samples.push(run(
            "probe_batch",
            clients,
            batch_rounds * batch_bodies.len(),
            batch_rounds * batch_bodies.len() * BATCH,
            addr,
            |client, lat| {
                for _ in 0..batch_rounds {
                    for body in &batch_bodies {
                        let sw = Stopwatch::start();
                        let resp = client
                            .request("POST", "/connected_many", body)
                            .expect("batch request");
                        lat.record_micros(sw.elapsed_micros());
                        assert_eq!(resp.status, 200, "{}", resp.body);
                    }
                }
            },
        ));
        samples.push(run(
            "stats",
            clients,
            stats_requests,
            0,
            addr,
            |client, lat| {
                for _ in 0..stats_requests {
                    let sw = Stopwatch::start();
                    let resp = client.get("/stats").expect("stats request");
                    lat.record_micros(sw.elapsed_micros());
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            },
        ));
    }

    // Optionally scrape the server's own /metrics exposition (the CI
    // smoke run parses it with the check_metrics bin and archives it
    // next to BENCH_server.json).
    if let Some(metrics_out) = flag_arg(&args, "--metrics-out") {
        let mut client = Client::connect(addr).expect("metrics client");
        let resp = client.get("/metrics").expect("metrics scrape");
        assert_eq!(resp.status, 200, "{}", resp.body);
        std::fs::write(&metrics_out, &resp.body).expect("write metrics scrape");
        eprintln!("wrote {metrics_out}");
    }

    handle.shutdown();

    let json = render_json(scale, smoke, &stats, client_threads, &samples);
    std::fs::write(&out_path, &json).expect("write BENCH_server.json");
    eprintln!("wrote {out_path}");
    print_table(&samples);

    let point_peak = samples
        .iter()
        .filter(|s| s.workload == "probe")
        .map(Sample::rps)
        .fold(0.0f64, f64::max);
    eprintln!("peak point-probe rate: {point_peak:.0} requests/s");
    assert!(
        point_peak >= 10_000.0,
        "acceptance floor: expected >= 10k probe requests/s, got {point_peak:.0}"
    );
}

/// Runs `script` on `clients` threads, each over its own keep-alive
/// connection; `requests`/`probes` are per-thread counts (totals are
/// aggregate across threads).
fn run<F>(
    workload: &'static str,
    clients: usize,
    requests: usize,
    probes: usize,
    addr: SocketAddr,
    script: F,
) -> Sample
where
    F: Fn(&mut Client, &Histogram) + Sync,
{
    // One shared lock-free histogram: every client thread records each
    // request's round-trip latency into it as it goes.
    let latency = Histogram::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("client connects");
                    script(&mut client, &latency);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    Sample {
        workload,
        clients,
        requests: requests * clients,
        probes: probes * clients,
        elapsed_ms,
        latency: latency.snapshot(),
    }
}

fn render_json(
    scale: f64,
    smoke: bool,
    stats: &hopi_build::Stats,
    client_threads: usize,
    samples: &[Sample],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"collection\": {{\"kind\": \"inex-linked\", \"scale\": {scale}, \
         \"documents\": {}, \"elements\": {}, \"links\": {}, \"cover_entries\": {}}},\n",
        stats.documents, stats.elements, stats.links, stats.cover_entries
    ));
    s.push_str(&format!(
        "  \"smoke\": {smoke},\n  \"client_threads\": {client_threads},\n  \"results\": [\n"
    ));
    for (i, r) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"clients\": {}, \"requests\": {}, \
             \"probes\": {}, \"elapsed_ms\": {:.3}, \"rps\": {:.1}, \"probes_per_s\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"mean_us\": {:.1}}}{}\n",
            r.workload,
            r.clients,
            r.requests,
            r.probes,
            r.elapsed_ms,
            r.rps(),
            r.probes_per_s(),
            r.latency.quantile_micros(0.50),
            r.latency.quantile_micros(0.95),
            r.latency.quantile_micros(0.99),
            r.latency.mean_micros(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_table(samples: &[Sample]) {
    let t = hopi_bench::TablePrinter::new(&[
        ("workload", 12),
        ("clients", 7),
        ("requests", 10),
        ("ms", 10),
        ("req/s", 12),
        ("probes/s", 12),
        ("p50µs", 8),
        ("p99µs", 8),
    ]);
    for r in samples {
        t.row(&[
            r.workload.into(),
            r.clients.to_string(),
            r.requests.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.rps()),
            format!("{:.0}", r.probes_per_s()),
            r.latency.quantile_micros(0.50).to_string(),
            r.latency.quantile_micros(0.99).to_string(),
        ]);
    }
}
