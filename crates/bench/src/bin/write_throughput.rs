//! Durable write throughput: the cost of crash safety on the mutation
//! path, and what group commit buys back.
//!
//! Three engine configurations run the same link-insertion workload:
//!
//! * `none` — no WAL (the pre-durability write path);
//! * `per_op` — every mutation fsyncs its own WAL record before the ack
//!   (the naive durable baseline: N concurrent writers = N serialized
//!   fsyncs);
//! * `group` — group commit: records are appended under the engine write
//!   lock, and one shared fsync acknowledges every mutation queued
//!   behind it.
//!
//! Each configuration is measured single-threaded and at N writer
//! threads. Emits `BENCH_write.json` next to the query/server artifacts.
//! In `--smoke` mode a durable group-commit throughput floor is asserted
//! (CI runs this), and the group-vs-per-op speedup at N threads is
//! reported — the durability design target is ≥ 5×.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin write_throughput \
//!     [--threads N] [--ops N] [--smoke] [--out BENCH_write.json]
//! ```

use hopi_bench::{flag_arg, TablePrinter};
use hopi_build::{DurableConfig, Hopi, OnlineHopi, SyncPolicy};
use hopi_obs::{Histogram, HistogramSnapshot, Stopwatch};
use hopi_xml::{Collection, XmlDocument};
use std::time::Instant;

/// Smoke-mode floor on group-commit durable writes (aggregate ops/s at N
/// threads). Deliberately far below observed numbers — it guards against
/// the write path accidentally serializing an fsync per op, not against
/// machine noise.
const SMOKE_GROUP_FLOOR_OPS_PER_S: f64 = 300.0;

/// One measured cell.
struct Sample {
    config: &'static str,
    threads: usize,
    ops: usize,
    elapsed_ms: f64,
    /// Per-insert ack latency across all writer threads — under group
    /// commit this is the queue-behind-the-shared-fsync time the paper's
    /// durability section trades throughput against.
    latency: HistogramSnapshot,
}

impl Sample {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

/// Single-element documents: global element id == doc id, so links are
/// cheap to enumerate and every insertion crosses documents.
fn doc_collection(docs: u32) -> Collection {
    let mut c = Collection::new();
    for i in 0..docs {
        c.add_document(XmlDocument::new(format!("d{i}"), "r"));
    }
    c
}

/// Distinct cross-document links, round-robin over the doc universe.
fn link_plan(docs: u32, ops: usize) -> Vec<(u32, u32)> {
    let mut plan = Vec::with_capacity(ops);
    let mut k = 0u32;
    while plan.len() < ops {
        let from = k % docs;
        let to = (from + 1 + (k / docs) % (docs - 1)) % docs;
        if from != to {
            plan.push((from, to));
        }
        k += 1;
    }
    plan
}

/// Runs `ops` link insertions split across `threads` writers against a
/// fresh engine of the given durability configuration.
fn run(
    config: &'static str,
    policy: Option<SyncPolicy>,
    docs: u32,
    threads: usize,
    ops: usize,
) -> Sample {
    let collection = doc_collection(docs);
    let state_dir = std::env::temp_dir().join(format!(
        "hopi_write_bench_{config}_{threads}_{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&state_dir).ok();
    let online = match policy {
        None => OnlineHopi::new(Hopi::build(collection).expect("valid collection")),
        Some(policy) => OnlineHopi::open_durable(
            &DurableConfig::new(&state_dir).policy(policy),
            Hopi::builder(),
            Some(collection),
        )
        .expect("durable open"),
    };
    let plan = link_plan(docs, ops);
    let chunk = ops.div_ceil(threads);
    let latency = Histogram::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for part in plan.chunks(chunk) {
            let online = online.clone();
            let latency = &latency;
            scope.spawn(move || {
                for &(from, to) in part {
                    let sw = Stopwatch::start();
                    online.insert_link(from, to).expect("valid link insert");
                    latency.record_micros(sw.elapsed_micros());
                }
            });
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    drop(online);
    std::fs::remove_dir_all(&state_dir).ok();
    Sample {
        config,
        threads,
        ops,
        elapsed_ms,
        latency: latency.snapshot(),
    }
}

fn render_json(docs: u32, smoke: bool, samples: &[Sample], speedup: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"collection\": {{\"kind\": \"single-element-docs\", \"documents\": {docs}}},\n"
    ));
    s.push_str(&format!(
        "  \"smoke\": {smoke},\n  \"workload\": \"insert_link\",\n  \"results\": [\n"
    ));
    for (i, r) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"config\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"elapsed_ms\": {:.3}, \"ops_per_s\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
            r.config,
            r.threads,
            r.ops,
            r.elapsed_ms,
            r.ops_per_s(),
            r.latency.quantile_micros(0.50),
            r.latency.quantile_micros(0.95),
            r.latency.quantile_micros(0.99),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"group_vs_per_op_speedup\": {speedup:.2}\n}}\n"
    ));
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag_arg(&args, "--out").unwrap_or_else(|| "BENCH_write.json".into());
    // Writer threads spend most of their time blocked on fsync, not on a
    // CPU, so the default is a fixed fan-out rather than the core count —
    // group commit's batching comes from writers queued behind the sync.
    let threads: usize = flag_arg(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
        .max(2);
    let ops: usize = flag_arg(&args, "--ops")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 512 } else { 992 });
    let docs: u32 = flag_arg(&args, "--docs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    assert!(
        ops <= docs as usize * (docs as usize - 1),
        "need docs*(docs-1) >= ops so every measured insert is a distinct link"
    );

    eprintln!(
        "write_throughput — {docs} docs, {ops} link inserts per cell, \
         1 and {threads} writer threads"
    );

    let mut samples = Vec::new();
    for (config, policy) in [
        ("none", None),
        ("per_op", Some(SyncPolicy::PerOp)),
        ("group", Some(SyncPolicy::GroupCommit)),
    ] {
        for &t in &[1, threads] {
            samples.push(run(config, policy, docs, t, ops));
        }
    }

    let t = TablePrinter::new(&[
        ("config", 8),
        ("threads", 7),
        ("ops", 8),
        ("ms", 10),
        ("ops/s", 12),
        ("p50µs", 8),
        ("p99µs", 8),
    ]);
    for r in &samples {
        t.row(&[
            r.config.into(),
            r.threads.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.ops_per_s()),
            r.latency.quantile_micros(0.50).to_string(),
            r.latency.quantile_micros(0.99).to_string(),
        ]);
    }

    let find = |config: &str, t: usize| {
        samples
            .iter()
            .find(|s| s.config == config && s.threads == t)
            .map(Sample::ops_per_s)
            .unwrap_or(0.0)
    };
    // The headline comparison: durable writers at the same concurrency,
    // sharing fsyncs (group) vs paying one each (per_op).
    let speedup = find("group", threads) / find("per_op", threads).max(1e-9);
    println!("group-commit vs per-op fsync at {threads} threads: {speedup:.2}x");

    let json = render_json(docs, smoke, &samples, speedup);
    std::fs::write(&out_path, &json).expect("write BENCH_write.json");
    eprintln!("wrote {out_path}");

    if smoke {
        let group = find("group", threads);
        assert!(
            group >= SMOKE_GROUP_FLOOR_OPS_PER_S,
            "durable group-commit throughput {group:.0} ops/s fell below the \
             floor of {SMOKE_GROUP_FLOOR_OPS_PER_S} ops/s"
        );
        // No relative group-vs-per-op assert here: on runners where /tmp
        // is tmpfs, fsync is nearly free and the comparison is noise. The
        // speedup is recorded in the JSON for machines where it matters.
        println!(
            "SMOKE OK: durable group-commit {group:.0} ops/s >= {SMOKE_GROUP_FLOOR_OPS_PER_S}"
        );
    }
}
