//! Ablation study over the paper's §4 design choices:
//!
//! 1. **Edge-weight strategies** (§4.3): link count vs `A·D` vs `A+D`
//!    under both partitioners — the paper reports "the new partitioning
//!    algorithm in combination with edge weights set to A*D gave similar
//!    results to the old partitioning algorithm, while the other
//!    combinations were not as good."
//! 2. **Center preselection** (§4.2): on/off — the paper reports "some
//!    decrease in cover size, but the effects were marginal."
//! 3. **PSG recursion threshold** (§4.1): direct `H̄` computation vs
//!    forced chunked recursion — both must produce identical covers, at
//!    different memory/time trade-offs.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin ablations [--scale 0.05]
//! ```

use hopi_bench::{dblp_collection, scale_arg, scaled_nx_budget, TablePrinter};
use hopi_build::{build_index, BuildConfig, JoinAlgorithm, PartitionerChoice};
use hopi_graph::TransitiveClosure;
use hopi_partition::{EdgeWeightStrategy, OldPartitionerConfig, TcPartitionerConfig};

fn main() {
    let scale = scale_arg(0.05);
    let collection = dblp_collection(scale);
    let connections =
        TransitiveClosure::from_graph(&collection.element_graph()).connection_count() as u64;
    println!(
        "ablations — DBLP-like @ scale {scale}: {} docs, closure {connections} connections\n",
        collection.doc_count()
    );
    let budget = scaled_nx_budget(10.0, connections);
    let node_cap = (collection.element_count() / 4) as u64;

    println!("1) edge-weight strategies (§4.3)");
    let t = TablePrinter::new(&[
        ("partitioner", 14),
        ("weights", 14),
        ("parts", 6),
        ("xlinks", 8),
        ("time_ms", 8),
        ("size", 10),
        ("compr", 7),
    ]);
    for strategy in [
        EdgeWeightStrategy::LinkCount,
        EdgeWeightStrategy::AncTimesDesc,
        EdgeWeightStrategy::AncPlusDesc,
    ] {
        for (pname, partitioner) in [
            (
                "old (nodes)",
                PartitionerChoice::Old(OldPartitionerConfig {
                    max_nodes_per_partition: node_cap,
                    strategy,
                    ..Default::default()
                }),
            ),
            (
                "new (closure)",
                PartitionerChoice::Tc(TcPartitionerConfig {
                    max_connections_per_partition: budget,
                    strategy,
                    ..Default::default()
                }),
            ),
        ] {
            let (_, report) = build_index(
                &collection,
                &BuildConfig {
                    partitioner,
                    join: JoinAlgorithm::Psg,
                    ..Default::default()
                },
            );
            t.row(&[
                pname.into(),
                format!("{strategy:?}"),
                report.partitions.to_string(),
                report.cross_links.to_string(),
                report.total_ms.to_string(),
                report.cover_size.to_string(),
                format!("{:.1}", report.compression_vs(connections)),
            ]);
        }
    }

    println!("\n2) link-target center preselection (§4.2)");
    let t = TablePrinter::new(&[
        ("preselect", 10),
        ("time_ms", 8),
        ("size", 10),
        ("delta", 8),
    ]);
    let mut base_size = 0usize;
    for preselect in [false, true] {
        let (_, report) = build_index(
            &collection,
            &BuildConfig {
                partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                    max_connections_per_partition: budget,
                    ..Default::default()
                }),
                join: JoinAlgorithm::Psg,
                preselect_link_targets: preselect,
                ..Default::default()
            },
        );
        let delta = if preselect {
            format!("{:+}", report.cover_size as i64 - base_size as i64)
        } else {
            base_size = report.cover_size;
            "-".into()
        };
        t.row(&[
            preselect.to_string(),
            report.total_ms.to_string(),
            report.cover_size.to_string(),
            delta,
        ]);
    }

    println!("\n3) PSG recursion threshold (§4.1)");
    let t = TablePrinter::new(&[
        ("threshold", 10),
        ("chunks", 7),
        ("join_ms", 8),
        ("size", 10),
    ]);
    let mut sizes = Vec::new();
    for threshold in [usize::MAX, 256, 64, 16] {
        let (_, report) = build_index(
            &collection,
            &BuildConfig {
                partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                    max_connections_per_partition: budget,
                    ..Default::default()
                }),
                join: JoinAlgorithm::Psg,
                psg_direct_threshold: threshold,
                ..Default::default()
            },
        );
        let chunks = report.psg.as_ref().map_or(0, |p| p.chunks);
        t.row(&[
            if threshold == usize::MAX {
                "direct".into()
            } else {
                threshold.to_string()
            },
            chunks.to_string(),
            report.join_ms.to_string(),
            report.cover_size.to_string(),
        ]);
        sizes.push(report.cover_size);
    }
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "chunked recursion must reproduce the direct cover exactly: {sizes:?}"
    );
    println!("  (all thresholds produce identical covers ✓)");
}
