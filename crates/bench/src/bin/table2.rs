//! Regenerates **Table 2**: "Index build time and size with the baseline
//! algorithm (top) and with the new algorithm for cover joining with
//! different partitioning algorithms and partition size limits."
//!
//! Rows:
//! * `baseline` — old partitioner + **old** incremental join (§3.3);
//! * `P5/P10/P20/P50` — old node-capped partitioner (caps scaled from the
//!   paper's `x·10⁴` elements) + **new** PSG join (§4.1);
//! * `single` — one partition per document + new join;
//! * `N10/N25/N50/N100` — new closure-budget partitioner (budgets scaled
//!   from the paper's `x·10⁵` connections) + new join;
//! * `flat` — no partitioning (the §7.2 "45 hours / 80 GB" baseline, which
//!   at reduced scale becomes merely *much* slower);
//! * `presel` — N10 + link-target center preselection (§4.2).
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin table2 [--scale 0.05] [--flat]
//! ```

use hopi_bench::{
    dblp_collection, paper, scale_arg, scaled_nx_budget, scaled_px_cap, TablePrinter,
};
use hopi_build::{build_index, BuildConfig, JoinAlgorithm, PartitionerChoice};
use hopi_graph::TransitiveClosure;
use hopi_partition::{OldPartitionerConfig, TcPartitionerConfig};
use hopi_xml::CollectionStats;

fn main() {
    let scale = scale_arg(0.05);
    let include_flat = std::env::args().any(|a| a == "--flat") || scale <= 0.06;
    let collection = dblp_collection(scale);
    let stats = CollectionStats::of(&collection);
    println!("Table 2 — DBLP-like collection @ scale {scale}: {stats}");

    let closure = TransitiveClosure::from_graph(&collection.element_graph());
    let connections = closure.connection_count() as u64;
    drop(closure);
    println!(
        "transitive closure: {connections} connections (paper: {:.0})\n",
        paper::DBLP_CLOSURE
    );

    let elements = stats.elements;
    let mut rows: Vec<(String, BuildConfig)> = Vec::new();

    rows.push((
        "baseline".into(),
        BuildConfig {
            partitioner: PartitionerChoice::Old(OldPartitionerConfig {
                max_nodes_per_partition: scaled_px_cap(5.0, elements),
                ..Default::default()
            }),
            join: JoinAlgorithm::Incremental,
            ..Default::default()
        },
    ));
    for x in [2.0, 5.0, 10.0, 20.0, 50.0] {
        let cap = scaled_px_cap(x, elements);
        if cap >= elements as u64 {
            println!(
                "P{x:.0}: scaled cap {cap} ≥ collection ({elements} elements) — degenerates to flat, skipped"
            );
            continue;
        }
        rows.push((
            format!("P{x:.0}"),
            BuildConfig {
                partitioner: PartitionerChoice::Old(OldPartitionerConfig {
                    max_nodes_per_partition: cap,
                    ..Default::default()
                }),
                join: JoinAlgorithm::Psg,
                ..Default::default()
            },
        ));
    }
    rows.push((
        "single".into(),
        BuildConfig {
            partitioner: PartitionerChoice::PerDocument,
            join: JoinAlgorithm::Psg,
            ..Default::default()
        },
    ));
    for x in [10.0, 25.0, 50.0, 100.0] {
        rows.push((
            format!("N{x:.0}"),
            BuildConfig {
                partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                    max_connections_per_partition: scaled_nx_budget(x, connections),
                    ..Default::default()
                }),
                join: JoinAlgorithm::Psg,
                ..Default::default()
            },
        ));
    }
    rows.push((
        "presel(N10)".into(),
        BuildConfig {
            partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                max_connections_per_partition: scaled_nx_budget(10.0, connections),
                ..Default::default()
            }),
            join: JoinAlgorithm::Psg,
            preselect_link_targets: true,
            ..Default::default()
        },
    ));
    if include_flat {
        rows.push((
            "flat".into(),
            BuildConfig {
                partitioner: PartitionerChoice::Flat,
                join: JoinAlgorithm::Psg,
                threads: 1,
                ..Default::default()
            },
        ));
    }

    let t = TablePrinter::new(&[
        ("algorithm", 12),
        ("parts", 6),
        ("xlinks", 7),
        ("time", 10),
        ("covers_ms", 10),
        ("join_ms", 8),
        ("size", 10),
        ("compression", 12),
    ]);
    for (name, cfg) in rows {
        let (index, report) = build_index(&collection, &cfg);
        t.row(&[
            name,
            report.partitions.to_string(),
            report.cross_links.to_string(),
            format!("{:.1}s", report.total_ms as f64 / 1000.0),
            report.covers_ms.to_string(),
            report.join_ms.to_string(),
            report.cover_size.to_string(),
            format!("{:.1}", report.compression_vs(connections)),
        ]);
        drop(index);
    }

    println!("\npaper (full scale, Table 2):");
    let t = TablePrinter::new(&[
        ("algorithm", 12),
        ("time", 10),
        ("size", 12),
        ("compression", 12),
    ]);
    for (a, time, size, c) in [
        ("baseline", "11,400s", "15,976,677", "21.6"),
        ("P5", "820.8s", "9,980,892", "34.6"),
        ("P10", "1,198.2s", "10,002,244", "34.5"),
        ("P20", "2,286.8s", "11,646,499", "29.6"),
        ("P50", "7,835.8s", "12,033,309", "28.7"),
        ("single", "22,778.0s", "12,384,432", "27.9"),
        ("N10", "1,359.7s", "9,999,052", "34.5"),
        ("N25", "2,368.3s", "10,601,986", "32.5"),
        ("N50", "3,635.8s", "10,274,871", "33.6"),
        ("N100", "6,118.9s", "12,777,218", "27.0"),
        ("flat", "163,380s", "1,289,930", "267.4"),
    ] {
        t.row(&[a.into(), time.into(), size.into(), c.into()]);
    }
}
