//! Content-and-structure throughput: the term-level inverted index fused
//! into path evaluation, on an INEX-shaped collection with Zipf element
//! text.
//!
//! Three workloads, each on the mutable engine and the frozen snapshot
//! (which carries a [`hopi_text::FrozenTextIndex`] with CSR posting
//! buffers), on 1 and N reader threads:
//!
//! * `structure` — pure structural path expressions, the no-text baseline
//!   the content workloads are compared against.
//! * `content` — the same step shapes with `contains(...)`/`about(...)`
//!   predicates, mixing hot (`term0`), mid-vocabulary, and out-of-vocabulary
//!   terms so the planner exercises both posting-driven pre-filtering and
//!   candidate post-filtering.
//! * `ranked` — content expressions through distance-ranked top-k with
//!   BM25 score fusion (paper §5.1 extended with term scores).
//!
//! Emits `BENCH_text.json` and enforces a single-thread frozen `content`
//! QPS floor so a posting-list or planner regression fails loudly in CI.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin text_throughput \
//!     [--scale 0.004] [--threads N] [--smoke] [--out BENCH_text.json]
//! ```

use hopi_bench::{add_cross_links, flag_arg, inex_collection, scale_arg, thread_ladder};
use hopi_build::Hopi;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// One measured cell of the matrix.
struct Sample {
    workload: &'static str,
    mode: &'static str,
    threads: usize,
    ops: usize,
    elapsed_ms: f64,
}

impl Sample {
    fn qps(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

const STRUCTURE_EXPRS: [&str; 3] = ["//article//fig", "//sec//p", "/article/bdy//ss1"];

/// Content-and-structure mix: hot term, mid-vocabulary term, conjunction,
/// disjunction, and an out-of-vocabulary miss (the planner should spend
/// almost nothing on it — the posting list is empty).
const CONTENT_EXPRS: [&str; 5] = [
    "//article//p[contains(., \"term0\")]",
    "//sec//p[contains(., \"term7\")]",
    "//article//sec[contains(., \"term0 term1\")]",
    "//sec//p[about(., \"term2 term5 term9\")]",
    "//article//p[contains(., \"zzz_out_of_vocab\")]",
];

const RANKED_EXPRS: [&str; 3] = [
    "//article//p[about(., \"term0 term3\")]",
    "//article//sec[contains(., \"term1\")]",
    "//sec//p[about(., \"term4 term8\")]",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = scale_arg(if smoke { 0.0006 } else { 0.004 });
    let out_path = flag_arg(&args, "--out").unwrap_or_else(|| "BENCH_text.json".into());
    let reader_threads: usize = flag_arg(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(4)
        });

    // INEX-shaped collection (the generator fills Zipf element text by
    // default) plus cross-document links, built distance-aware so the
    // ranked workload runs.
    let mut collection = inex_collection(scale);
    add_cross_links(&mut collection);
    let hopi = Hopi::builder()
        .distance_aware(true)
        .build(collection)
        .expect("valid generated collection");
    let stats = hopi.stats();
    eprintln!(
        "text_throughput — INEX-like @ scale {scale}: {} docs, {} elements, {} links; \
         term index: {} terms, {} postings ({} bytes), {} texted elements; \
         {reader_threads} reader threads",
        stats.documents,
        stats.elements,
        stats.links,
        stats.text.vocabulary,
        stats.text.postings,
        stats.text.postings_bytes,
        stats.text.indexed_elements
    );

    let (struct_rounds, content_rounds, ranked_rounds) =
        if smoke { (2, 2, 2) } else { (10, 10, 5) };

    let snapshot = hopi.snapshot();
    let engine = Arc::new(RwLock::new(hopi));

    let mut samples: Vec<Sample> = Vec::new();
    for &threads in &thread_ladder(reader_threads) {
        for (workload, exprs, rounds, ranked) in [
            ("structure", &STRUCTURE_EXPRS[..], struct_rounds, false),
            ("content", &CONTENT_EXPRS[..], content_rounds, false),
            ("ranked", &RANKED_EXPRS[..], ranked_rounds, true),
        ] {
            samples.push(run(
                workload,
                "mutable",
                threads,
                rounds * exprs.len(),
                || {
                    let engine = engine.clone();
                    move || {
                        let mut total = 0usize;
                        for _ in 0..rounds {
                            for expr in exprs {
                                let guard = engine.read();
                                total += if ranked {
                                    guard.query_ranked(expr).expect("valid expr").len()
                                } else {
                                    guard.query(expr).expect("valid expr").len()
                                };
                            }
                        }
                        total
                    }
                },
            ));
            samples.push(run(
                workload,
                "frozen",
                threads,
                rounds * exprs.len(),
                || {
                    let snap = snapshot.clone();
                    move || {
                        let mut total = 0usize;
                        for _ in 0..rounds {
                            for expr in exprs {
                                total += if ranked {
                                    snap.query_ranked(expr).expect("valid expr").len()
                                } else {
                                    snap.query(expr).expect("valid expr").len()
                                };
                            }
                        }
                        total
                    }
                },
            ));
        }
    }

    // Persist and print the measurements *before* the regression gate, so
    // a failing floor still leaves the trajectory data to diagnose it.
    let ss = snapshot.stats();
    let json = render_json(scale, smoke, &ss, &samples);
    std::fs::write(&out_path, &json).expect("write BENCH_text.json");
    eprintln!("wrote {out_path}");
    print_table(&samples);

    // Regression floor: frozen single-thread content-and-structure
    // evaluation. The posting lists make content predicates *cheaper* than
    // their structural skeletons; a drop below the floor means the term
    // index stopped pulling its weight.
    let floor = if smoke { 20.0 } else { 100.0 };
    let content_frozen = samples
        .iter()
        .find(|s| s.workload == "content" && s.mode == "frozen" && s.threads == 1)
        .map(Sample::qps)
        .expect("content/frozen/1t sample");
    assert!(
        content_frozen >= floor,
        "content workload regressed: {content_frozen:.1} QPS < floor {floor}"
    );
}

/// Runs `make_worker()` on `threads` threads; every thread runs the full
/// op script, so total ops = script_ops × threads (aggregate throughput).
fn run<W, F>(
    workload: &'static str,
    mode: &'static str,
    threads: usize,
    script_ops: usize,
    make_worker: F,
) -> Sample
where
    W: FnOnce() -> usize + Send + 'static,
    F: Fn() -> W,
{
    let t0 = Instant::now();
    let mut sink = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(make_worker())).collect();
        for h in handles {
            sink += h.join().expect("reader thread");
        }
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1000.0;
    std::hint::black_box(sink);
    Sample {
        workload,
        mode,
        threads,
        ops: script_ops * threads,
        elapsed_ms,
    }
}

fn render_json(
    scale: f64,
    smoke: bool,
    ss: &hopi_build::SnapshotStats,
    samples: &[Sample],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"collection\": {{\"kind\": \"inex-linked\", \"scale\": {scale}, \
         \"documents\": {}, \"elements\": {}, \"links\": {}, \"cover_entries\": {}}},\n",
        ss.documents, ss.elements, ss.links, ss.cover_entries
    ));
    s.push_str(&format!(
        "  \"text_index\": {{\"vocabulary\": {}, \"postings\": {}, \
         \"postings_bytes\": {}, \"indexed_elements\": {}}},\n",
        ss.text_vocabulary, ss.text_postings, ss.text_postings_bytes, ss.text_indexed_elements
    ));
    s.push_str(&format!("  \"smoke\": {smoke},\n  \"results\": [\n"));
    for (i, r) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \
             \"ops\": {}, \"elapsed_ms\": {:.3}, \"qps\": {:.1}}}{}\n",
            r.workload,
            r.mode,
            r.threads,
            r.ops,
            r.elapsed_ms,
            r.qps(),
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"content_vs_structure\": {\n");
    let mut cells: Vec<String> = Vec::new();
    for threads in samples
        .iter()
        .map(|s| s.threads)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let find = |workload: &str| {
            samples
                .iter()
                .find(|s| s.workload == workload && s.mode == "frozen" && s.threads == threads)
                .map(Sample::qps)
        };
        if let (Some(content), Some(structure)) = (find("content"), find("structure")) {
            cells.push(format!(
                "    \"frozen_{threads}t\": {:.2}",
                content / structure.max(1e-9)
            ));
        }
    }
    s.push_str(&cells.join(",\n"));
    s.push_str("\n  }\n}\n");
    s
}

fn print_table(samples: &[Sample]) {
    let t = hopi_bench::TablePrinter::new(&[
        ("workload", 12),
        ("mode", 8),
        ("threads", 7),
        ("ops", 10),
        ("ms", 10),
        ("qps", 12),
    ]);
    for r in samples {
        t.row(&[
            r.workload.into(),
            r.mode.into(),
            r.threads.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.qps()),
        ]);
    }
}
