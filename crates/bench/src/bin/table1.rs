//! Regenerates **Table 1**: "Important features of our collections of XML
//! documents" — documents, elements, links, serialized size — for the
//! DBLP-like and INEX-like synthetic collections, next to the paper's
//! full-scale numbers.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin table1 [--scale 0.05]
//! ```

use hopi_bench::{dblp_collection, inex_collection, scale_arg, TablePrinter};
use hopi_xml::CollectionStats;

fn main() {
    let scale = scale_arg(0.05);
    let inex_scale = scale * 0.04; // INEX is ~70x larger; keep it laptop-sized.

    println!("Table 1 — collection features (scale {scale} for DBLP-like, {inex_scale:.4} for INEX-like)\n");
    let t = TablePrinter::new(&[
        ("collection", 14),
        ("# docs", 9),
        ("# els", 11),
        ("# links", 9),
        ("size", 10),
    ]);

    let dblp = dblp_collection(scale);
    let s = CollectionStats::of(&dblp);
    t.row(&[
        "DBLP-like".into(),
        s.docs.to_string(),
        s.elements.to_string(),
        s.inter_links.to_string(),
        s.size_human(),
    ]);

    let inex = inex_collection(inex_scale);
    let s = CollectionStats::of(&inex);
    t.row(&[
        "INEX-like".into(),
        s.docs.to_string(),
        s.elements.to_string(),
        s.inter_links.to_string(),
        s.size_human(),
    ]);

    println!("\npaper (full scale):");
    let t = TablePrinter::new(&[
        ("collection", 14),
        ("# docs", 9),
        ("# els", 11),
        ("# links", 9),
        ("size", 10),
    ]);
    t.row(&[
        "DBLP".into(),
        "6,210".into(),
        "168,991".into(),
        "25,368".into(),
        "13.2MB".into(),
    ]);
    t.row(&[
        "INEX".into(),
        "12,232".into(),
        "12,061,348".into(),
        "408,085".into(),
        "534MB".into(),
    ]);

    let ratio_els = |s: &CollectionStats, full: f64| s.elements as f64 / full;
    let dblp_stats = CollectionStats::of(&dblp);
    println!(
        "\nDBLP-like per-document shape: {:.1} elements/doc (paper 27.2), {:.2} links/doc (paper 4.08)",
        dblp_stats.elements_per_doc(),
        dblp_stats.links_per_doc()
    );
    println!(
        "scale factor realized: {:.4} of the paper's element count",
        ratio_els(&dblp_stats, 168_991.0)
    );
}
