//! Regenerates the **§7.2 INEX result**: "For the INEX collection, the
//! resulting cover has 33,701,084 entries … less than three index entries
//! per node seems to be quite efficient."
//!
//! Builds the index over the link-free INEX-like collection and reports
//! entries per element.
//!
//! ```sh
//! cargo run -p hopi-bench --release --bin inex_stats [--scale 0.002]
//! ```

use hopi_bench::{inex_collection, scale_arg};
use hopi_build::{build_index, BuildConfig, JoinAlgorithm, PartitionerChoice};
use hopi_partition::TcPartitionerConfig;
use hopi_xml::CollectionStats;

fn main() {
    let scale = scale_arg(0.002);
    let collection = inex_collection(scale);
    let stats = CollectionStats::of(&collection);
    println!("INEX-like collection @ scale {scale}: {stats}");

    let (index, report) = build_index(
        &collection,
        &BuildConfig {
            partitioner: PartitionerChoice::Tc(TcPartitionerConfig {
                max_connections_per_partition: 500_000,
                ..Default::default()
            }),
            join: JoinAlgorithm::Psg,
            ..Default::default()
        },
    );
    let per_node = report.cover_size as f64 / stats.elements.max(1) as f64;
    println!(
        "cover: {} entries over {} partitions in {:.1}s → {per_node:.2} entries/node",
        report.cover_size,
        report.partitions,
        report.total_ms as f64 / 1000.0
    );
    println!("paper: 33,701,084 entries over 12,061,348 nodes → 2.79 entries/node, ~4 hours");
    assert!(
        per_node < 3.5,
        "tree collections must stay near the paper's <3 entries/node"
    );
    drop(index);
}
