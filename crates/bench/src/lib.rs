//! # hopi-bench — the harness regenerating the paper's evaluation (§7)
//!
//! One binary per table/experiment:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — collection features (DBLP, INEX) |
//! | `table2` | Table 2 — build time/size/compression for baseline, Px, single, Nx (+ flat) |
//! | `maintenance` | §7.3 — separator fraction, separator-test / deletion / insertion timings |
//! | `distance_overhead` | §5 — space and time overhead of the distance-aware cover |
//! | `inex_stats` | §7.2 — INEX build: cover entries per node |
//!
//! All binaries accept a `--scale <f64>` argument (default 0.05 for DBLP,
//! 0.002 for INEX) scaling the paper's collection sizes; absolute numbers
//! shift, the *shape* of the results is preserved (see EXPERIMENTS.md).
//!
//! Criterion microbenches live in `benches/`: query latency and algorithmic
//! kernels.

#![forbid(unsafe_code)]

use hopi_xml::generator::{dblp, inex, DblpConfig, InexConfig};
use hopi_xml::Collection;

/// Paper-scale constants for translating Table 2 parameter names.
pub mod paper {
    /// Elements in the paper's DBLP subset.
    pub const DBLP_ELEMENTS: f64 = 168_991.0;
    /// Transitive-closure connections of the paper's DBLP subset.
    pub const DBLP_CLOSURE: f64 = 344_992_370.0;
    /// Cover size of the paper's no-partitioning baseline.
    pub const DBLP_FLAT_COVER: f64 = 1_289_930.0;
    /// Cover size of the paper's old-join baseline.
    pub const DBLP_OLD_JOIN_COVER: f64 = 15_976_677.0;
}

/// Parses `--scale <f>` (or a bare positional float) from argv. A number
/// that is the *value of another flag* (`--threads 4`) is not a scale.
pub fn scale_arg(default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return v;
            }
        }
        let follows_flag = args
            .get(i.wrapping_sub(1))
            .is_some_and(|prev| prev.starts_with("--"));
        if let Ok(v) = a.parse::<f64>() {
            if i > 0 && !follows_flag {
                return v;
            }
        }
    }
    default
}

/// Extracts `--name value` from argv (the bench binaries' flag
/// convention).
pub fn flag_arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Runs `f`, recording its latency into `hist` on every 64th call
/// (indexed by `i`). Sampling keeps the two timer reads off most
/// iterations of sub-microsecond workloads, so the histogram reflects
/// the operation rather than the act of measuring it; quantiles over
/// the 1/64 sample converge to the true distribution's.
pub fn record_sampled<T>(hist: &hopi_obs::Histogram, i: usize, f: impl FnOnce() -> T) -> T {
    if i.is_multiple_of(64) {
        let sw = hopi_obs::Stopwatch::start();
        let out = f();
        hist.record_micros(sw.elapsed_micros());
        out
    } else {
        f()
    }
}

/// The thread counts a throughput bench measures: single-threaded plus
/// the requested count (deduplicated when they coincide).
pub fn thread_ladder(n: usize) -> Vec<usize> {
    if n <= 1 {
        vec![1]
    } else {
        vec![1, n]
    }
}

/// The DBLP-like evaluation collection at a given scale.
pub fn dblp_collection(scale: f64) -> Collection {
    dblp(&DblpConfig::scaled(scale))
}

/// The INEX-like evaluation collection at a given scale.
pub fn inex_collection(scale: f64) -> Collection {
    inex(&InexConfig::scaled(scale))
}

/// Sprinkles deterministic cross-document links over a collection (about
/// two per document) so connection probes cross documents — the
/// generator's pure INEX has none, and the 24×7 serving scenario is about
/// *linked* collections. Used by the `query_throughput` and
/// `server_throughput` serving benches.
pub fn add_cross_links(collection: &mut Collection) {
    use rand::prelude::*;
    let docs: Vec<u32> = collection.doc_ids().collect();
    if docs.len() < 2 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(0x11e8);
    let want = docs.len() * 2;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < want && attempts < want * 8 {
        attempts += 1;
        let a = docs[rng.gen_range(0..docs.len())];
        let b = docs[rng.gen_range(0..docs.len())];
        if a == b {
            continue;
        }
        let la = rng.gen_range(0..collection.document(a).expect("live").len() as u32);
        let from = collection.global_id(a, la);
        let to = collection.global_id(b, 0);
        if collection.add_link(from, to) {
            added += 1;
        }
    }
}

/// Scales a paper `Px` node cap (`x·10⁴` of 168,991 elements) to a
/// collection with `elements` elements.
pub fn scaled_px_cap(x: f64, elements: usize) -> u64 {
    ((x * 1e4) * (elements as f64 / paper::DBLP_ELEMENTS)).max(8.0) as u64
}

/// Scales a paper `Nx` closure budget (`x·10⁵` of ~345M connections) to a
/// collection whose closure has `closure_connections` connections.
pub fn scaled_nx_budget(x: f64, closure_connections: u64) -> u64 {
    ((x * 1e5) * (closure_connections as f64 / paper::DBLP_CLOSURE)).max(64.0) as u64
}

/// Simple fixed-width table printer for the bench binaries.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer and emits the header row.
    pub fn new(columns: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = columns.iter().map(|&(_, w)| w).collect();
        let header: Vec<String> = columns
            .iter()
            .map(|&(name, w)| format!("{name:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        TablePrinter { widths }
    }

    /// Emits one data row.
    pub fn row(&self, cells: &[String]) {
        let formatted: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        println!("{}", formatted.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn px_cap_scales_linearly() {
        assert_eq!(scaled_px_cap(5.0, 168_991), 50_000);
        assert_eq!(scaled_px_cap(5.0, 16_899), 4_999);
        assert!(scaled_px_cap(5.0, 10) >= 8);
    }

    #[test]
    fn nx_budget_scales_linearly() {
        let full = scaled_nx_budget(10.0, 344_992_370);
        assert_eq!(full, 1_000_000);
        assert!(scaled_nx_budget(10.0, 3_449_923) > 0);
    }

    #[test]
    fn collections_generate() {
        assert!(dblp_collection(0.002).doc_count() > 5);
        assert!(inex_collection(0.0001).doc_count() >= 1);
    }
}
