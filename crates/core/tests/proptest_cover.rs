//! Property tests: on arbitrary digraphs the constructed 2-hop covers must
//! agree *exactly* with the transitive closure (soundness: no phantom
//! connections; completeness: every connection covered), and distance-aware
//! covers must report exact shortest path lengths.

use hopi_core::{CoverBuilder, DistanceCoverBuilder};
use hopi_graph::{DiGraph, DistanceClosure, TransitiveClosure};
use proptest::prelude::*;

fn arb_graph(max_n: u32, max_edges: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_edges);
        (Just(n), edges)
    })
}

fn build_graph(n: u32, edges: &[(u32, u32)]) -> DiGraph {
    let mut g = DiGraph::new();
    g.ensure_node(n - 1);
    for &(u, v) in edges {
        g.add_edge(u, v);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cover_equals_closure((n, edges) in arb_graph(30, 90)) {
        let g = build_graph(n, &edges);
        let tc = TransitiveClosure::from_graph(&g);
        let cover = CoverBuilder::new(&tc).build();
        cover.check_invariants();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(cover.connected(u, v), tc.contains(u, v),
                    "pair ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn cover_never_larger_than_closure((n, edges) in arb_graph(30, 90)) {
        // Worst case the greedy cover stores one Lout + one Lin entry per
        // connection; it must never exceed twice the non-reflexive closure.
        let g = build_graph(n, &edges);
        let tc = TransitiveClosure::from_graph(&g);
        let cover = CoverBuilder::new(&tc).build();
        let nonreflexive = tc.connection_count() - tc.iter_pairs().filter(|(u, v)| u == v).count();
        prop_assert!(cover.size() <= 2 * nonreflexive.max(1));
    }

    #[test]
    fn ancestors_descendants_match_closure((n, edges) in arb_graph(25, 70)) {
        let g = build_graph(n, &edges);
        let tc = TransitiveClosure::from_graph(&g);
        let cover = CoverBuilder::new(&tc).build();
        for u in 0..n {
            prop_assert_eq!(cover.descendants(u), tc.descendants(u).to_vec());
            prop_assert_eq!(cover.ancestors(u), tc.ancestors(u).to_vec());
        }
    }

    #[test]
    fn preselection_preserves_exactness((n, edges) in arb_graph(25, 70)) {
        let g = build_graph(n, &edges);
        let tc = TransitiveClosure::from_graph(&g);
        // Preselect a third of the nodes as forced centers (§4.2).
        let preselected: Vec<u32> = (0..n).step_by(3).collect();
        let (cover, _) = CoverBuilder::new(&tc).build_with_preselected(&preselected);
        cover.check_invariants();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(cover.connected(u, v), tc.contains(u, v));
            }
        }
    }

    #[test]
    fn distance_cover_exact((n, edges) in arb_graph(20, 50)) {
        let g = build_graph(n, &edges);
        let dc = DistanceClosure::from_graph(&g);
        let cover = DistanceCoverBuilder::new(&dc).build();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(cover.distance(u, v), dc.dist(u, v),
                    "distance ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn distance_enumeration_matches_rows((n, edges) in arb_graph(15, 40)) {
        let g = build_graph(n, &edges);
        let dc = DistanceClosure::from_graph(&g);
        let cover = DistanceCoverBuilder::new(&dc).build();
        for u in 0..n {
            let mut expect: Vec<(u32, u32)> =
                dc.out_row(u).iter().map(|(&v, &d)| (v, d)).collect();
            expect.sort_unstable();
            prop_assert_eq!(cover.descendants_with_distance(u), expect);
        }
    }
}
