//! The §3.3 link-integration primitive shared by the incremental cover join
//! and §6.1 incremental maintenance.
//!
//! Integrating one link `u → v` into an exact cover makes `v` the center of
//! every connection the link creates: each ancestor `a` of `u` (under the
//! current cover) receives `v` in `Lout(a)`, and each descendant `d` of `v`
//! receives `v` in `Lin(d)`. Every new connection decomposes as
//! `a →* u → v →* d` over *pre-existing* paths, so the updated cover is
//! again exact — which is why the incremental join can integrate the
//! cross-partition links one at a time, and why edge insertion during
//! maintenance reuses "the same method that was used to add a link between
//! partitions" (paper §6.1).

use crate::cover::TwoHopCover;

/// Integrates the link `u → v` into an exact cover, choosing `v` as the
/// center for all newly created connections. Returns the number of label
/// entries added.
///
/// The cover must be exact for the graph *without* the new edge; afterwards
/// it is exact for the graph *with* it.
pub fn integrate_link(cover: &mut TwoHopCover, u: u32, v: u32) -> usize {
    cover.ensure_node(u.max(v));
    let mut added = 0usize;
    // Snapshot before mutation: both enumerations must see the old cover.
    let ancestors = cover.ancestors(u); // includes u
    let descendants = cover.descendants(v); // includes v
    for &a in &ancestors {
        if cover.add_out(a, v) {
            added += 1;
        }
    }
    for &d in &descendants {
        if cover.add_in(d, v) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CoverBuilder;
    use hopi_graph::{DiGraph, TransitiveClosure};
    use rand::prelude::*;

    fn assert_exact(cover: &TwoHopCover, g: &DiGraph) {
        let tc = TransitiveClosure::from_graph(g);
        for u in 0..g.id_bound() as u32 {
            for v in 0..g.id_bound() as u32 {
                assert_eq!(cover.connected(u, v), tc.contains(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn joins_two_paths() {
        // 0 → 1 and 2 → 3, then link 1 → 2.
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let mut cover = CoverBuilder::new(&TransitiveClosure::from_graph(&g)).build();
        g.add_edge(1, 2);
        let added = integrate_link(&mut cover, 1, 2);
        assert!(added > 0);
        assert_exact(&cover, &g);
        cover.check_invariants();
    }

    #[test]
    fn closing_a_cycle_stays_exact() {
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let mut cover = CoverBuilder::new(&TransitiveClosure::from_graph(&g)).build();
        for (u, v) in [(1, 2), (3, 0)] {
            g.add_edge(u, v);
            integrate_link(&mut cover, u, v);
        }
        assert!(cover.connected(2, 1), "cycle closes");
        assert_exact(&cover, &g);
    }

    #[test]
    fn duplicate_integration_adds_nothing() {
        let mut g = DiGraph::new();
        g.add_edge(0, 1);
        let mut cover = CoverBuilder::new(&TransitiveClosure::from_graph(&g)).build();
        g.add_edge(0, 1);
        integrate_link(&mut cover, 0, 1);
        let size = cover.size();
        assert_eq!(integrate_link(&mut cover, 0, 1), 0);
        assert_eq!(cover.size(), size);
    }

    #[test]
    fn random_link_sequences_stay_exact() {
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..10 {
            let n = 14u32;
            let mut g = DiGraph::new();
            g.ensure_node(n - 1);
            for _ in 0..12 {
                g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n));
            }
            let mut cover = CoverBuilder::new(&TransitiveClosure::from_graph(&g)).build();
            for _ in 0..10 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u == v {
                    continue;
                }
                g.add_edge(u, v);
                integrate_link(&mut cover, u, v);
                assert_exact(&cover, &g);
            }
            cover.check_invariants();
            let _ = round;
        }
    }
}
