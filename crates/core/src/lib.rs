//! # hopi-core — the 2-hop cover at the heart of the HOPI index
//!
//! A *2-hop cover* (Cohen, Halperin, Kaplan, Zwick; SODA 2002) encodes the
//! reflexive-transitive closure of a graph in per-node label sets: every
//! node `v` carries `Lin(v)` (center nodes that reach `v`) and `Lout(v)`
//! (center nodes reachable from `v`), and `u →* v` holds iff
//! `Lout(u) ∩ Lin(v) ≠ ∅` — one hop from `u` to a common center `w`, one
//! hop from `w` to `v` (paper §3.1).
//!
//! This crate implements:
//!
//! * [`cover::TwoHopCover`] — labels with an inverted center index for
//!   ancestor/descendant enumeration and mutation (construction joins and
//!   incremental maintenance both edit labels in place).
//! * [`densest`] — the linear-time 2-approximation of the densest subgraph
//!   of a center graph (iterative min-degree peeling, paper §3.2).
//! * [`builder::CoverBuilder`] — Cohen's greedy cover construction with
//!   HOPI's lazy-priority-queue optimization and the link-target center
//!   preselection of paper §4.2.
//! * [`distance::DistanceCover`] / [`distance::DistanceCoverBuilder`] — the
//!   distance-aware cover of paper §5: labels carry distances to centers, a
//!   center may only cover a connection it lies on a *shortest* path of, and
//!   initial center-graph densities are estimated from ≤ 13,600 sampled
//!   candidate edges with a 98% confidence interval.
//! * [`index::HopiIndex`] — the built-index handle the query, maintenance,
//!   and storage layers exchange.
//! * [`frozen::FrozenCover`] — an immutable CSR snapshot of a cover for the
//!   read-dominated serving path: contiguous label/holder rows,
//!   allocation-free probes, batched `connected_many`.
//! * [`source::LabelSource`] — the query interface shared by the mutable
//!   and frozen representations (path evaluation is written against it).
//! * [`old_join`] — the §3.3 single-link cover-integration primitive shared
//!   by the incremental cover join and §6.1 maintenance.
//!
//! Following the paper's storage convention (§3.4), a node is **never stored
//! in its own label sets** — queries special-case the implicit self entries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cover;
pub mod densest;
pub mod distance;
pub mod frozen;
pub mod index;
pub mod old_join;
pub mod source;

pub use builder::{BuildStats, CoverBuilder};
pub use cover::TwoHopCover;
pub use densest::{densest_subgraph, BipartiteCenterGraph, DensestResult};
pub use distance::{DistanceCover, DistanceCoverBuilder};
pub use frozen::FrozenCover;
pub use index::HopiIndex;
pub use source::{CoverStats, LabelSource};
