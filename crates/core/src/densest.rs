//! Densest-subgraph 2-approximation on bipartite center graphs.
//!
//! For a candidate center `w`, the *center graph* `CG_w` is the undirected
//! bipartite graph with left vertices `u ∈ Cin(w)` (ancestors of `w`), right
//! vertices `v ∈ Cout(w)` (descendants), and an edge `(u, v)` for every *not
//! yet covered* connection through `w` (paper §3.2). The density of a
//! subgraph is `|E'| / |V'|`; the densest subgraph determines the label sets
//! `C'in`, `C'out` that the greedy cover construction commits to.
//!
//! The densest subgraph is 2-approximated by the classic peeling algorithm:
//! iteratively remove a vertex of minimum degree and return the intermediate
//! subgraph of maximum density.

use hopi_graph::FixedBitSet;

/// A materialized bipartite center graph.
///
/// `adj[i]` holds the right-side *indices* adjacent to left vertex `i`;
/// `left`/`right` translate side indices back to graph node ids. The same
/// node may legally appear on both sides (cycles through the center).
#[derive(Debug, Clone)]
pub struct BipartiteCenterGraph {
    /// Left-side node ids (`C'in` candidates — ancestors of the center).
    pub left: Vec<u32>,
    /// Right-side node ids (`C'out` candidates — descendants of the center).
    pub right: Vec<u32>,
    /// `adj[i]` = bit set over `0..right.len()`.
    pub adj: Vec<FixedBitSet>,
}

impl BipartiteCenterGraph {
    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(FixedBitSet::count).sum()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.adj.iter().all(FixedBitSet::is_empty)
    }
}

/// Result of the densest-subgraph approximation.
#[derive(Debug, Clone)]
pub struct DensestResult {
    /// Chosen left-side node ids (`C'in`).
    pub left: Vec<u32>,
    /// Chosen right-side node ids (`C'out`).
    pub right: Vec<u32>,
    /// Density `|E'| / |V'|` of the chosen subgraph.
    pub density: f64,
    /// Edge count of the chosen subgraph.
    pub edges: usize,
}

/// Peeling 2-approximation of the densest subgraph.
///
/// Runs in `O(V + E)` using a bucket queue over degrees. Returns `None` for
/// an edgeless graph.
pub fn densest_subgraph(g: &BipartiteCenterGraph) -> Option<DensestResult> {
    let nl = g.left.len();
    let nr = g.right.len();
    let n = nl + nr;
    if n == 0 {
        return None;
    }
    // Reverse adjacency (right -> left indices).
    let mut radj: Vec<FixedBitSet> = vec![FixedBitSet::new(nl); nr];
    let mut ldeg = vec![0usize; nl];
    let mut rdeg = vec![0usize; nr];
    let mut edges = 0usize;
    for (i, row) in g.adj.iter().enumerate() {
        for j in row.iter() {
            radj[j as usize].insert(i as u32);
            ldeg[i] += 1;
            rdeg[j as usize] += 1;
            edges += 1;
        }
    }
    if edges == 0 {
        return None;
    }

    // Bucket queue over degrees with lazy entries. Vertex encoding:
    // 0..nl = left i, nl..n = right j.
    let max_deg = ldeg.iter().chain(rdeg.iter()).copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    let deg = |v: usize, ldeg: &[usize], rdeg: &[usize]| {
        if v < nl {
            ldeg[v]
        } else {
            rdeg[v - nl]
        }
    };
    for v in 0..n {
        buckets[deg(v, &ldeg, &rdeg)].push(v);
    }
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut cur_edges = edges;
    let mut removal_order: Vec<usize> = Vec::with_capacity(n);

    let mut best_density = cur_edges as f64 / alive_count as f64;
    let mut best_prefix = 0usize; // number of removals at the best point

    let mut cursor = 0usize; // lowest possibly-non-empty bucket
    while alive_count > 0 {
        // Find the minimum-degree alive vertex (lazy bucket scan).
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor >= buckets.len() {
            break;
        }
        let v = buckets[cursor].pop().expect("bucket non-empty");
        if !alive[v] || deg(v, &ldeg, &rdeg) != cursor {
            continue; // stale entry
        }
        // Remove v.
        alive[v] = false;
        alive_count -= 1;
        removal_order.push(v);
        if v < nl {
            let i = v;
            for j in g.adj[i].iter() {
                let j = j as usize;
                if alive[nl + j] {
                    rdeg[j] -= 1;
                    cur_edges -= 1;
                    if rdeg[j] < cursor {
                        cursor = rdeg[j];
                    }
                    buckets[rdeg[j]].push(nl + j);
                }
            }
        } else {
            let j = v - nl;
            for i in radj[j].iter() {
                let i = i as usize;
                if alive[i] {
                    ldeg[i] -= 1;
                    cur_edges -= 1;
                    if ldeg[i] < cursor {
                        cursor = ldeg[i];
                    }
                    buckets[ldeg[i]].push(i);
                }
            }
        }
        if alive_count > 0 {
            let d = cur_edges as f64 / alive_count as f64;
            if d > best_density {
                best_density = d;
                best_prefix = removal_order.len();
            }
        }
    }

    // Reconstruct the best subgraph: everything except the first
    // `best_prefix` removals.
    let mut in_best = vec![true; n];
    for &v in &removal_order[..best_prefix] {
        in_best[v] = false;
    }
    let left: Vec<u32> = (0..nl).filter(|&i| in_best[i]).map(|i| g.left[i]).collect();
    let right: Vec<u32> = (0..nr)
        .filter(|&j| in_best[nl + j])
        .map(|j| g.right[j])
        .collect();
    // Count edges of the best subgraph.
    let mut right_alive = FixedBitSet::new(nr);
    for j in 0..nr {
        if in_best[nl + j] {
            right_alive.insert(j as u32);
        }
    }
    let best_edges: usize = (0..nl)
        .filter(|&i| in_best[i])
        .map(|i| g.adj[i].intersection_count(&right_alive))
        .sum();
    debug_assert!(
        (best_density - best_edges as f64 / (left.len() + right.len()).max(1) as f64).abs() < 1e-9
    );
    Some(DensestResult {
        left,
        right,
        density: best_density,
        edges: best_edges,
    })
}

/// Density of a complete bipartite graph with `a` left and `d` right
/// vertices: `a·d / (a+d)`. HOPI's optimization (paper §3.2): *initial*
/// center graphs are complete, hence their own densest subgraph, so this
/// value seeds the priority queue without materializing anything.
pub fn complete_bipartite_density(a: usize, d: usize) -> f64 {
    if a + d == 0 {
        return 0.0;
    }
    (a as f64 * d as f64) / (a + d) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(nl: usize, nr: usize, edges: &[(u32, u32)]) -> BipartiteCenterGraph {
        let mut adj = vec![FixedBitSet::new(nr); nl];
        for &(i, j) in edges {
            adj[i as usize].insert(j);
        }
        BipartiteCenterGraph {
            left: (0..nl as u32).collect(),
            right: (100..100 + nr as u32).collect(),
            adj,
        }
    }

    #[test]
    fn complete_graph_is_its_own_densest() {
        // K_{2,3}: density 6/5.
        let edges: Vec<(u32, u32)> = (0..2).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        let g = graph(2, 3, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!((r.density - 1.2).abs() < 1e-9);
        assert_eq!(r.left.len(), 2);
        assert_eq!(r.right.len(), 3);
        assert_eq!(r.edges, 6);
    }

    #[test]
    fn pendant_vertices_peeled() {
        // K_{2,2} (density 4/4 = 1) plus a pendant right vertex attached to
        // left 0 (full graph density 5/5 = 1). Peeling should isolate a
        // subgraph at least as dense as the full graph.
        let mut edges: Vec<(u32, u32)> = (0..2).flat_map(|i| (0..2).map(move |j| (i, j))).collect();
        edges.push((0, 2));
        let g = graph(2, 3, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!(r.density >= 1.0 - 1e-9);
    }

    #[test]
    fn star_density() {
        // One left vertex connected to 4 right: density 4/5.
        let edges: Vec<(u32, u32)> = (0..4).map(|j| (0, j)).collect();
        let g = graph(1, 4, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!((r.density - 0.8).abs() < 1e-9);
        assert_eq!(r.edges, 4);
    }

    #[test]
    fn empty_graph_none() {
        let g = graph(2, 2, &[]);
        assert!(densest_subgraph(&g).is_none());
        assert!(g.is_empty());
    }

    #[test]
    fn isolated_vertices_excluded_from_best() {
        // K_{2,2} plus an isolated left vertex: best subgraph must exclude
        // the isolated vertex (density 1.0 vs 0.8).
        let edges: Vec<(u32, u32)> = (0..2).flat_map(|i| (0..2).map(move |j| (i, j))).collect();
        let g = graph(3, 2, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!((r.density - 1.0).abs() < 1e-9);
        assert_eq!(r.left.len(), 2);
    }

    #[test]
    fn two_approximation_guarantee() {
        // Random-ish graph: peeling density must be ≥ half the true optimum.
        // True optimum here is K_{3,3} embedded among noise: density 9/6=1.5.
        let mut edges: Vec<(u32, u32)> = (0..3).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        edges.push((3, 3));
        edges.push((4, 4));
        let g = graph(6, 6, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!(r.density >= 0.75, "density {} < optimum/2", r.density);
    }

    #[test]
    fn complete_density_formula() {
        assert_eq!(complete_bipartite_density(0, 0), 0.0);
        assert!((complete_bipartite_density(2, 3) - 1.2).abs() < 1e-12);
        assert!((complete_bipartite_density(1, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn density_upper_bounded_by_complete() {
        let edges: Vec<(u32, u32)> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .filter(|&(i, j)| (i + j) % 3 != 0)
            .collect();
        let g = graph(4, 4, &edges);
        let r = densest_subgraph(&g).unwrap();
        assert!(r.density <= complete_bipartite_density(4, 4) + 1e-9);
    }
}
