//! The label-source abstraction: one query interface over the mutable and
//! frozen cover representations.
//!
//! Path evaluation (`hopi_query::eval`) only needs three primitives from
//! the index — the reachability probe and the two closure enumerations —
//! so it is written against this trait and runs unchanged against a live
//! [`TwoHopCover`](crate::TwoHopCover) /
//! [`HopiIndex`](crate::HopiIndex) or a read-optimized
//! [`FrozenCover`](crate::FrozenCover) snapshot.

use crate::cover::NodeId;

/// Anything that answers 2-hop cover queries: the connection probe plus
/// descendant/ancestor enumeration.
pub trait LabelSource {
    /// The reachability test `u →* v` (reflexive).
    fn connected(&self, u: NodeId, v: NodeId) -> bool;

    /// All descendants of `u` (including `u`), sorted.
    fn descendants(&self, u: NodeId) -> Vec<NodeId>;

    /// All ancestors of `u` (including `u`), sorted.
    fn ancestors(&self, u: NodeId) -> Vec<NodeId>;

    /// Is any source connected to `target`, excluding the reflexive
    /// `source == target` probe? The probing side of a `//` step;
    /// implementations may batch the row lookups.
    fn connected_from_any(&self, sources: &[NodeId], target: NodeId) -> bool {
        sources
            .iter()
            .any(|&u| u != target && self.connected(u, target))
    }
}

impl LabelSource for crate::TwoHopCover {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        crate::TwoHopCover::connected(self, u, v)
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        crate::TwoHopCover::descendants(self, u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        crate::TwoHopCover::ancestors(self, u)
    }
}

impl LabelSource for crate::HopiIndex {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        crate::HopiIndex::connected(self, u, v)
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        crate::HopiIndex::descendants(self, u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        crate::HopiIndex::ancestors(self, u)
    }
}

impl<S: LabelSource + ?Sized> LabelSource for &S {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        (**self).connected(u, v)
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        (**self).descendants(u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        (**self).ancestors(u)
    }

    fn connected_from_any(&self, sources: &[NodeId], target: NodeId) -> bool {
        (**self).connected_from_any(sources, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenCover, HopiIndex, TwoHopCover};

    fn probe<S: LabelSource>(s: &S) -> (bool, Vec<NodeId>, Vec<NodeId>, bool) {
        (
            s.connected(0, 2),
            s.descendants(0),
            s.ancestors(2),
            s.connected_from_any(&[0, 2], 2),
        )
    }

    #[test]
    fn all_representations_agree() {
        let mut cover = TwoHopCover::with_nodes(3);
        cover.add_out(0, 1);
        cover.add_in(2, 1);
        let frozen = FrozenCover::from_cover(&cover);
        let index = HopiIndex::from_cover(cover.clone());
        let expect = (true, vec![0, 1, 2], vec![0, 1, 2], true);
        assert_eq!(probe(&cover), expect);
        assert_eq!(probe(&index), expect);
        assert_eq!(probe(&frozen), expect);
        assert_eq!(probe(&&frozen), expect);
    }
}
