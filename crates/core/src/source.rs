//! The label-source abstraction: one query interface over the mutable and
//! frozen cover representations.
//!
//! Path evaluation (`hopi_query::eval`) is written against this trait and
//! runs unchanged against a live [`TwoHopCover`](crate::TwoHopCover) /
//! [`HopiIndex`](crate::HopiIndex) or a read-optimized
//! [`FrozenCover`](crate::FrozenCover) snapshot. Beyond the three closure
//! primitives (reachability probe, descendant/ancestor enumeration) it
//! exposes the **raw label and inverted rows** plus aggregate
//! [`CoverStats`], which is what the hop-join strategies and the
//! cost-based step planner in `hopi_query::plan` consume: a `//` step can
//! union inverted holder lists center-at-a-time instead of probing pairs,
//! and the planner can price each strategy from row lengths in O(1) per
//! node.

use crate::cover::NodeId;

/// Aggregate row statistics of a cover, read in O(1), used by the query
/// planner to price `//`-step strategies.
///
/// The identities the estimates lean on: the inverted holder lists mirror
/// the labels, so `Σ_c |inv_in(c)| = Σ_v |Lin(v)| = lin_entries` (and
/// symmetrically for `inv_out`/`Lout`) — the *average* inverted row is as
/// long as the average label row of the same direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// Node slots covered by stored labels.
    pub nodes: usize,
    /// Stored `Lin` entries `Σ_v |Lin(v)|`.
    pub lin_entries: usize,
    /// Stored `Lout` entries `Σ_v |Lout(v)|`.
    pub lout_entries: usize,
}

impl CoverStats {
    /// Average `Lin` row length.
    pub fn avg_lin(&self) -> f64 {
        self.lin_entries as f64 / self.nodes.max(1) as f64
    }

    /// Average `Lout` row length.
    pub fn avg_lout(&self) -> f64 {
        self.lout_entries as f64 / self.nodes.max(1) as f64
    }

    /// Average `inv_in` holder-list length (`= avg_lin`, see type docs).
    pub fn avg_inv_in(&self) -> f64 {
        self.avg_lin()
    }

    /// Average `inv_out` holder-list length (`= avg_lout`).
    pub fn avg_inv_out(&self) -> f64 {
        self.avg_lout()
    }
}

/// Anything that answers 2-hop cover queries: the connection probe,
/// descendant/ancestor enumeration, and raw row access for set-at-a-time
/// hop joins.
pub trait LabelSource {
    /// The reachability test `u →* v` (reflexive).
    fn connected(&self, u: NodeId, v: NodeId) -> bool;

    /// Number of node slots covered by stored labels. Ids at or above this
    /// bound have empty rows (isolated nodes).
    fn num_nodes(&self) -> usize;

    /// The stored `Lin(v)` row, sorted ascending, without the implicit
    /// self entry. Empty for out-of-range ids.
    fn lin_row(&self, v: NodeId) -> &[NodeId];

    /// The stored `Lout(v)` row, sorted ascending, without the implicit
    /// self entry.
    fn lout_row(&self, v: NodeId) -> &[NodeId];

    /// Nodes holding `c` in `Lin` — the nodes `c` reaches through the
    /// cover, without `c` itself. **Not necessarily sorted** (the mutable
    /// cover maintains holder lists with `swap_remove`).
    fn holders_in_row(&self, c: NodeId) -> &[NodeId];

    /// Nodes holding `c` in `Lout` — the nodes that reach `c` through the
    /// cover, without `c` itself. Not necessarily sorted.
    fn holders_out_row(&self, c: NodeId) -> &[NodeId];

    /// Aggregate row statistics, answered in O(1) (both representations
    /// track entry counts eagerly).
    fn cover_stats(&self) -> CoverStats;

    /// All descendants of `u` (including `u`), sorted.
    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.descendants_into(u, &mut out);
        out
    }

    /// All ancestors of `u` (including `u`), sorted.
    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.ancestors_into(u, &mut out);
        out
    }

    /// All descendants of `u` (including `u`), sorted + deduped into the
    /// caller's buffer — reuse the buffer across calls to keep enumeration
    /// allocation-free. The default expands `{u} ∪ Lout(u)` through the
    /// inverted `inv_in` lists.
    fn descendants_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.push(u);
        out.extend_from_slice(self.holders_in_row(u));
        for &c in self.lout_row(u) {
            out.push(c);
            out.extend_from_slice(self.holders_in_row(c));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// All ancestors of `u` (including `u`), sorted + deduped into the
    /// caller's buffer; mirror of [`LabelSource::descendants_into`].
    fn ancestors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.push(u);
        out.extend_from_slice(self.holders_out_row(u));
        for &c in self.lin_row(u) {
            out.push(c);
            out.extend_from_slice(self.holders_out_row(c));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Is any source connected to `target`, excluding the reflexive
    /// `source == target` probe? The probing side of a `//` step;
    /// implementations may batch the row lookups.
    fn connected_from_any(&self, sources: &[NodeId], target: NodeId) -> bool {
        sources
            .iter()
            .any(|&u| u != target && self.connected(u, target))
    }
}

impl LabelSource for crate::TwoHopCover {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        crate::TwoHopCover::connected(self, u, v)
    }

    fn num_nodes(&self) -> usize {
        crate::TwoHopCover::num_nodes(self)
    }

    fn lin_row(&self, v: NodeId) -> &[NodeId] {
        self.lin(v)
    }

    fn lout_row(&self, v: NodeId) -> &[NodeId] {
        self.lout(v)
    }

    fn holders_in_row(&self, c: NodeId) -> &[NodeId] {
        self.holders_in(c)
    }

    fn holders_out_row(&self, c: NodeId) -> &[NodeId] {
        self.holders_out(c)
    }

    fn cover_stats(&self) -> CoverStats {
        CoverStats {
            nodes: crate::TwoHopCover::num_nodes(self),
            lin_entries: self.lin_entry_count(),
            lout_entries: self.lout_entry_count(),
        }
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        crate::TwoHopCover::descendants(self, u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        crate::TwoHopCover::ancestors(self, u)
    }
}

impl LabelSource for crate::HopiIndex {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        crate::HopiIndex::connected(self, u, v)
    }

    fn num_nodes(&self) -> usize {
        self.cover().num_nodes()
    }

    fn lin_row(&self, v: NodeId) -> &[NodeId] {
        self.cover().lin(v)
    }

    fn lout_row(&self, v: NodeId) -> &[NodeId] {
        self.cover().lout(v)
    }

    fn holders_in_row(&self, c: NodeId) -> &[NodeId] {
        self.cover().holders_in(c)
    }

    fn holders_out_row(&self, c: NodeId) -> &[NodeId] {
        self.cover().holders_out(c)
    }

    fn cover_stats(&self) -> CoverStats {
        self.cover().cover_stats()
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        crate::HopiIndex::descendants(self, u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        crate::HopiIndex::ancestors(self, u)
    }
}

impl<S: LabelSource + ?Sized> LabelSource for &S {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        (**self).connected(u, v)
    }

    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn lin_row(&self, v: NodeId) -> &[NodeId] {
        (**self).lin_row(v)
    }

    fn lout_row(&self, v: NodeId) -> &[NodeId] {
        (**self).lout_row(v)
    }

    fn holders_in_row(&self, c: NodeId) -> &[NodeId] {
        (**self).holders_in_row(c)
    }

    fn holders_out_row(&self, c: NodeId) -> &[NodeId] {
        (**self).holders_out_row(c)
    }

    fn cover_stats(&self) -> CoverStats {
        (**self).cover_stats()
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        (**self).descendants(u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        (**self).ancestors(u)
    }

    fn descendants_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        (**self).descendants_into(u, out)
    }

    fn ancestors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        (**self).ancestors_into(u, out)
    }

    fn connected_from_any(&self, sources: &[NodeId], target: NodeId) -> bool {
        (**self).connected_from_any(sources, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenCover, HopiIndex, TwoHopCover};

    fn probe<S: LabelSource>(s: &S) -> (bool, Vec<NodeId>, Vec<NodeId>, bool) {
        (
            s.connected(0, 2),
            s.descendants(0),
            s.ancestors(2),
            s.connected_from_any(&[0, 2], 2),
        )
    }

    #[test]
    fn all_representations_agree() {
        let mut cover = TwoHopCover::with_nodes(3);
        cover.add_out(0, 1);
        cover.add_in(2, 1);
        let frozen = FrozenCover::from_cover(&cover);
        let index = HopiIndex::from_cover(cover.clone());
        let expect = (true, vec![0, 1, 2], vec![0, 1, 2], true);
        assert_eq!(probe(&cover), expect);
        assert_eq!(probe(&index), expect);
        assert_eq!(probe(&frozen), expect);
        assert_eq!(probe(&&frozen), expect);
    }

    #[test]
    fn rows_and_stats_agree_across_representations() {
        let mut cover = TwoHopCover::with_nodes(4);
        cover.add_out(0, 1);
        cover.add_out(3, 1);
        cover.add_in(2, 1);
        let frozen = FrozenCover::from_cover(&cover);
        let index = HopiIndex::from_cover(cover.clone());
        let expect = CoverStats {
            nodes: 4,
            lin_entries: 1,
            lout_entries: 2,
        };
        assert_eq!(cover.cover_stats(), expect);
        assert_eq!(index.cover_stats(), expect);
        assert_eq!(frozen.cover_stats(), expect);
        for v in 0..5u32 {
            assert_eq!(LabelSource::lin_row(&cover, v), frozen.lin_row(v), "{v}");
            assert_eq!(LabelSource::lout_row(&cover, v), frozen.lout_row(v));
            let mut mutable_holders = cover.holders_in_row(v).to_vec();
            mutable_holders.sort_unstable();
            assert_eq!(mutable_holders, frozen.holders_in_row(v));
            let mut buf = Vec::new();
            LabelSource::descendants_into(&cover, v, &mut buf);
            assert_eq!(buf, frozen.descendants(v), "descendants_into {v}");
            LabelSource::ancestors_into(&index, v, &mut buf);
            assert_eq!(buf, frozen.ancestors(v), "ancestors_into {v}");
        }
        assert_eq!(expect.avg_lin(), 0.25);
        assert_eq!(expect.avg_inv_out(), 0.5);
    }
}
