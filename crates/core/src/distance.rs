//! Distance-aware 2-hop covers (paper §5).
//!
//! For ranked XML retrieval, label entries carry the shortest distance to
//! the center: `Lin(v)` holds `(w, dist(w, v))`, `Lout(u)` holds
//! `(w, dist(u, w))`. The shortest distance of a connection is
//! `min over common centers of Lout-dist + Lin-dist` — the SQL
//! `SELECT MIN(LOUT.DIST + LIN.DIST)` query of §5.1.
//!
//! Construction follows the plain builder with one crucial change: a center
//! `w` may only cover `(u, v)` if it lies on a **shortest** path, i.e.
//! `dist(u, w) + dist(w, v) = dist(u, v)` — otherwise the recorded distance
//! would be wrong. Center graphs are therefore no longer complete
//! bipartite, and the initial density is *estimated* by sampling at most
//! 13,600 candidate edges and taking the upper bound of the 98% confidence
//! interval (paper §5.2): with that sample size the interval is at most
//! 0.02 wide, and the resulting over-estimate is a valid upper bound for
//! the lazy priority queue with probability ≥ 0.99.

use crate::densest::{densest_subgraph, BipartiteCenterGraph};
use hopi_graph::{DistanceClosure, FixedBitSet};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maximum number of candidate edges sampled when estimating the initial
/// center-graph density (paper §5.2: "at most 13,600 randomly chosen
/// candidate edges", yielding a 98% CI no wider than 0.02).
pub const DENSITY_SAMPLES: usize = 13_600;

/// z-value of the two-sided 98% confidence interval.
const Z_98: f64 = 2.326;

/// A distance-annotated 2-hop cover. Entries are `(center, dist)` pairs,
/// sorted by center; the node itself (distance 0) is implicit and never
/// stored, as in the plain cover.
#[derive(Clone, Debug, Default)]
pub struct DistanceCover {
    lin: Vec<Vec<(u32, u32)>>,
    lout: Vec<Vec<(u32, u32)>>,
    inv_out: Vec<Vec<u32>>,
    inv_in: Vec<Vec<u32>>,
    entries: usize,
}

impl DistanceCover {
    /// Creates an empty cover for nodes `0..n`.
    pub fn with_nodes(n: usize) -> Self {
        DistanceCover {
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
            inv_out: vec![Vec::new(); n],
            inv_in: vec![Vec::new(); n],
            entries: 0,
        }
    }

    /// Reconstructs a cover from per-node `(center, dist)` rows that are
    /// **already sorted by center** (e.g. thawed from a persisted frozen
    /// blob). Inverted index and entry count are derived in one pass.
    pub fn from_sorted_label_rows(lin: Vec<Vec<(u32, u32)>>, lout: Vec<Vec<(u32, u32)>>) -> Self {
        let n = lin.len().max(lout.len());
        let mut cover = DistanceCover {
            lin,
            lout,
            inv_out: vec![Vec::new(); n],
            inv_in: vec![Vec::new(); n],
            entries: 0,
        };
        cover.lin.resize_with(n, Vec::new);
        cover.lout.resize_with(n, Vec::new);
        for (node, row) in cover.lout.iter().enumerate() {
            debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "Lout row sorted");
            for &(c, _) in row {
                cover.inv_out[c as usize].push(node as u32);
                cover.entries += 1;
            }
        }
        for (node, row) in cover.lin.iter().enumerate() {
            debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "Lin row sorted");
            for &(c, _) in row {
                cover.inv_in[c as usize].push(node as u32);
                cover.entries += 1;
            }
        }
        cover
    }

    /// Number of node slots.
    pub fn num_nodes(&self) -> usize {
        self.lin.len()
    }

    /// Ensures slots `0..=id` exist.
    pub fn ensure_node(&mut self, id: u32) {
        let need = id as usize + 1;
        if self.lin.len() < need {
            self.lin.resize_with(need, Vec::new);
            self.lout.resize_with(need, Vec::new);
            self.inv_out.resize_with(need, Vec::new);
            self.inv_in.resize_with(need, Vec::new);
        }
    }

    /// Cover size (stored label entries) — directly comparable with the
    /// plain cover's [`crate::TwoHopCover::size`]; the distance adds one
    /// attribute per entry, not extra entries.
    pub fn size(&self) -> usize {
        self.entries
    }

    /// Stored `Lout(u)` as `(center, dist(u, center))`, sorted by center.
    pub fn lout(&self, u: u32) -> &[(u32, u32)] {
        self.lout.get(u as usize).map_or(&[], Vec::as_slice)
    }

    /// Stored `Lin(v)` as `(center, dist(center, v))`, sorted by center.
    pub fn lin(&self, v: u32) -> &[(u32, u32)] {
        self.lin.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// Adds/improves `(center, dist)` in `Lout(node)`.
    pub fn add_out(&mut self, node: u32, center: u32, dist: u32) -> bool {
        if node == center {
            return false;
        }
        self.ensure_node(node.max(center));
        let row = &mut self.lout[node as usize];
        match row.binary_search_by_key(&center, |e| e.0) {
            Ok(pos) => {
                if dist < row[pos].1 {
                    row[pos].1 = dist;
                    true
                } else {
                    false
                }
            }
            Err(pos) => {
                row.insert(pos, (center, dist));
                self.inv_out[center as usize].push(node);
                self.entries += 1;
                true
            }
        }
    }

    /// Adds/improves `(center, dist)` in `Lin(node)`.
    pub fn add_in(&mut self, node: u32, center: u32, dist: u32) -> bool {
        if node == center {
            return false;
        }
        self.ensure_node(node.max(center));
        let row = &mut self.lin[node as usize];
        match row.binary_search_by_key(&center, |e| e.0) {
            Ok(pos) => {
                if dist < row[pos].1 {
                    row[pos].1 = dist;
                    true
                } else {
                    false
                }
            }
            Err(pos) => {
                row.insert(pos, (center, dist));
                self.inv_in[center as usize].push(node);
                self.entries += 1;
                true
            }
        }
    }

    /// Shortest path length `u →* v`, `None` when unreachable — the
    /// `MIN(LOUT.DIST + LIN.DIST)` query with implicit self labels.
    pub fn distance(&self, u: u32, v: u32) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let mut best: Option<u32> = None;
        let mut consider = |d: u32| {
            best = Some(best.map_or(d, |b| b.min(d)));
        };
        // v as a center in Lout(u): dist(u, v) directly.
        if let Ok(pos) = self.lout(u).binary_search_by_key(&v, |e| e.0) {
            consider(self.lout(u)[pos].1);
        }
        // u as a center in Lin(v).
        if let Ok(pos) = self.lin(v).binary_search_by_key(&u, |e| e.0) {
            consider(self.lin(v)[pos].1);
        }
        // Merge intersection over common centers.
        let (a, b) = (self.lout(u), self.lin(v));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    consider(a[i].1 + b[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Reachability (distance query without the minimum).
    pub fn connected(&self, u: u32, v: u32) -> bool {
        self.distance(u, v).is_some()
    }

    /// Descendants of `u` with shortest distances, sorted by node id.
    pub fn descendants_with_distance(&self, u: u32) -> Vec<(u32, u32)> {
        let mut best: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
        best.insert(u, 0);
        let mut relax = |node: u32, d: u32| {
            best.entry(node)
                .and_modify(|cur| *cur = (*cur).min(d))
                .or_insert(d);
        };
        for &(c, duc) in self.lout(u) {
            relax(c, duc);
            for &y in &self.inv_in[c as usize] {
                let row = &self.lin[y as usize];
                if let Ok(pos) = row.binary_search_by_key(&c, |e| e.0) {
                    relax(y, duc + row[pos].1);
                }
            }
        }
        // u itself as implicit center.
        for &y in self
            .inv_in
            .get(u as usize)
            .map_or(&[][..], |v| v.as_slice())
        {
            let row = &self.lin[y as usize];
            if let Ok(pos) = row.binary_search_by_key(&u, |e| e.0) {
                relax(y, row[pos].1);
            }
        }
        let mut out: Vec<(u32, u32)> = best.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Ancestors of `u` with shortest distances, sorted by node id.
    pub fn ancestors_with_distance(&self, u: u32) -> Vec<(u32, u32)> {
        let mut best: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
        best.insert(u, 0);
        let mut relax = |node: u32, d: u32| {
            best.entry(node)
                .and_modify(|cur| *cur = (*cur).min(d))
                .or_insert(d);
        };
        for &(c, dcu) in self.lin(u) {
            relax(c, dcu);
            for &x in &self.inv_out[c as usize] {
                let row = &self.lout[x as usize];
                if let Ok(pos) = row.binary_search_by_key(&c, |e| e.0) {
                    relax(x, row[pos].1 + dcu);
                }
            }
        }
        for &x in self
            .inv_out
            .get(u as usize)
            .map_or(&[][..], |v| v.as_slice())
        {
            let row = &self.lout[x as usize];
            if let Ok(pos) = row.binary_search_by_key(&u, |e| e.0) {
                relax(x, row[pos].1);
            }
        }
        let mut out: Vec<(u32, u32)> = best.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Iterates all stored `Lout` entries `(node, center, dist)`.
    pub fn iter_out_entries(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.lout
            .iter()
            .enumerate()
            .flat_map(|(n, row)| row.iter().map(move |&(c, d)| (n as u32, c, d)))
    }

    /// Iterates all stored `Lin` entries `(node, center, dist)`.
    pub fn iter_in_entries(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.lin
            .iter()
            .enumerate()
            .flat_map(|(n, row)| row.iter().map(move |&(c, d)| (n as u32, c, d)))
    }
}

/// Statistics of one distance-aware construction.
#[derive(Clone, Debug, Default)]
pub struct DistanceBuildStats {
    /// Committed centers.
    pub centers: usize,
    /// Densest-subgraph evaluations.
    pub densest_evals: usize,
    /// Initial densities estimated by sampling (vs exact tiny graphs).
    pub sampled_estimates: usize,
}

struct HeapEntry {
    density: f64,
    node: u32,
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.density == other.density && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.density
            .total_cmp(&other.density)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Builder for distance-aware covers over a [`DistanceClosure`].
pub struct DistanceCoverBuilder<'a> {
    dc: &'a DistanceClosure,
    /// Uncovered (non-reflexive) connections, forward rows.
    unc_out: Vec<FixedBitSet>,
    remaining: usize,
    cover: DistanceCover,
    stats: DistanceBuildStats,
    rng: StdRng,
}

impl<'a> DistanceCoverBuilder<'a> {
    /// Creates the builder; all non-reflexive connections start uncovered.
    pub fn new(dc: &'a DistanceClosure) -> Self {
        let n = dc.num_nodes();
        let mut unc_out = vec![FixedBitSet::new(n); n];
        let mut remaining = 0usize;
        for u in 0..n as u32 {
            for &v in dc.out_row(u).keys() {
                if v != u {
                    unc_out[u as usize].insert(v);
                    remaining += 1;
                }
            }
        }
        DistanceCoverBuilder {
            dc,
            unc_out,
            remaining,
            cover: DistanceCover::with_nodes(n),
            stats: DistanceBuildStats::default(),
            rng: StdRng::seed_from_u64(0xd157),
        }
    }

    /// Runs the construction.
    pub fn build(mut self) -> DistanceCover {
        self.run();
        self.cover
    }

    /// Runs the construction, returning statistics too.
    pub fn build_with_stats(mut self) -> (DistanceCover, DistanceBuildStats) {
        self.run();
        (self.cover, self.stats)
    }

    fn run(&mut self) {
        let n = self.dc.num_nodes();
        let mut heap = BinaryHeap::with_capacity(n);
        for w in 0..n as u32 {
            if !self.dc.is_alive(w) {
                continue;
            }
            let density = self.initial_density_estimate(w);
            if density > 0.0 {
                heap.push(HeapEntry { node: w, density });
            }
        }
        while self.remaining > 0 {
            let entry = heap
                .pop()
                .expect("connections uncovered but candidate heap exhausted");
            let w = entry.node;
            let Some(cg) = self.center_graph(w) else {
                continue;
            };
            self.stats.densest_evals += 1;
            let Some(result) = densest_subgraph(&cg) else {
                continue;
            };
            let next_best = heap.peek().map_or(0.0, |e| e.density);
            if result.density + 1e-9 >= next_best {
                self.commit_center(w, &result.left, &result.right);
            }
            // Either way w may still sit on other uncovered shortest paths;
            // keep it available under its (now stale-upper-bound) density.
            heap.push(HeapEntry {
                node: w,
                density: result.density,
            });
        }
    }

    /// Initial density estimate for `w` (paper §5.2).
    ///
    /// The center graph is no longer complete: an edge `(u, v)` exists only
    /// if `w` lies on a shortest `u → v` path. Testing all `a·d` candidates
    /// is infeasible, so for large graphs we sample up to
    /// [`DENSITY_SAMPLES`] candidates, take the upper bound `ê` of the 98%
    /// CI of the edge fraction, and estimate the maximal subgraph density as
    /// `√E / 2` with `E = ê · a · d` — the density of a balanced complete
    /// bipartite graph with `E` edges.
    fn initial_density_estimate(&mut self, w: u32) -> f64 {
        let anc: Vec<(u32, u32)> = self.dc.in_row(w).iter().map(|(&u, &d)| (u, d)).collect();
        let desc: Vec<(u32, u32)> = self.dc.out_row(w).iter().map(|(&v, &d)| (v, d)).collect();
        let a = anc.len();
        let d = desc.len();
        let candidates = a * d;
        if candidates == 0 {
            return 0.0;
        }
        let on_shortest = |(u, duw): (u32, u32), (v, dwv): (u32, u32)| -> bool {
            u != v && self.dc.dist(u, v) == Some(duw + dwv)
        };
        if candidates <= DENSITY_SAMPLES {
            // Exact count for small center graphs.
            let mut e = 0usize;
            for &ue in &anc {
                for &ve in &desc {
                    if on_shortest(ue, ve) {
                        e += 1;
                    }
                }
            }
            return max_density_for_edges(e as f64);
        }
        self.stats.sampled_estimates += 1;
        let mut hits = 0usize;
        for _ in 0..DENSITY_SAMPLES {
            let ue = anc[self.rng.gen_range(0..a)];
            let ve = desc[self.rng.gen_range(0..d)];
            if on_shortest(ue, ve) {
                hits += 1;
            }
        }
        let p_hat = hits as f64 / DENSITY_SAMPLES as f64;
        let half_width = Z_98 * (p_hat * (1.0 - p_hat) / DENSITY_SAMPLES as f64).sqrt();
        let upper = (p_hat + half_width).min(1.0);
        max_density_for_edges(upper * candidates as f64)
    }

    /// Materializes the shortest-path-filtered center graph of `w`.
    fn center_graph(&self, w: u32) -> Option<BipartiteCenterGraph> {
        let right: Vec<u32> = {
            let mut r: Vec<u32> = self.dc.out_row(w).keys().copied().collect();
            r.sort_unstable();
            r
        };
        if right.is_empty() {
            return None;
        }
        let mut right_pos = vec![u32::MAX; self.dc.num_nodes()];
        for (j, &v) in right.iter().enumerate() {
            right_pos[v as usize] = j as u32;
        }
        let mut left = Vec::new();
        let mut adj = Vec::new();
        let mut edges = 0usize;
        let mut anc: Vec<(u32, u32)> = self.dc.in_row(w).iter().map(|(&u, &d)| (u, d)).collect();
        anc.sort_unstable();
        for (u, duw) in anc {
            let mut side_row = FixedBitSet::new(right.len());
            let mut cnt = 0usize;
            for v in self.unc_out[u as usize].iter() {
                let pos = right_pos[v as usize];
                if pos == u32::MAX {
                    continue;
                }
                let dwv = self.dc.dist(w, v).expect("v in out_row(w)");
                if self.dc.dist(u, v) == Some(duw + dwv) {
                    side_row.insert(pos);
                    cnt += 1;
                }
            }
            if cnt > 0 {
                edges += cnt;
                left.push(u);
                adj.push(side_row);
            }
        }
        if edges == 0 {
            return None;
        }
        Some(BipartiteCenterGraph { left, right, adj })
    }

    fn commit_center(&mut self, w: u32, cin: &[u32], cout: &[u32]) {
        let n = self.dc.num_nodes();
        let mut cout_set = FixedBitSet::new(n);
        for &v in cout {
            cout_set.insert(v);
        }
        let mut covered = 0usize;
        for &u in cin {
            let duw = self.dc.dist(u, w).expect("cin member reaches w");
            // Only connections where w is on a shortest path are covered.
            let mut row = self.unc_out[u as usize].clone();
            row.intersect_with(&cout_set);
            for v in row.iter() {
                let dwv = self.dc.dist(w, v).expect("cout member reached by w");
                if self.dc.dist(u, v) == Some(duw + dwv) {
                    self.unc_out[u as usize].remove(v);
                    covered += 1;
                }
            }
            self.cover.add_out(u, w, duw);
        }
        for &v in cout {
            let dwv = self.dc.dist(w, v).expect("cout member reached by w");
            self.cover.add_in(v, w, dwv);
        }
        self.remaining -= covered;
        self.stats.centers += 1;
    }
}

/// Maximal densest-subgraph density achievable with `e` edges: a balanced
/// complete bipartite graph, `e / (2√e) = √e / 2` (paper §5.2).
fn max_density_for_edges(e: f64) -> f64 {
    if e <= 0.0 {
        0.0
    } else {
        e.sqrt() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::DiGraph;

    fn closure_of(edges: &[(u32, u32)], n: u32) -> DistanceClosure {
        let mut g = DiGraph::new();
        g.ensure_node(n - 1);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        DistanceClosure::from_graph(&g)
    }

    fn assert_distances_exact(cover: &DistanceCover, dc: &DistanceClosure, n: u32) {
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    cover.distance(u, v),
                    dc.dist(u, v),
                    "distance({u},{v}) mismatch"
                );
            }
        }
    }

    #[test]
    fn path_distances() {
        let dc = closure_of(&[(0, 1), (1, 2), (2, 3)], 4);
        let cover = DistanceCoverBuilder::new(&dc).build();
        assert_distances_exact(&cover, &dc, 4);
        assert_eq!(cover.distance(0, 3), Some(3));
        assert_eq!(cover.distance(3, 0), None);
    }

    #[test]
    fn shortcut_prefers_shorter() {
        let dc = closure_of(&[(0, 1), (1, 2), (0, 2)], 3);
        let cover = DistanceCoverBuilder::new(&dc).build();
        assert_eq!(cover.distance(0, 2), Some(1));
        assert_distances_exact(&cover, &dc, 3);
    }

    #[test]
    fn cycle_distances() {
        let dc = closure_of(&[(0, 1), (1, 2), (2, 0)], 3);
        let cover = DistanceCoverBuilder::new(&dc).build();
        assert_distances_exact(&cover, &dc, 3);
        assert_eq!(cover.distance(2, 1), Some(2));
    }

    #[test]
    fn random_graphs_distances_exact() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..20 {
            let n = rng.gen_range(4..25);
            let m = rng.gen_range(0..3 * n);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let dc = closure_of(&edges, n);
            let cover = DistanceCoverBuilder::new(&dc).build();
            assert_distances_exact(&cover, &dc, n);
        }
    }

    #[test]
    fn descendants_with_distance_match() {
        let dc = closure_of(&[(0, 1), (1, 2), (0, 3)], 4);
        let cover = DistanceCoverBuilder::new(&dc).build();
        let desc = cover.descendants_with_distance(0);
        assert_eq!(desc, vec![(0, 0), (1, 1), (2, 2), (3, 1)]);
        let anc = cover.ancestors_with_distance(2);
        assert_eq!(anc, vec![(0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn add_improves_distance() {
        let mut c = DistanceCover::with_nodes(3);
        assert!(c.add_out(0, 1, 5));
        assert!(c.add_out(0, 1, 3)); // improvement
        assert!(!c.add_out(0, 1, 4)); // worse: ignored
        assert_eq!(c.lout(0), &[(1, 3)]);
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn self_entries_implicit() {
        let mut c = DistanceCover::with_nodes(2);
        assert!(!c.add_out(1, 1, 0));
        assert_eq!(c.distance(1, 1), Some(0));
        assert_eq!(c.size(), 0);
    }

    #[test]
    fn sampling_estimator_is_upper_bound_probabilistically() {
        // Construct a graph large enough to trigger sampling: two layers
        // with ~150x150 candidate pairs through a middle node.
        let w = 300u32; // middle
        let mut edges = Vec::new();
        for u in 0..150u32 {
            edges.push((u, w));
        }
        for v in 0..149u32 {
            edges.push((w, 301 + v));
        }
        let dc = closure_of(&edges, 450);
        let (_cover, stats) = DistanceCoverBuilder::new(&dc).build_with_stats();
        assert!(stats.sampled_estimates >= 1, "sampling path not exercised");
        // Correctness of the final cover is the real assertion:
        assert_eq!(
            DistanceCoverBuilder::new(&dc).build().distance(0, 310),
            Some(2)
        );
    }

    #[test]
    fn size_overhead_vs_plain_is_zero_entries() {
        // The distance-aware cover stores the same number of entries as a
        // plain cover would for a tree (distance is an attribute, not new
        // entries). Sanity: entries ≤ non-reflexive connections.
        let dc = closure_of(&[(0, 1), (0, 2), (1, 3), (1, 4)], 5);
        let cover = DistanceCoverBuilder::new(&dc).build();
        let conns = dc.connection_count() - 5;
        assert!(cover.size() <= conns);
    }
}
