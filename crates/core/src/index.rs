//! The HOPI index handle: a [`TwoHopCover`] behind the query interface the
//! rest of the system (query evaluation, incremental maintenance, stores)
//! talks to.
//!
//! Construction lives in the build pipeline (`hopi_partition::pipeline`) and
//! the engine facade (`hopi_build::Hopi`); this type is the shared artifact
//! they all exchange.

use crate::cover::TwoHopCover;

/// Node identifier (collection-global element id).
pub type NodeId = u32;

/// A built HOPI index: the 2-hop cover of a collection's element-level
/// connection relation.
///
/// ```
/// use hopi_core::{HopiIndex, TwoHopCover};
///
/// // Cover for the path 0 → 1 → 2 with node 1 as the center.
/// let mut cover = TwoHopCover::with_nodes(3);
/// cover.add_out(0, 1);
/// cover.add_in(2, 1);
/// let index = HopiIndex::from_cover(cover);
///
/// assert!(index.connected(0, 2));
/// assert!(!index.connected(2, 0));
/// assert_eq!(index.descendants(0), vec![0, 1, 2]);
/// assert_eq!(index.size(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HopiIndex {
    cover: TwoHopCover,
}

impl HopiIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing cover (e.g. reconstructed from a persisted
    /// LIN/LOUT store).
    pub fn from_cover(cover: TwoHopCover) -> Self {
        HopiIndex { cover }
    }

    /// The reachability test `u →* v` (reflexive).
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.cover.connected(u, v)
    }

    /// All descendants of `u` (including `u`), sorted.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        self.cover.descendants(u)
    }

    /// All ancestors of `u` (including `u`), sorted.
    pub fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        self.cover.ancestors(u)
    }

    /// Cover size `|L|` — the paper's index-size metric (stored label
    /// entries).
    pub fn size(&self) -> usize {
        self.cover.size()
    }

    /// Read access to the underlying cover.
    pub fn cover(&self) -> &TwoHopCover {
        &self.cover
    }

    /// Mutable access to the underlying cover (incremental maintenance
    /// edits labels in place).
    pub fn cover_mut(&mut self) -> &mut TwoHopCover {
        &mut self.cover
    }

    /// Consumes the index, returning the cover.
    pub fn into_cover(self) -> TwoHopCover {
        self.cover
    }
}

impl From<TwoHopCover> for HopiIndex {
    fn from(cover: TwoHopCover) -> Self {
        HopiIndex::from_cover(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_cover_queries() {
        let mut cover = TwoHopCover::with_nodes(4);
        cover.add_out(0, 2);
        cover.add_in(3, 2);
        let mut index = HopiIndex::from_cover(cover);
        assert!(index.connected(0, 3));
        assert!(index.connected(1, 1));
        assert!(!index.connected(3, 0));
        assert_eq!(index.ancestors(3), vec![0, 2, 3]);
        assert_eq!(index.size(), 2);
        index.cover_mut().add_out(1, 2);
        assert!(index.connected(1, 3));
        assert_eq!(index.clone().into_cover().size(), 3);
    }
}
