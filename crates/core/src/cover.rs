//! The 2-hop cover: per-node `Lin`/`Lout` label sets plus an inverted center
//! index.
//!
//! Storage convention (paper §3.4): the node itself is **not** stored in its
//! own labels; reachability queries special-case `u == v`, `v ∈ Lout(u)` and
//! `u ∈ Lin(v)`.
//!
//! The inverted index maps a center `c` to the nodes holding `c` in their
//! `Lout` (nodes that reach `c`) and in their `Lin` (nodes `c` reaches).
//! Both the cover-joining algorithms (paper §3.3, §4.1) and incremental
//! maintenance (paper §6) repeatedly ask "which nodes are ancestors /
//! descendants of `x` *under the current cover*" while mutating labels, so
//! the index is maintained eagerly on every label edit.

use rustc_hash::FxHashSet;

/// Node identifier (matches `hopi_graph::NodeId`).
pub type NodeId = u32;

/// A 2-hop cover over nodes `0..len`.
///
/// ```
/// use hopi_core::TwoHopCover;
///
/// // Cover for the path 0 → 1 → 2 with node 1 as the center.
/// let mut cover = TwoHopCover::with_nodes(3);
/// cover.add_out(0, 1); // 0 reaches center 1
/// cover.add_in(2, 1);  // center 1 reaches 2
///
/// assert!(cover.connected(0, 2)); // via Lout(0) ∩ Lin(2) = {1}
/// assert!(cover.connected(0, 1)); // via the implicit self label of 1
/// assert!(!cover.connected(2, 0));
/// assert_eq!(cover.descendants(0), vec![0, 1, 2]);
/// assert_eq!(cover.size(), 2); // stored entries only
/// ```
#[derive(Clone, Debug, Default)]
pub struct TwoHopCover {
    lin: Vec<Vec<NodeId>>,
    lout: Vec<Vec<NodeId>>,
    /// `inv_out[c]` = nodes `x` with `c ∈ Lout(x)` (they reach `c`).
    inv_out: Vec<Vec<NodeId>>,
    /// `inv_in[c]` = nodes `y` with `c ∈ Lin(y)` (`c` reaches them).
    inv_in: Vec<Vec<NodeId>>,
    /// Stored `Lin` entries (the query planner reads the split, so both
    /// sides are counted eagerly instead of one `entries` total).
    lin_entries: usize,
    /// Stored `Lout` entries.
    lout_entries: usize,
}

impl TwoHopCover {
    /// Creates an empty cover with no nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cover for nodes `0..n`.
    pub fn with_nodes(n: usize) -> Self {
        TwoHopCover {
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
            inv_out: vec![Vec::new(); n],
            inv_in: vec![Vec::new(); n],
            lin_entries: 0,
            lout_entries: 0,
        }
    }

    /// Reconstructs a cover from per-node label rows that are **already
    /// sorted ascending and free of duplicates/self entries** (e.g. thawed
    /// from a [`crate::FrozenCover`] or a persisted CSR blob). The inverted
    /// index and entry count are derived in one pass — no per-entry binary
    /// searches.
    pub fn from_sorted_label_rows(lin: Vec<Vec<NodeId>>, lout: Vec<Vec<NodeId>>) -> Self {
        let n = lin.len().max(lout.len());
        let mut cover = TwoHopCover {
            lin,
            lout,
            inv_out: vec![Vec::new(); n],
            inv_in: vec![Vec::new(); n],
            lin_entries: 0,
            lout_entries: 0,
        };
        cover.lin.resize_with(n, Vec::new);
        cover.lout.resize_with(n, Vec::new);
        for (node, row) in cover.lout.iter().enumerate() {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "Lout row sorted");
            for &c in row {
                debug_assert_ne!(c as usize, node, "self entry in Lout");
                cover.inv_out[c as usize].push(node as NodeId);
                cover.lout_entries += 1;
            }
        }
        for (node, row) in cover.lin.iter().enumerate() {
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "Lin row sorted");
            for &c in row {
                debug_assert_ne!(c as usize, node, "self entry in Lin");
                cover.inv_in[c as usize].push(node as NodeId);
                cover.lin_entries += 1;
            }
        }
        cover
    }

    /// Number of node slots.
    pub fn num_nodes(&self) -> usize {
        self.lin.len()
    }

    /// Ensures slots `0..=id` exist.
    pub fn ensure_node(&mut self, id: NodeId) {
        let need = id as usize + 1;
        if self.lin.len() < need {
            self.lin.resize_with(need, Vec::new);
            self.lout.resize_with(need, Vec::new);
            self.inv_out.resize_with(need, Vec::new);
            self.inv_in.resize_with(need, Vec::new);
        }
    }

    /// Cover size `|L| = Σ_v |Lin(v)| + |Lout(v)|` — the paper's size metric
    /// (number of stored label entries).
    pub fn size(&self) -> usize {
        self.lin_entries + self.lout_entries
    }

    /// Stored `Lin` entries `Σ_v |Lin(v)|` (also `Σ_c |inv_in(c)|` — the
    /// total inverted holder-list mass the query planner estimates hop
    /// joins from).
    pub fn lin_entry_count(&self) -> usize {
        self.lin_entries
    }

    /// Stored `Lout` entries `Σ_v |Lout(v)|` (also `Σ_c |inv_out(c)|`).
    pub fn lout_entry_count(&self) -> usize {
        self.lout_entries
    }

    /// The stored `Lin(v)` (sorted, without the implicit `v` itself).
    pub fn lin(&self, v: NodeId) -> &[NodeId] {
        self.lin.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// The stored `Lout(v)` (sorted, without the implicit `v` itself).
    pub fn lout(&self, v: NodeId) -> &[NodeId] {
        self.lout.get(v as usize).map_or(&[], Vec::as_slice)
    }

    /// Nodes holding `c` in `Lout` — the nodes that reach `c` through the
    /// cover (without `c` itself).
    pub fn holders_out(&self, c: NodeId) -> &[NodeId] {
        self.inv_out.get(c as usize).map_or(&[], Vec::as_slice)
    }

    /// Nodes holding `c` in `Lin` — the nodes `c` reaches through the cover
    /// (without `c` itself).
    pub fn holders_in(&self, c: NodeId) -> &[NodeId] {
        self.inv_in.get(c as usize).map_or(&[], Vec::as_slice)
    }

    /// Adds `center` to `Lout(node)`. Self-entries are skipped (implicit).
    /// Returns `true` if the entry is new.
    pub fn add_out(&mut self, node: NodeId, center: NodeId) -> bool {
        if node == center {
            return false;
        }
        self.ensure_node(node.max(center));
        let row = &mut self.lout[node as usize];
        match row.binary_search(&center) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, center);
                self.inv_out[center as usize].push(node);
                self.lout_entries += 1;
                true
            }
        }
    }

    /// Adds `center` to `Lin(node)`. Self-entries are skipped (implicit).
    /// Returns `true` if the entry is new.
    pub fn add_in(&mut self, node: NodeId, center: NodeId) -> bool {
        if node == center {
            return false;
        }
        self.ensure_node(node.max(center));
        let row = &mut self.lin[node as usize];
        match row.binary_search(&center) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, center);
                self.inv_in[center as usize].push(node);
                self.lin_entries += 1;
                true
            }
        }
    }

    /// The 2-hop reachability test: is there a path `u →* v`?
    ///
    /// Implements the paper's query with implicit self-labels:
    /// `u == v`, or `v ∈ Lout(u)`, or `u ∈ Lin(v)`, or
    /// `Lout(u) ∩ Lin(v) ≠ ∅` (sorted-merge intersection — the database
    /// analogue is the `LIN ⋈ LOUT` count query of §3.4).
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        if self.lout(u).binary_search(&v).is_ok() {
            return true;
        }
        if self.lin(v).binary_search(&u).is_ok() {
            return true;
        }
        sorted_intersects(self.lout(u), self.lin(v))
    }

    /// All descendants of `u` under the cover (including `u`), sorted.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        out.insert(u);
        for &y in self.holders_in(u) {
            out.insert(y);
        }
        for &c in self.lout(u) {
            out.insert(c);
            for &y in self.holders_in(c) {
                out.insert(y);
            }
        }
        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// All ancestors of `u` under the cover (including `u`), sorted.
    pub fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out: FxHashSet<NodeId> = FxHashSet::default();
        out.insert(u);
        for &x in self.holders_out(u) {
            out.insert(x);
        }
        for &c in self.lin(u) {
            out.insert(c);
            for &x in self.holders_out(c) {
                out.insert(x);
            }
        }
        let mut v: Vec<NodeId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Component-wise union with another cover (paper §3.3 step 3 starts
    /// from "the (component-wise) union of the partition covers").
    pub fn merge(&mut self, other: &TwoHopCover) {
        if other.num_nodes() > 0 {
            self.ensure_node(other.num_nodes() as NodeId - 1);
        }
        for (node, row) in other.lout.iter().enumerate() {
            for &c in row {
                self.add_out(node as NodeId, c);
            }
        }
        for (node, row) in other.lin.iter().enumerate() {
            for &c in row {
                self.add_in(node as NodeId, c);
            }
        }
    }

    /// Merges `other` whose node ids are *local*, translating them through
    /// `map` (`local id → global id`). Used to lift per-partition covers
    /// into the collection-wide cover.
    pub fn merge_remapped(&mut self, other: &TwoHopCover, map: &[NodeId]) {
        for (node, row) in other.lout.iter().enumerate() {
            for &c in row {
                self.add_out(map[node], map[c as usize]);
            }
        }
        for (node, row) in other.lin.iter().enumerate() {
            for &c in row {
                self.add_in(map[node], map[c as usize]);
            }
        }
    }

    /// Removes `center` from `Lout(node)`. Returns `true` if present.
    pub fn remove_out(&mut self, node: NodeId, center: NodeId) -> bool {
        let Some(row) = self.lout.get_mut(node as usize) else {
            return false;
        };
        let Ok(pos) = row.binary_search(&center) else {
            return false;
        };
        row.remove(pos);
        let inv = &mut self.inv_out[center as usize];
        let p = inv.iter().position(|&x| x == node).expect("inv_out sync");
        inv.swap_remove(p);
        self.lout_entries -= 1;
        true
    }

    /// Removes `center` from `Lin(node)`. Returns `true` if present.
    pub fn remove_in(&mut self, node: NodeId, center: NodeId) -> bool {
        let Some(row) = self.lin.get_mut(node as usize) else {
            return false;
        };
        let Ok(pos) = row.binary_search(&center) else {
            return false;
        };
        row.remove(pos);
        let inv = &mut self.inv_in[center as usize];
        let p = inv.iter().position(|&x| x == node).expect("inv_in sync");
        inv.swap_remove(p);
        self.lin_entries -= 1;
        true
    }

    /// Keeps only `Lout(node)` centers satisfying `keep` (Theorem 2 removes
    /// whole id sets from labels).
    pub fn retain_out(&mut self, node: NodeId, mut keep: impl FnMut(NodeId) -> bool) {
        let Some(row) = self.lout.get_mut(node as usize) else {
            return;
        };
        let removed: Vec<NodeId> = row.iter().copied().filter(|&c| !keep(c)).collect();
        for c in removed {
            self.remove_out(node, c);
        }
    }

    /// Keeps only `Lin(node)` centers satisfying `keep`.
    pub fn retain_in(&mut self, node: NodeId, mut keep: impl FnMut(NodeId) -> bool) {
        let Some(row) = self.lin.get_mut(node as usize) else {
            return;
        };
        let removed: Vec<NodeId> = row.iter().copied().filter(|&c| !keep(c)).collect();
        for c in removed {
            self.remove_in(node, c);
        }
    }

    /// Replaces `Lout(node)` wholesale (Theorem 3 sets `L'out(a) := L̂out(a)`).
    pub fn set_lout(&mut self, node: NodeId, centers: &[NodeId]) {
        let old: Vec<NodeId> = self.lout(node).to_vec();
        for c in old {
            self.remove_out(node, c);
        }
        for &c in centers {
            self.add_out(node, c);
        }
    }

    /// Replaces `Lin(node)` wholesale.
    pub fn set_lin(&mut self, node: NodeId, centers: &[NodeId]) {
        let old: Vec<NodeId> = self.lin(node).to_vec();
        for c in old {
            self.remove_in(node, c);
        }
        for &c in centers {
            self.add_in(node, c);
        }
    }

    /// Deletes all label entries *of* node `u` (its `Lin`/`Lout`) and all
    /// occurrences of `u` *as a center* in other nodes' labels. Used when a
    /// node is removed from the graph (paper §6.2).
    pub fn purge_node(&mut self, u: NodeId) {
        if (u as usize) >= self.lin.len() {
            return;
        }
        self.set_lout(u, &[]);
        self.set_lin(u, &[]);
        for holder in std::mem::take(&mut self.inv_out[u as usize]) {
            let row = &mut self.lout[holder as usize];
            if let Ok(pos) = row.binary_search(&u) {
                row.remove(pos);
                self.lout_entries -= 1;
            }
        }
        for holder in std::mem::take(&mut self.inv_in[u as usize]) {
            let row = &mut self.lin[holder as usize];
            if let Ok(pos) = row.binary_search(&u) {
                row.remove(pos);
                self.lin_entries -= 1;
            }
        }
    }

    /// Iterates over all stored `(node, center)` `Lout` entries.
    pub fn iter_out_entries(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.lout
            .iter()
            .enumerate()
            .flat_map(|(n, row)| row.iter().map(move |&c| (n as NodeId, c)))
    }

    /// Iterates over all stored `(node, center)` `Lin` entries.
    pub fn iter_in_entries(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.lin
            .iter()
            .enumerate()
            .flat_map(|(n, row)| row.iter().map(move |&c| (n as NodeId, c)))
    }

    /// Debug invariant check: inverted index matches labels, labels sorted,
    /// no self entries, entry count correct.
    pub fn check_invariants(&self) {
        let mut out_count = 0;
        let mut in_count = 0;
        for (n, row) in self.lout.iter().enumerate() {
            assert!(row.windows(2).all(|w| w[0] < w[1]), "Lout sorted+dedup");
            for &c in row {
                assert_ne!(c as usize, n, "self entry in Lout");
                assert!(
                    self.inv_out[c as usize].contains(&(n as NodeId)),
                    "inv_out missing"
                );
                out_count += 1;
            }
        }
        for (n, row) in self.lin.iter().enumerate() {
            assert!(row.windows(2).all(|w| w[0] < w[1]), "Lin sorted+dedup");
            for &c in row {
                assert_ne!(c as usize, n, "self entry in Lin");
                assert!(
                    self.inv_in[c as usize].contains(&(n as NodeId)),
                    "inv_in missing"
                );
                in_count += 1;
            }
        }
        for (c, holders) in self.inv_out.iter().enumerate() {
            for &h in holders {
                assert!(self.lout[h as usize].binary_search(&(c as u32)).is_ok());
            }
        }
        for (c, holders) in self.inv_in.iter().enumerate() {
            for &h in holders {
                assert!(self.lin[h as usize].binary_search(&(c as u32)).is_ok());
            }
        }
        assert_eq!(out_count, self.lout_entries, "Lout entry count drift");
        assert_eq!(in_count, self.lin_entries, "Lin entry count drift");
    }
}

/// Sorted-slice intersection test (merge scan); shared with the frozen
/// representation.
pub(crate) fn sorted_intersects(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cover for the path 0 -> 1 -> 2 with center 1.
    fn path_cover() -> TwoHopCover {
        let mut c = TwoHopCover::with_nodes(3);
        c.add_out(0, 1);
        c.add_in(2, 1);
        c
    }

    #[test]
    fn connected_via_center() {
        let c = path_cover();
        assert!(c.connected(0, 2));
        assert!(c.connected(0, 1)); // 1 ∈ Lout(0), implicit self in Lin(1)
        assert!(c.connected(1, 2)); // 1 ∈ Lin(2), implicit self in Lout(1)
        assert!(c.connected(1, 1)); // reflexive
        assert!(!c.connected(2, 0));
        assert!(!c.connected(2, 1));
    }

    #[test]
    fn self_entries_not_stored() {
        let mut c = TwoHopCover::with_nodes(2);
        assert!(!c.add_out(1, 1));
        assert!(!c.add_in(1, 1));
        assert_eq!(c.size(), 0);
        assert!(c.connected(1, 1));
    }

    #[test]
    fn size_counts_both_sides() {
        let c = path_cover();
        assert_eq!(c.size(), 2);
        assert_eq!(c.lout(0), &[1]);
        assert_eq!(c.lin(2), &[1]);
        assert!(c.lin(0).is_empty());
    }

    #[test]
    fn entry_counts_track_the_split() {
        let mut c = path_cover();
        assert_eq!((c.lin_entry_count(), c.lout_entry_count()), (1, 1));
        c.add_in(0, 2);
        assert_eq!((c.lin_entry_count(), c.lout_entry_count()), (2, 1));
        c.remove_out(0, 1);
        assert_eq!((c.lin_entry_count(), c.lout_entry_count()), (2, 0));
        c.purge_node(2);
        assert_eq!((c.lin_entry_count(), c.lout_entry_count()), (0, 0));
        assert_eq!(c.size(), 0);
        c.check_invariants();
    }

    #[test]
    fn duplicate_add_is_noop() {
        let mut c = path_cover();
        assert!(!c.add_out(0, 1));
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn ancestors_descendants_enumeration() {
        let c = path_cover();
        assert_eq!(c.descendants(0), vec![0, 1, 2]);
        assert_eq!(c.descendants(1), vec![1, 2]);
        assert_eq!(c.ancestors(2), vec![0, 1, 2]);
        assert_eq!(c.ancestors(0), vec![0]);
    }

    #[test]
    fn merge_unions_labels() {
        let mut a = path_cover();
        let mut b = TwoHopCover::with_nodes(4);
        b.add_out(3, 1); // 3 reaches 1
        b.add_out(0, 1); // duplicate with a
        a.merge(&b);
        assert_eq!(a.size(), 3);
        assert!(a.connected(3, 2));
        a.check_invariants();
    }

    #[test]
    fn merge_remapped_translates_ids() {
        // Local cover on {0,1,2} mapped to globals {10,11,12}.
        let local = path_cover();
        let mut global = TwoHopCover::with_nodes(13);
        global.merge_remapped(&local, &[10, 11, 12]);
        assert!(global.connected(10, 12));
        assert!(!global.connected(0, 2));
        global.check_invariants();
    }

    #[test]
    fn removal_updates_inverted_index() {
        let mut c = path_cover();
        assert!(c.remove_out(0, 1));
        assert!(!c.remove_out(0, 1));
        assert!(!c.connected(0, 2));
        assert_eq!(c.size(), 1);
        c.check_invariants();
    }

    #[test]
    fn retain_filters() {
        let mut c = TwoHopCover::with_nodes(5);
        c.add_out(0, 1);
        c.add_out(0, 2);
        c.add_out(0, 3);
        c.retain_out(0, |ctr| ctr != 2);
        assert_eq!(c.lout(0), &[1, 3]);
        c.retain_in(0, |_| false); // empty Lin, still fine
        c.check_invariants();
    }

    #[test]
    fn set_labels_wholesale() {
        let mut c = path_cover();
        c.set_lout(0, &[2]);
        assert_eq!(c.lout(0), &[2]);
        assert!(c.connected(0, 2)); // now via 2 ∈ Lout(0)
        c.set_lin(2, &[]);
        assert_eq!(c.size(), 1);
        c.check_invariants();
    }

    #[test]
    fn purge_node_removes_all_traces() {
        let mut c = path_cover();
        c.add_out(0, 2);
        c.purge_node(1);
        assert_eq!(c.lout(0), &[2]);
        assert!(c.lin(2).is_empty());
        assert!(c.holders_out(1).is_empty());
        assert_eq!(c.size(), 1);
        c.check_invariants();
    }

    #[test]
    fn entries_iterators() {
        let c = path_cover();
        let outs: Vec<_> = c.iter_out_entries().collect();
        let ins: Vec<_> = c.iter_in_entries().collect();
        assert_eq!(outs, vec![(0, 1)]);
        assert_eq!(ins, vec![(2, 1)]);
    }

    #[test]
    fn descendants_via_multiple_centers() {
        // 0 -> {1,2} as centers; 1 -> 3, 2 -> 4.
        let mut c = TwoHopCover::with_nodes(5);
        c.add_out(0, 1);
        c.add_out(0, 2);
        c.add_in(3, 1);
        c.add_in(4, 2);
        assert_eq!(c.descendants(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(c.ancestors(4), vec![0, 2, 4]);
    }
}
