//! Greedy 2-hop cover construction (Cohen et al.) with HOPI's optimizations.
//!
//! The builder consumes a [`TransitiveClosure`] and maintains the set `T'`
//! of not-yet-covered connections. Each round picks the center `w` whose
//! center graph has the densest subgraph among all candidates, adds `w` to
//! the labels of the chosen ancestors/descendants, and removes the covered
//! connections from `T'` (paper §3.2).
//!
//! HOPI's optimizations implemented here:
//!
//! 1. **Lazy priority queue**: densities only decrease as `T'` shrinks, so
//!    each node is held in a max-heap under a stale upper bound. On pop the
//!    exact densest subgraph is recomputed; if it still beats the next heap
//!    entry the center is committed, otherwise reinserted with the fresh
//!    value. This recomputes densest subgraphs "for only few instead of all
//!    nodes".
//! 2. **Initial center graphs are complete bipartite**, hence their own
//!    densest subgraphs — the initial priorities `a·d/(a+d)` cost nothing to
//!    compute.
//! 3. **Link-target center preselection** (paper §4.2): designated centers
//!    (targets of cross-partition links) are committed *first*, covering all
//!    connections through them, before the greedy loop starts — reducing
//!    redundant entries that the later cover join would otherwise duplicate.

use crate::cover::TwoHopCover;
use crate::densest::{complete_bipartite_density, densest_subgraph, BipartiteCenterGraph};
use hopi_graph::{FixedBitSet, TransitiveClosure};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry ordered by density.
struct HeapEntry {
    density: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.density == other.density && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.density
            .total_cmp(&other.density)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Statistics of one cover construction, reported by the benchmarks.
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Number of centers committed.
    pub centers: usize,
    /// Number of densest-subgraph recomputations performed.
    pub densest_evals: usize,
    /// Number of heap reinsertion (stale priority) events.
    pub reinsertions: usize,
    /// Connections covered by preselected centers (paper §4.2).
    pub preselected_covered: usize,
}

/// Greedy 2-hop cover builder over a reflexive-transitive closure.
///
/// ```
/// use hopi_core::CoverBuilder;
/// use hopi_graph::{DiGraph, TransitiveClosure};
///
/// let mut g = DiGraph::new();
/// for (u, v) in [(0, 1), (1, 2), (1, 3)] {
///     g.add_edge(u, v);
/// }
/// let tc = TransitiveClosure::from_graph(&g);
/// let cover = CoverBuilder::new(&tc).build();
///
/// // The cover answers exactly the closure…
/// assert!(cover.connected(0, 3));
/// assert!(!cover.connected(2, 3));
/// // …while storing fewer entries than the closure has connections.
/// assert!(cover.size() <= tc.connection_count());
/// ```
pub struct CoverBuilder<'a> {
    tc: &'a TransitiveClosure,
    /// Uncovered connections, forward rows (reflexive pairs excluded — they
    /// are implicitly covered by the unstored self-labels).
    unc_out: Vec<FixedBitSet>,
    /// Transposed uncovered rows.
    unc_in: Vec<FixedBitSet>,
    remaining: usize,
    cover: TwoHopCover,
    stats: BuildStats,
}

impl<'a> CoverBuilder<'a> {
    /// Creates a builder; `T'` starts as all non-reflexive connections.
    pub fn new(tc: &'a TransitiveClosure) -> Self {
        let n = tc.num_nodes();
        let mut unc_out = Vec::with_capacity(n);
        let mut unc_in = vec![FixedBitSet::new(n); n];
        let mut remaining = 0usize;
        for u in 0..n as u32 {
            let mut row = tc.descendants(u).clone();
            row.grow(n);
            row.remove(u);
            remaining += row.count();
            for v in row.iter() {
                unc_in[v as usize].insert(u);
            }
            unc_out.push(row);
        }
        CoverBuilder {
            tc,
            unc_out,
            unc_in,
            remaining,
            cover: TwoHopCover::with_nodes(n),
            stats: BuildStats::default(),
        }
    }

    /// Number of connections still uncovered.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Runs the full construction and returns the cover.
    pub fn build(mut self) -> TwoHopCover {
        self.run();
        self.cover
    }

    /// Runs the construction and also returns build statistics.
    pub fn build_with_stats(mut self) -> (TwoHopCover, BuildStats) {
        self.run();
        (self.cover, self.stats)
    }

    /// Commits `preselected` (e.g. cross-partition link targets, paper §4.2)
    /// as centers covering *all* their connections, then runs the greedy
    /// loop for the remainder.
    pub fn build_with_preselected(mut self, preselected: &[u32]) -> (TwoHopCover, BuildStats) {
        for &t in preselected {
            if (t as usize) >= self.tc.num_nodes() || !self.tc.is_alive(t) {
                continue;
            }
            let cin = self.tc.ancestors(t).to_vec();
            let cout = self.tc.descendants(t).to_vec();
            let covered = self.commit_center(t, &cin, &cout);
            self.stats.preselected_covered += covered;
        }
        self.run();
        (self.cover, self.stats)
    }

    fn run(&mut self) {
        let n = self.tc.num_nodes();
        let mut heap = BinaryHeap::with_capacity(n);
        for w in 0..n as u32 {
            if !self.tc.is_alive(w) {
                continue;
            }
            let a = self.tc.ancestors(w).count();
            let d = self.tc.descendants(w).count();
            let density = complete_bipartite_density(a, d);
            if density > 0.0 {
                heap.push(HeapEntry { node: w, density });
            }
        }
        while self.remaining > 0 {
            let entry = heap
                .pop()
                .expect("connections uncovered but candidate heap exhausted");
            let w = entry.node;
            let Some(cg) = self.center_graph(w) else {
                continue; // no uncovered connection runs through w anymore
            };
            self.stats.densest_evals += 1;
            let Some(result) = densest_subgraph(&cg) else {
                continue;
            };
            let next_best = heap.peek().map_or(0.0, |e| e.density);
            if result.density + 1e-9 >= next_best {
                self.commit_center(w, &result.left, &result.right);
                // w may still be useful for other connections later.
                if !self.unc_in[w as usize].is_empty() || !self.unc_out[w as usize].is_empty() {
                    heap.push(HeapEntry {
                        node: w,
                        density: result.density,
                    });
                }
            } else {
                self.stats.reinsertions += 1;
                heap.push(HeapEntry {
                    node: w,
                    density: result.density,
                });
            }
        }
    }

    /// Materializes the center graph of `w` restricted to uncovered
    /// connections. Returns `None` when empty.
    fn center_graph(&self, w: u32) -> Option<BipartiteCenterGraph> {
        let cin = self.tc.ancestors(w);
        let cout = self.tc.descendants(w);
        let right: Vec<u32> = cout.to_vec();
        if right.is_empty() {
            return None;
        }
        // Map right node ids to side indices.
        let mut right_pos = vec![u32::MAX; self.tc.num_nodes()];
        for (j, &v) in right.iter().enumerate() {
            right_pos[v as usize] = j as u32;
        }
        let mut left = Vec::new();
        let mut adj = Vec::new();
        let mut edges = 0usize;
        for u in cin.iter() {
            let mut row = self.unc_out[u as usize].clone();
            row.intersect_with(cout);
            let cnt = row.count();
            if cnt == 0 {
                continue;
            }
            edges += cnt;
            let mut side_row = FixedBitSet::new(right.len());
            for v in row.iter() {
                side_row.insert(right_pos[v as usize]);
            }
            left.push(u);
            adj.push(side_row);
        }
        if edges == 0 {
            return None;
        }
        Some(BipartiteCenterGraph { left, right, adj })
    }

    /// Adds `w` to the labels of `cin`/`cout` and removes the covered
    /// connections from `T'`. Returns the number of newly covered
    /// connections.
    fn commit_center(&mut self, w: u32, cin: &[u32], cout: &[u32]) -> usize {
        let n = self.tc.num_nodes();
        let mut cout_set = FixedBitSet::new(n);
        for &v in cout {
            cout_set.insert(v);
        }
        let mut cin_set = FixedBitSet::new(n);
        for &u in cin {
            cin_set.insert(u);
        }
        let mut covered = 0usize;
        for &u in cin {
            covered += self.unc_out[u as usize].intersection_count(&cout_set);
            self.unc_out[u as usize].difference_with(&cout_set);
        }
        for &v in cout {
            self.unc_in[v as usize].difference_with(&cin_set);
        }
        self.remaining -= covered;
        for &u in cin {
            self.cover.add_out(u, w);
        }
        for &v in cout {
            self.cover.add_in(v, w);
        }
        self.stats.centers += 1;
        covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_graph::DiGraph;
    use rand::prelude::*;

    fn closure_of(edges: &[(u32, u32)], n: u32) -> (DiGraph, TransitiveClosure) {
        let mut g = DiGraph::new();
        g.ensure_node(n - 1);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        let tc = TransitiveClosure::from_graph(&g);
        (g, tc)
    }

    /// The cover must agree with the closure on every pair.
    fn assert_cover_exact(cover: &TwoHopCover, tc: &TransitiveClosure, n: u32) {
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    cover.connected(u, v),
                    tc.contains(u, v),
                    "pair ({u},{v}) mismatch"
                );
            }
        }
    }

    #[test]
    fn covers_a_path() {
        let (_, tc) = closure_of(&[(0, 1), (1, 2), (2, 3)], 4);
        let cover = CoverBuilder::new(&tc).build();
        assert_cover_exact(&cover, &tc, 4);
        cover.check_invariants();
        // 2-hop covers compress: the path closure has 6 non-reflexive
        // connections, the cover should need fewer entries than that.
        assert!(cover.size() <= 6, "cover size {} too large", cover.size());
    }

    #[test]
    fn covers_a_diamond() {
        let (_, tc) = closure_of(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let cover = CoverBuilder::new(&tc).build();
        assert_cover_exact(&cover, &tc, 4);
    }

    #[test]
    fn covers_cycles() {
        let (_, tc) = closure_of(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let cover = CoverBuilder::new(&tc).build();
        assert_cover_exact(&cover, &tc, 4);
    }

    #[test]
    fn empty_graph_empty_cover() {
        let (_, tc) = closure_of(&[], 3);
        let cover = CoverBuilder::new(&tc).build();
        assert_eq!(cover.size(), 0);
        assert!(cover.connected(1, 1));
        assert!(!cover.connected(0, 1));
    }

    #[test]
    fn bipartite_hub_prefers_center() {
        // Complete bipartite through a hub: 0,1,2 -> 3 -> 4,5,6. The greedy
        // algorithm should pick 3 as (nearly) the only center, giving a
        // cover of ~6 entries vs 15 closure connections.
        let (_, tc) = closure_of(&[(0, 3), (1, 3), (2, 3), (3, 4), (3, 5), (3, 6)], 7);
        let (cover, stats) = CoverBuilder::new(&tc).build_with_stats();
        assert_cover_exact(&cover, &tc, 7);
        assert!(cover.size() <= 8, "hub cover size {}", cover.size());
        assert!(stats.centers >= 1);
    }

    #[test]
    fn random_graphs_exact() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..25 {
            let n = rng.gen_range(5..40);
            let m = rng.gen_range(0..3 * n);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let (_, tc) = closure_of(&edges, n);
            let cover = CoverBuilder::new(&tc).build();
            assert_cover_exact(&cover, &tc, n);
            cover.check_invariants();
            let _ = round;
        }
    }

    #[test]
    fn preselected_centers_cover_their_connections() {
        let (_, tc) = closure_of(&[(0, 1), (1, 2), (2, 3)], 4);
        let (cover, stats) = CoverBuilder::new(&tc).build_with_preselected(&[2]);
        assert_cover_exact(&cover, &tc, 4);
        // Node 2 covers (0,2),(1,2),(0,3),(1,3),(2,3): 5 connections.
        assert_eq!(stats.preselected_covered, 5);
        // 2 sits in the Lout of its ancestors and Lin of its descendants.
        assert!(cover.lout(0).contains(&2));
        assert!(cover.lout(1).contains(&2));
        assert!(cover.lin(3).contains(&2));
    }

    #[test]
    fn preselected_unknown_nodes_ignored() {
        let (_, tc) = closure_of(&[(0, 1)], 2);
        let (cover, _) = CoverBuilder::new(&tc).build_with_preselected(&[77]);
        assert_cover_exact(&cover, &tc, 2);
    }

    #[test]
    fn stats_reflect_lazy_queue() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..120)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let (_, tc) = closure_of(&edges, n);
        let (_, stats) = CoverBuilder::new(&tc).build_with_stats();
        // Lazy evaluation must not evaluate more often than once per commit
        // plus reinsertions.
        assert!(stats.densest_evals <= stats.centers + stats.reinsertions + n as usize);
    }

    #[test]
    fn compression_on_layered_dag() {
        // Layered DAG where a transitive closure is quadratic but a 2-hop
        // cover stays near-linear: k layers fully connected to the next.
        let k = 6u32;
        let w = 4u32;
        let mut edges = Vec::new();
        for layer in 0..k - 1 {
            for i in 0..w {
                for j in 0..w {
                    edges.push((layer * w + i, (layer + 1) * w + j));
                }
            }
        }
        let n = k * w;
        let (_, tc) = closure_of(&edges, n);
        let cover = CoverBuilder::new(&tc).build();
        assert_cover_exact(&cover, &tc, n);
        let closure_conns = tc.connection_count() - n as usize; // non-reflexive
        assert!(
            cover.size() < closure_conns,
            "cover {} !< closure {}",
            cover.size(),
            closure_conns
        );
    }
}
