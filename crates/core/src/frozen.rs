//! Immutable CSR snapshot of a 2-hop cover — the read-optimized serving
//! form.
//!
//! The mutable [`TwoHopCover`] keeps one heap `Vec` per node and per
//! inverted-center row; every query chases pointers and descendant
//! enumeration allocates a hash set. A [`FrozenCover`] freezes the same
//! labels into **one contiguous buffer** with four offset tables (`Lin`,
//! `Lout` and both inverted directions), so:
//!
//! * `connected`/`distance` are allocation-free sorted-merge scans over
//!   contiguous rows,
//! * `descendants`/`ancestors` walk contiguous holder lists (no hashing;
//!   caller-supplied buffers via the `_into` variants),
//! * [`FrozenCover::connected_many`] batches §3.4-style `LIN ⋈ LOUT` join
//!   probes, amortizing row lookups across a probe set.
//!
//! A frozen cover optionally carries the distance annotations of a
//! [`DistanceCover`] (paper §5), answering `distance` from the same layout.
//! Freezing is one-way by construction, but [`FrozenCover::thaw`] /
//! [`FrozenCover::thaw_distance`] rebuild the mutable forms without any
//! re-sorting — rows are stored sorted — which is how a persisted frozen
//! blob is reopened for maintenance.

use crate::cover::{sorted_intersects, NodeId, TwoHopCover};
use crate::distance::DistanceCover;
use crate::source::{CoverStats, LabelSource};

/// Section boundaries of one node's rows inside the shared data buffer.
#[derive(Clone, Debug, Default)]
struct Offsets {
    /// `len n + 1`, absolute indices into the shared buffer.
    off: Vec<u32>,
}

impl Offsets {
    fn row(&self, v: NodeId) -> std::ops::Range<usize> {
        match self.off.get(v as usize..v as usize + 2) {
            Some(w) => w[0] as usize..w[1] as usize,
            None => 0..0,
        }
    }
}

/// An immutable, cache-friendly snapshot of a [`TwoHopCover`] (optionally
/// with the distance annotations of a [`DistanceCover`]).
///
/// ```
/// use hopi_core::{FrozenCover, TwoHopCover};
///
/// // Cover for the path 0 → 1 → 2 with node 1 as the center.
/// let mut cover = TwoHopCover::with_nodes(3);
/// cover.add_out(0, 1);
/// cover.add_in(2, 1);
/// let frozen = FrozenCover::from_cover(&cover);
///
/// assert!(frozen.connected(0, 2));
/// assert!(!frozen.connected(2, 0));
/// assert_eq!(frozen.descendants(0), vec![0, 1, 2]);
/// assert_eq!(frozen.size(), cover.size());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FrozenCover {
    /// `[Lin | Lout | inv_in | inv_out]` rows, each row sorted.
    data: Vec<NodeId>,
    lin: Offsets,
    lout: Offsets,
    /// `inv_in` rows: nodes holding `c` in `Lin` (`c` reaches them).
    inv_in: Offsets,
    /// `inv_out` rows: nodes holding `c` in `Lout` (they reach `c`).
    inv_out: Offsets,
    /// Distance annotations parallel to the `Lin`/`Lout` prefix of `data`.
    dist: Option<Vec<u32>>,
    /// Per-node 64-bit signature of `Lout(u) ∪ {u}` (Bloom-style join
    /// filter): a probe whose signatures do not intersect is provably
    /// unreachable, skipping the row scans entirely. Derived data, rebuilt
    /// on every construction path.
    sig_out: Vec<u64>,
    /// Per-node signature of `Lin(v) ∪ {v}`.
    sig_in: Vec<u64>,
    n: usize,
}

/// One bit of the 64-bit center signature (multiplicative hash).
#[inline]
fn sig_bit(x: NodeId) -> u64 {
    1u64 << ((x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

impl FrozenCover {
    /// Freezes a mutable cover into the CSR form.
    pub fn from_cover(cover: &TwoHopCover) -> Self {
        let n = cover.num_nodes();
        Self::build(
            n,
            |v| LabelRow::Plain(cover.lin(v)),
            |v| LabelRow::Plain(cover.lout(v)),
            false,
        )
    }

    /// Freezes a distance-aware cover, keeping the distance annotations so
    /// [`FrozenCover::distance`] answers the §5.1 `MIN(DIST + DIST)` query.
    pub fn from_distance_cover(cover: &DistanceCover) -> Self {
        let n = cover.num_nodes();
        Self::build(
            n,
            |v| LabelRow::Annotated(cover.lin(v)),
            |v| LabelRow::Annotated(cover.lout(v)),
            true,
        )
    }

    /// Largest supported label-entry count: the shared buffer holds the
    /// `Lin`/`Lout` prefix *plus* the equally sized inverted sections, so
    /// every offset (≤ 2 × entries) must still fit in a `u32`.
    pub const MAX_LABEL_ENTRIES: usize = (u32::MAX / 2) as usize;

    fn build<'a>(
        n: usize,
        lin_row: impl Fn(NodeId) -> LabelRow<'a>,
        lout_row: impl Fn(NodeId) -> LabelRow<'a>,
        with_dist: bool,
    ) -> Self {
        let mut data: Vec<NodeId> = Vec::new();
        let mut dist: Vec<u32> = Vec::new();
        let mut lin = Vec::with_capacity(n + 1);
        let mut lout = Vec::with_capacity(n + 1);
        lin.push(0u32);
        for v in 0..n as NodeId {
            lin_row(v).append_to(&mut data, &mut dist);
            lin.push(data.len() as u32);
        }
        lout.push(data.len() as u32);
        for v in 0..n as NodeId {
            lout_row(v).append_to(&mut data, &mut dist);
            lout.push(data.len() as u32);
        }
        assert!(
            data.len() <= Self::MAX_LABEL_ENTRIES,
            "cover has {} label entries; FrozenCover supports at most {}",
            data.len(),
            Self::MAX_LABEL_ENTRIES
        );
        let mut frozen = FrozenCover {
            data,
            lin: Offsets { off: lin },
            lout: Offsets { off: lout },
            inv_in: Offsets::default(),
            inv_out: Offsets::default(),
            dist: with_dist.then_some(dist),
            sig_out: Vec::new(),
            sig_in: Vec::new(),
            n,
        };
        frozen.build_inverted();
        frozen
    }

    /// Reconstructs a frozen cover from its raw label sections (e.g. a
    /// persisted blob): `lin_off`/`lout_off` are absolute offsets into
    /// `labels` (`lin_off[0] == 0`, `lout_off[0] == lin_off[n]`,
    /// `lout_off[n] == labels.len()`), rows sorted ascending, and `dist`
    /// (when present) parallel to `labels`. The inverted sections are
    /// rebuilt by counting — no comparison sort on any row.
    pub fn from_label_csr(
        lin_off: Vec<u32>,
        lout_off: Vec<u32>,
        labels: Vec<NodeId>,
        dist: Option<Vec<u32>>,
    ) -> Result<Self, String> {
        if lin_off.len() != lout_off.len() || lin_off.is_empty() {
            return Err("offset tables must both have n + 1 entries".into());
        }
        let n = lin_off.len() - 1;
        if lin_off[0] != 0
            || lout_off[0] != lin_off[n]
            || lout_off[n] as usize != labels.len()
            || labels.len() > Self::MAX_LABEL_ENTRIES
        {
            return Err("offset tables do not tile the label buffer".into());
        }
        for off in [&lin_off, &lout_off] {
            if off.windows(2).any(|w| w[0] > w[1]) {
                return Err("offsets must be non-decreasing".into());
            }
        }
        for (i, row) in lin_off
            .windows(2)
            .chain(lout_off.windows(2))
            .enumerate()
            .map(|(i, w)| (i % n, &labels[w[0] as usize..w[1] as usize]))
        {
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err("label rows must be strictly sorted".into());
            }
            if row.iter().any(|&c| c as usize >= n || c as usize == i) {
                return Err("label center out of range or self entry".into());
            }
        }
        if let Some(d) = &dist {
            if d.len() != labels.len() {
                return Err("distance column must parallel the label buffer".into());
            }
        }
        let mut frozen = FrozenCover {
            data: labels,
            lin: Offsets { off: lin_off },
            lout: Offsets { off: lout_off },
            inv_in: Offsets::default(),
            inv_out: Offsets::default(),
            dist,
            sig_out: Vec::new(),
            sig_in: Vec::new(),
            n,
        };
        frozen.build_inverted();
        Ok(frozen)
    }

    /// Rebuilds `inv_in`/`inv_out` from the label sections by counting
    /// (stable two-pass bucket fill — holder lists come out sorted because
    /// nodes are scanned in ascending order).
    fn build_inverted(&mut self) {
        let n = self.n;
        let label_len = self.lout.off[n] as usize;
        let mut inv_in_off = vec![0u32; n + 1];
        let mut inv_out_off = vec![0u32; n + 1];
        for v in 0..n as NodeId {
            for &c in &self.data[self.lin.row(v)] {
                inv_in_off[c as usize + 1] += 1;
            }
            for &c in &self.data[self.lout.row(v)] {
                inv_out_off[c as usize + 1] += 1;
            }
        }
        let mut base = label_len as u32;
        for slot in inv_in_off.iter_mut() {
            *slot += base;
            base = *slot;
        }
        for slot in inv_out_off.iter_mut() {
            *slot += base;
            base = *slot;
        }
        self.data.resize(base as usize, 0);
        let mut in_cursor = inv_in_off.clone();
        let mut out_cursor = inv_out_off.clone();
        for v in 0..n as NodeId {
            for i in self.lin.row(v) {
                let c = self.data[i] as usize;
                self.data[in_cursor[c] as usize] = v;
                in_cursor[c] += 1;
            }
            for i in self.lout.row(v) {
                let c = self.data[i] as usize;
                self.data[out_cursor[c] as usize] = v;
                out_cursor[c] += 1;
            }
        }
        self.inv_in = Offsets { off: inv_in_off };
        self.inv_out = Offsets { off: inv_out_off };
        // Center signatures: `Lout(u) ∪ {u}` vs `Lin(v) ∪ {v}` intersect
        // whenever `u →* v` holds for `u != v` (common center, `v ∈
        // Lout(u)` or `u ∈ Lin(v)`), so disjoint signatures prove
        // unreachability.
        self.sig_out = (0..n as NodeId)
            .map(|u| {
                self.data[self.lout.row(u)]
                    .iter()
                    .fold(sig_bit(u), |sig, &c| sig | sig_bit(c))
            })
            .collect();
        self.sig_in = (0..n as NodeId)
            .map(|v| {
                self.data[self.lin.row(v)]
                    .iter()
                    .fold(sig_bit(v), |sig, &c| sig | sig_bit(c))
            })
            .collect();
    }

    /// Number of node slots.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Cover size `|L|` (stored label entries), matching
    /// [`TwoHopCover::size`].
    pub fn size(&self) -> usize {
        self.lout.off[self.n] as usize
    }

    /// Whether distance annotations are stored.
    pub fn with_dist(&self) -> bool {
        self.dist.is_some()
    }

    /// The stored `Lin(v)` (sorted, without the implicit `v` itself).
    pub fn lin(&self, v: NodeId) -> &[NodeId] {
        &self.data[self.lin.row(v)]
    }

    /// The stored `Lout(v)` (sorted, without the implicit `v` itself).
    pub fn lout(&self, v: NodeId) -> &[NodeId] {
        &self.data[self.lout.row(v)]
    }

    /// Nodes holding `c` in `Lin` (`c` reaches them), sorted.
    pub fn holders_in(&self, c: NodeId) -> &[NodeId] {
        &self.data[self.inv_in.row(c)]
    }

    /// Nodes holding `c` in `Lout` (they reach `c`), sorted.
    pub fn holders_out(&self, c: NodeId) -> &[NodeId] {
        &self.data[self.inv_out.row(c)]
    }

    /// The `Lin` offset table (`n + 1` absolute offsets into
    /// [`FrozenCover::label_data`], starting at 0).
    pub fn lin_offsets(&self) -> &[u32] {
        &self.lin.off
    }

    /// The `Lout` offset table (`n + 1` absolute offsets, ending at
    /// `label_data().len()`).
    pub fn lout_offsets(&self) -> &[u32] {
        &self.lout.off
    }

    /// The `Lin`/`Lout` label prefix of the shared buffer (the part a
    /// persisted blob stores; inverted sections are derived).
    pub fn label_data(&self) -> &[NodeId] {
        &self.data[..self.lout.off[self.n] as usize]
    }

    /// Distance annotations parallel to [`FrozenCover::label_data`], when
    /// frozen from a distance-aware cover.
    pub fn label_dists(&self) -> Option<&[u32]> {
        self.dist.as_deref()
    }

    /// The 2-hop reachability test `u →* v` (reflexive), allocation-free.
    /// Negative probes usually exit on the signature filter — two loads and
    /// an AND — without scanning any row.
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        if u as usize >= self.n || v as usize >= self.n {
            return false;
        }
        if self.sig_out[u as usize] & self.sig_in[v as usize] == 0 {
            return false;
        }
        let lout_u = self.lout(u);
        let lin_v = self.lin(v);
        if lout_u.binary_search(&v).is_ok() || lin_v.binary_search(&u).is_ok() {
            return true;
        }
        sorted_intersects(lout_u, lin_v)
    }

    /// Batched reachability kernel for §3.4-style join probes: writes
    /// `out[i] = connected(pairs[i].0, pairs[i].1)`, reusing the caller's
    /// buffer. Equivalent to probing one by one, without per-probe call
    /// overhead in the serving loop.
    pub fn connected_many(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(pairs.len());
        out.extend(pairs.iter().map(|&(u, v)| self.connected(u, v)));
    }

    /// Shortest link distance `u →* v` (`None` = unreachable). Requires
    /// distance annotations ([`FrozenCover::from_distance_cover`]); covers
    /// without them report `None` for `u != v`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let dist = self.dist.as_deref()?;
        if u as usize >= self.n || v as usize >= self.n {
            return None;
        }
        let (lr, or) = (self.lin.row(v), self.lout.row(u));
        let (lin_v, lout_u) = (&self.data[lr.clone()], &self.data[or.clone()]);
        let (lin_d, lout_d) = (&dist[lr], &dist[or]);
        let mut best: Option<u32> = None;
        let mut consider = |d: u32| best = Some(best.map_or(d, |b| b.min(d)));
        if let Ok(pos) = lout_u.binary_search(&v) {
            consider(lout_d[pos]);
        }
        if let Ok(pos) = lin_v.binary_search(&u) {
            consider(lin_d[pos]);
        }
        let (mut i, mut j) = (0, 0);
        while i < lout_u.len() && j < lin_v.len() {
            match lout_u[i].cmp(&lin_v[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    consider(lout_d[i] + lin_d[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// Iterates the descendant closure of `u` (including `u`) **with
    /// duplicates** — the raw union of the holder lists of `u` and of every
    /// center in `Lout(u)`. Feed it through
    /// [`FrozenCover::descendants_into`] (or collect + sort + dedup) for
    /// the set.
    pub fn descendants_unmerged(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(u)
            .chain(self.holders_in(u).iter().copied())
            .chain(
                self.lout(u).iter().flat_map(move |&c| {
                    std::iter::once(c).chain(self.holders_in(c).iter().copied())
                }),
            )
    }

    /// Iterates the ancestor closure of `u` (including `u`) with
    /// duplicates; mirror of [`FrozenCover::descendants_unmerged`].
    pub fn ancestors_unmerged(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(u)
            .chain(self.holders_out(u).iter().copied())
            .chain(
                self.lin(u).iter().flat_map(move |&c| {
                    std::iter::once(c).chain(self.holders_out(c).iter().copied())
                }),
            )
    }

    /// All descendants of `u` (including `u`), sorted + deduped into the
    /// caller's buffer (no hashing; reuse the buffer across calls).
    pub fn descendants_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        if u as usize >= self.n {
            out.push(u);
            return;
        }
        out.extend(self.descendants_unmerged(u));
        out.sort_unstable();
        out.dedup();
    }

    /// All ancestors of `u` (including `u`), sorted + deduped into the
    /// caller's buffer.
    pub fn ancestors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        if u as usize >= self.n {
            out.push(u);
            return;
        }
        out.extend(self.ancestors_unmerged(u));
        out.sort_unstable();
        out.dedup();
    }

    /// All descendants of `u` (including `u`), sorted.
    pub fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.descendants_into(u, &mut out);
        out
    }

    /// All ancestors of `u` (including `u`), sorted.
    pub fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.ancestors_into(u, &mut out);
        out
    }

    /// Rebuilds the mutable cover (no re-sorting: rows are stored sorted).
    pub fn thaw(&self) -> TwoHopCover {
        TwoHopCover::from_sorted_label_rows(
            (0..self.n as NodeId)
                .map(|v| self.lin(v).to_vec())
                .collect(),
            (0..self.n as NodeId)
                .map(|v| self.lout(v).to_vec())
                .collect(),
        )
    }

    /// Rebuilds the mutable distance-aware cover, when annotations are
    /// stored.
    pub fn thaw_distance(&self) -> Option<DistanceCover> {
        let dist = self.dist.as_deref()?;
        let annotated = |range: std::ops::Range<usize>| -> Vec<(u32, u32)> {
            self.data[range.clone()]
                .iter()
                .copied()
                .zip(dist[range].iter().copied())
                .collect()
        };
        Some(DistanceCover::from_sorted_label_rows(
            (0..self.n as NodeId)
                .map(|v| annotated(self.lin.row(v)))
                .collect(),
            (0..self.n as NodeId)
                .map(|v| annotated(self.lout.row(v)))
                .collect(),
        ))
    }
}

impl LabelSource for FrozenCover {
    fn connected(&self, u: NodeId, v: NodeId) -> bool {
        FrozenCover::connected(self, u, v)
    }

    fn num_nodes(&self) -> usize {
        FrozenCover::num_nodes(self)
    }

    fn lin_row(&self, v: NodeId) -> &[NodeId] {
        self.lin(v)
    }

    fn lout_row(&self, v: NodeId) -> &[NodeId] {
        self.lout(v)
    }

    fn holders_in_row(&self, c: NodeId) -> &[NodeId] {
        self.holders_in(c)
    }

    fn holders_out_row(&self, c: NodeId) -> &[NodeId] {
        self.holders_out(c)
    }

    fn cover_stats(&self) -> CoverStats {
        CoverStats {
            nodes: self.n,
            lin_entries: self.lin.off[self.n] as usize,
            lout_entries: (self.lout.off[self.n] - self.lin.off[self.n]) as usize,
        }
    }

    fn descendants(&self, u: NodeId) -> Vec<NodeId> {
        FrozenCover::descendants(self, u)
    }

    fn ancestors(&self, u: NodeId) -> Vec<NodeId> {
        FrozenCover::ancestors(self, u)
    }

    fn descendants_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        FrozenCover::descendants_into(self, u, out)
    }

    fn ancestors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        FrozenCover::ancestors_into(self, u, out)
    }
}

/// One source row during freezing: plain centers or `(center, dist)` pairs.
enum LabelRow<'a> {
    Plain(&'a [NodeId]),
    Annotated(&'a [(u32, u32)]),
}

impl LabelRow<'_> {
    fn append_to(&self, data: &mut Vec<NodeId>, dist: &mut Vec<u32>) {
        match self {
            LabelRow::Plain(row) => data.extend_from_slice(row),
            LabelRow::Annotated(row) => {
                data.extend(row.iter().map(|&(c, _)| c));
                dist.extend(row.iter().map(|&(_, d)| d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CoverBuilder;
    use hopi_graph::{DiGraph, DistanceClosure, TransitiveClosure};
    use rand::prelude::*;

    /// Cover for the path 0 -> 1 -> 2 with center 1.
    fn path_cover() -> TwoHopCover {
        let mut c = TwoHopCover::with_nodes(3);
        c.add_out(0, 1);
        c.add_in(2, 1);
        c
    }

    fn random_cover(seed: u64, n: u32, m: usize) -> (TwoHopCover, DiGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DiGraph::new();
        g.ensure_node(n - 1);
        for _ in 0..m {
            g.add_edge(rng.gen_range(0..n), rng.gen_range(0..n));
        }
        let cover = CoverBuilder::new(&TransitiveClosure::from_graph(&g)).build();
        (cover, g)
    }

    #[test]
    fn matches_live_cover_on_path() {
        let live = path_cover();
        let frozen = FrozenCover::from_cover(&live);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(frozen.connected(u, v), live.connected(u, v), "({u},{v})");
            }
            assert_eq!(frozen.descendants(u), live.descendants(u));
            assert_eq!(frozen.ancestors(u), live.ancestors(u));
            assert_eq!(frozen.lin(u), live.lin(u));
            assert_eq!(frozen.lout(u), live.lout(u));
        }
        assert_eq!(frozen.size(), live.size());
        assert!(!frozen.with_dist());
    }

    #[test]
    fn matches_live_cover_randomized() {
        for seed in [1u64, 7, 42] {
            let (live, _) = random_cover(seed, 24, 60);
            let frozen = FrozenCover::from_cover(&live);
            for u in 0..24 {
                for v in 0..24 {
                    assert_eq!(frozen.connected(u, v), live.connected(u, v), "({u},{v})");
                }
                assert_eq!(frozen.descendants(u), live.descendants(u), "desc {u}");
                assert_eq!(frozen.ancestors(u), live.ancestors(u), "anc {u}");
                let mut hin = live.holders_in(u).to_vec();
                hin.sort_unstable();
                assert_eq!(frozen.holders_in(u), hin, "holders_in {u}");
            }
        }
    }

    #[test]
    fn out_of_range_nodes_are_isolated() {
        let frozen = FrozenCover::from_cover(&path_cover());
        assert!(frozen.connected(99, 99));
        assert!(!frozen.connected(0, 99));
        assert!(!frozen.connected(99, 0));
        assert_eq!(frozen.descendants(99), vec![99]);
        assert_eq!(frozen.distance(99, 99), Some(0));
    }

    #[test]
    fn connected_many_matches_scalar() {
        let (live, _) = random_cover(3, 16, 40);
        let frozen = FrozenCover::from_cover(&live);
        let pairs: Vec<(u32, u32)> = (0..16).flat_map(|u| (0..16).map(move |v| (u, v))).collect();
        let mut out = Vec::new();
        frozen.connected_many(&pairs, &mut out);
        for (&(u, v), &got) in pairs.iter().zip(&out) {
            assert_eq!(got, live.connected(u, v), "({u},{v})");
        }
    }

    #[test]
    fn distance_annotations_survive_freezing() {
        let mut g = DiGraph::new();
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            g.add_edge(u, v);
        }
        let dc = DistanceClosure::from_graph(&g);
        let live = crate::DistanceCoverBuilder::new(&dc).build();
        let frozen = FrozenCover::from_distance_cover(&live);
        assert!(frozen.with_dist());
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(frozen.distance(u, v), live.distance(u, v), "({u},{v})");
                assert_eq!(frozen.connected(u, v), live.connected(u, v));
            }
        }
    }

    #[test]
    fn thaw_roundtrips() {
        let (live, _) = random_cover(11, 20, 50);
        let frozen = FrozenCover::from_cover(&live);
        let thawed = frozen.thaw();
        thawed.check_invariants();
        assert_eq!(thawed.size(), live.size());
        for u in 0..20 {
            assert_eq!(thawed.lin(u), live.lin(u));
            assert_eq!(thawed.lout(u), live.lout(u));
        }
    }

    #[test]
    fn thaw_distance_roundtrips() {
        let mut g = DiGraph::new();
        for (u, v) in [(0, 1), (1, 2), (0, 3), (3, 2)] {
            g.add_edge(u, v);
        }
        let dc = DistanceClosure::from_graph(&g);
        let live = crate::DistanceCoverBuilder::new(&dc).build();
        let frozen = FrozenCover::from_distance_cover(&live);
        let thawed = frozen.thaw_distance().expect("annotations stored");
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(thawed.distance(u, v), live.distance(u, v), "({u},{v})");
            }
        }
        assert!(FrozenCover::from_cover(&path_cover())
            .thaw_distance()
            .is_none());
    }

    #[test]
    fn label_csr_roundtrip_and_validation() {
        let (live, _) = random_cover(5, 12, 30);
        let frozen = FrozenCover::from_cover(&live);
        let rebuilt = FrozenCover::from_label_csr(
            frozen.lin_offsets().to_vec(),
            frozen.lout_offsets().to_vec(),
            frozen.label_data().to_vec(),
            None,
        )
        .expect("valid CSR");
        for u in 0..12 {
            assert_eq!(rebuilt.lin(u), frozen.lin(u));
            assert_eq!(rebuilt.lout(u), frozen.lout(u));
            assert_eq!(rebuilt.holders_in(u), frozen.holders_in(u));
            assert_eq!(rebuilt.holders_out(u), frozen.holders_out(u));
        }
        // Corruptions are rejected.
        assert!(FrozenCover::from_label_csr(vec![0, 1], vec![1], vec![0], None).is_err());
        assert!(FrozenCover::from_label_csr(vec![0, 2], vec![2, 2], vec![1, 0], None).is_err());
        assert!(FrozenCover::from_label_csr(vec![0, 1], vec![1, 1], vec![7], None).is_err());
        assert!(
            FrozenCover::from_label_csr(vec![0, 0], vec![0, 0], vec![], Some(vec![1])).is_err()
        );
    }

    #[test]
    fn unmerged_iterators_cover_the_set() {
        let (live, _) = random_cover(9, 18, 45);
        let frozen = FrozenCover::from_cover(&live);
        for u in 0..18 {
            let mut v: Vec<u32> = frozen.descendants_unmerged(u).collect();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v, live.descendants(u));
            let mut a: Vec<u32> = frozen.ancestors_unmerged(u).collect();
            a.sort_unstable();
            a.dedup();
            assert_eq!(a, live.ancestors(u));
        }
    }
}
