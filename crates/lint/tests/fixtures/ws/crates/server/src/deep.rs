//! Fixture: a blocking fsync reached two calls deep while a mutex guard
//! is live (`top` → `mid` → `bottom` → `sync_data`), plus a negative
//! twin that drops the guard before making the same call.

use std::sync::{Mutex, PoisonError};

pub struct Deep {
    m: Mutex<u32>,
}

impl Deep {
    pub fn top(&self, f: &std::fs::File) {
        let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
        mid(f);
        drop(g);
    }

    pub fn dropped(&self, f: &std::fs::File) {
        let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
        drop(g);
        mid(f);
    }
}

pub fn mid(f: &std::fs::File) {
    bottom(f);
}

pub fn bottom(f: &std::fs::File) {
    let _ = f.sync_data();
}
