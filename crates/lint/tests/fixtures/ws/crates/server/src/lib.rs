//! Fixture serve-path crate (deliberately missing `#![forbid(unsafe_code)]`).

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn pick(v: &[u32]) -> u32 {
    v[0] + v[1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn masked() {
        assert_eq!(super::take(Some(1)), 1);
        None::<u32>.unwrap();
    }
}
