//! Fixture: two methods acquiring the same pair of mutexes in opposite
//! orders — the lock-order rule must report one cycle, anchored at the
//! second acquisition of `a`, with both witness chains rendered.
#![forbid(unsafe_code)]

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    x: Mutex<u32>,
    y: Mutex<u32>,
}

impl Pair {
    pub fn a(&self) -> u32 {
        let gx = self.x.lock().unwrap_or_else(PoisonError::into_inner);
        let gy = self.y.lock().unwrap_or_else(PoisonError::into_inner);
        *gx + *gy
    }

    pub fn b(&self) -> u32 {
        let gy = self.y.lock().unwrap_or_else(PoisonError::into_inner);
        let gx = self.x.lock().unwrap_or_else(PoisonError::into_inner);
        *gx - *gy
    }
}
