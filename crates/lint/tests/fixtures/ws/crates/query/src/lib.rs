//! Fixture query crate root.

#![forbid(unsafe_code)]

mod adversarial;
