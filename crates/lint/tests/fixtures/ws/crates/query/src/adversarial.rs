//! Adversarial shapes the lexer must not mis-tokenize.

pub fn hidden() -> &'static str {
    // .unwrap() inside a comment must not count
    /* nor inside /* a nested */ block comment: panic!("no") */
    r#"x.unwrap() and panic!("raw string contents do not count")"#
}

pub fn real(x: Option<u32>) -> u32 {
    x.expect("the only live finding in this file")
}

#[cfg(test)]
pub fn test_only(v: Vec<u32>) -> u32 {
    v[0]
}
