//! Fixture VFS module: the one place in the store crate allowed to call
//! the real filesystem directly — `direct-io` must not fire here.

pub fn passthrough(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    let _o = std::fs::OpenOptions::new().read(true).open(path)?;
    std::fs::read(path)
}
