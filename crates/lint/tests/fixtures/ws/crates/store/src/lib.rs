//! Fixture store crate: a guard held across an fsync.

#![forbid(unsafe_code)]

pub fn flush(m: &std::sync::Mutex<std::fs::File>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    g.sync_data().ok();
}
