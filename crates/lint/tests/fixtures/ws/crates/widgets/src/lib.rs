//! Fixture library crate with hygiene violations.

#![forbid(unsafe_code)]

pub fn log() {
    println!("library code must not print");
}

pub fn open() -> Result<(), Box<dyn std::error::Error>> {
    Ok(())
}
