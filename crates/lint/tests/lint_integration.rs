//! End-to-end tests: exact finding locations on an adversarial fixture
//! workspace, the ratchet against the real workspace, and the
//! injected-regression demonstration the ISSUE acceptance criteria name
//! (a fresh `unwrap()` in `crates/server/src/router.rs` must flip
//! `hopi-lint --check` from exit 0 to nonzero).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// A scratch directory that is removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hopi-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn fixture_workspace_findings_are_exact() {
    let reports = hopi_lint::scan::scan_workspace(&fixture_ws()).expect("scan fixture ws");
    let mut got: Vec<(String, String, u32)> = reports
        .iter()
        .flat_map(|r| {
            r.findings
                .iter()
                .map(|f| (r.path.clone(), f.rule.to_string(), f.line))
        })
        .collect();
    got.sort();
    let mut want: Vec<(String, String, u32)> = vec![
        // build: two methods take the same pair of mutexes in opposite
        // orders — one lock-order cycle, anchored at `a`'s second
        // acquisition. The matching chains are checked separately in
        // `fixture_witness_chains_render_across_functions`.
        ("crates/build/src/lib.rs".into(), "lock-order".into(), 16),
        // server/deep.rs: fsync two calls deep while a guard is live;
        // the `dropped` twin releases the guard first and stays silent.
        (
            "crates/server/src/deep.rs".into(),
            "blocking-under-lock".into(),
            14,
        ),
        // server: unmasked unwrap + two slice indexes + missing forbid;
        // the #[cfg(test)] mod with its unwrap() is masked.
        (
            "crates/server/src/lib.rs".into(),
            "missing-forbid-unsafe".into(),
            1,
        ),
        ("crates/server/src/lib.rs".into(), "unwrap".into(), 4),
        ("crates/server/src/lib.rs".into(), "slice-index".into(), 8),
        ("crates/server/src/lib.rs".into(), "slice-index".into(), 8),
        // query: comments, nested comments, and raw strings hide their
        // unwrap/panic text; only the live expect fires.
        (
            "crates/query/src/adversarial.rs".into(),
            "expect".into(),
            10,
        ),
        // store: guard live across sync_data, plus a direct `std::fs`
        // path outside the VFS module; the fixture vfs.rs with its real
        // fs calls is exempt from `direct-io`.
        (
            "crates/store/src/lib.rs".into(),
            "lock-across-sync".into(),
            7,
        ),
        ("crates/store/src/lib.rs".into(), "direct-io".into(), 5),
        // widgets (not a serve crate): hygiene rules only.
        ("crates/widgets/src/lib.rs".into(), "print-in-lib".into(), 6),
        (
            "crates/widgets/src/lib.rs".into(),
            "box-dyn-error".into(),
            9,
        ),
    ];
    want.sort();
    assert_eq!(got, want);
}

/// The interprocedural findings must carry human-readable witness
/// chains spanning every function on the path, not just the anchor
/// line — that is what makes a cross-file report actionable.
#[test]
fn fixture_witness_chains_render_across_functions() {
    let reports = hopi_lint::scan::scan_workspace(&fixture_ws()).expect("scan fixture ws");
    let excerpt = |path: &str, rule: &str| -> String {
        reports
            .iter()
            .find(|r| r.path == path)
            .and_then(|r| r.findings.iter().find(|f| f.rule == rule))
            .unwrap_or_else(|| panic!("no {rule} finding in {path}"))
            .excerpt
            .clone()
    };

    let cycle = excerpt("crates/build/src/lib.rs", "lock-order");
    assert!(
        cycle.contains("deadlock cycle Pair.x → Pair.y → Pair.x"),
        "cycle summary missing: {cycle}"
    );
    assert!(
        cycle.contains("`Pair::a` holds Pair.x, acquires Pair.y (crates/build/src/lib.rs:16)"),
        "first witness chain missing: {cycle}"
    );
    assert!(
        cycle.contains("`Pair::b` holds Pair.y, acquires Pair.x (crates/build/src/lib.rs:22)"),
        "second witness chain missing: {cycle}"
    );

    let deep = excerpt("crates/server/src/deep.rs", "blocking-under-lock");
    for step in [
        "`Deep::top` holds [Deep.m]",
        "`Deep::top` calls `mid` (crates/server/src/deep.rs:14)",
        "`mid` calls `bottom` (crates/server/src/deep.rs:26)",
        "`bottom` does sync_data (crates/server/src/deep.rs:30)",
    ] {
        assert!(deep.contains(step), "witness step {step:?} missing: {deep}");
    }
}

#[test]
fn real_workspace_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let outcome = hopi_lint::check(&root, &root.join("lint_baseline.toml")).expect("check runs");
    assert!(
        outcome.is_clean(),
        "the committed baseline must match the tree:\n{}",
        outcome.render_failures()
    );
}

/// Builds a scratch workspace containing a verbatim copy of the real
/// router.rs, baselines it, and returns (scratch, baseline path).
fn router_scratch(tag: &str) -> (Scratch, PathBuf) {
    let scratch = Scratch::new(tag);
    let src_dir = scratch.0.join("crates").join("server").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch crates");
    let router = workspace_root()
        .join("crates")
        .join("server")
        .join("src")
        .join("router.rs");
    std::fs::copy(&router, src_dir.join("router.rs")).expect("copy router.rs");
    let baseline = scratch.0.join("lint_baseline.toml");
    hopi_lint::update_baseline(&scratch.0, &baseline, false).expect("initial baseline");
    (scratch, baseline)
}

fn inject_unwrap(root: &Path) {
    let path = root
        .join("crates")
        .join("server")
        .join("src")
        .join("router.rs");
    let mut text = std::fs::read_to_string(&path).expect("read copied router.rs");
    text.push_str("\npub fn injected(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    std::fs::write(&path, text).expect("write injected router.rs");
}

#[test]
fn injected_unwrap_in_router_fails_the_check() {
    let (scratch, baseline) = router_scratch("lib");
    let clean = hopi_lint::check(&scratch.0, &baseline).expect("check before injection");
    assert!(clean.is_clean(), "{}", clean.render_failures());

    inject_unwrap(&scratch.0);
    let dirty = hopi_lint::check(&scratch.0, &baseline).expect("check after injection");
    assert!(!dirty.is_clean());
    assert!(
        dirty
            .diff
            .new
            .iter()
            .any(|(file, rule, _, _)| file == "crates/server/src/router.rs" && rule == "unwrap"),
        "expected a new unwrap finding in router.rs, got {:?}",
        dirty.diff.new
    );
}

#[test]
fn binary_exit_codes_flip_on_injection() {
    let (scratch, baseline) = router_scratch("bin");
    let run = |root: &Path| {
        Command::new(env!("CARGO_BIN_EXE_hopi-lint"))
            .args(["--check", "--root"])
            .arg(root)
            .arg("--baseline")
            .arg(&baseline)
            .output()
            .expect("run hopi-lint")
    };
    let before = run(&scratch.0);
    assert!(
        before.status.success(),
        "clean tree must exit 0: {}",
        String::from_utf8_lossy(&before.stderr)
    );

    inject_unwrap(&scratch.0);
    let after = run(&scratch.0);
    assert_eq!(
        after.status.code(),
        Some(1),
        "injected unwrap must exit 1: {}",
        String::from_utf8_lossy(&after.stderr)
    );
    assert!(String::from_utf8_lossy(&after.stderr).contains("unwrap"));
}

/// Copies the real `wal.rs` into a scratch store crate, freezes a
/// baseline, then appends two methods that take `base_seq` and `inner`
/// in opposite orders. The lock-order ratchet must flip `--check` from
/// exit 0 to exit 1, and `--github` must emit a machine-readable
/// annotation pointing at the offending file.
#[test]
fn injected_lock_inversion_in_wal_fails_the_check() {
    let scratch = Scratch::new("walorder");
    let src_dir = scratch.0.join("crates").join("store").join("src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch crates");
    let wal = workspace_root()
        .join("crates")
        .join("store")
        .join("src")
        .join("wal.rs");
    let wal_copy = src_dir.join("wal.rs");
    std::fs::copy(&wal, &wal_copy).expect("copy wal.rs");
    let baseline = scratch.0.join("lint_baseline.toml");
    hopi_lint::update_baseline(&scratch.0, &baseline, false).expect("initial baseline");

    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_hopi-lint"))
            .args(args)
            .arg("--root")
            .arg(&scratch.0)
            .arg("--baseline")
            .arg(&baseline)
            .output()
            .expect("run hopi-lint")
    };
    let before = run(&["--check"]);
    assert!(
        before.status.success(),
        "clean copy must exit 0: {}",
        String::from_utf8_lossy(&before.stderr)
    );

    let mut text = std::fs::read_to_string(&wal_copy).expect("read copied wal.rs");
    text.push_str(concat!(
        "\nimpl Wal {\n",
        "    pub fn injected_a(&self) {\n",
        "        let a = lock_recover(&self.base_seq);\n",
        "        let b = lock_recover(&self.inner);\n",
        "        drop(b);\n",
        "        drop(a);\n",
        "    }\n",
        "    pub fn injected_b(&self) {\n",
        "        let b = lock_recover(&self.inner);\n",
        "        let a = lock_recover(&self.base_seq);\n",
        "        drop(a);\n",
        "        drop(b);\n",
        "    }\n",
        "}\n",
    ));
    std::fs::write(&wal_copy, text).expect("write injected wal.rs");

    let after = run(&["--check", "--github"]);
    let stderr = String::from_utf8_lossy(&after.stderr);
    assert_eq!(
        after.status.code(),
        Some(1),
        "lock inversion must exit 1: {stderr}"
    );
    assert!(
        stderr.contains("lock-order"),
        "report must name the rule: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&after.stdout);
    assert!(
        stdout.contains("::error file=crates/store/src/wal.rs,line=")
            && stdout.contains("[lock-order]"),
        "--github must emit an annotation: {stdout}"
    );
}

#[test]
fn stale_baseline_entries_fail_the_check() {
    let (scratch, baseline) = router_scratch("stale");
    let mut text = std::fs::read_to_string(&baseline).expect("read baseline");
    text.push_str("\n[\"crates/server/src/ghost.rs\"]\nunwrap = 3\n");
    std::fs::write(&baseline, text).expect("write padded baseline");
    let outcome = hopi_lint::check(&scratch.0, &baseline).expect("check with stale entry");
    assert!(!outcome.is_clean());
    assert!(
        outcome
            .diff
            .stale
            .iter()
            .any(|(file, rule, allowed, actual)| {
                file == "crates/server/src/ghost.rs"
                    && rule == "unwrap"
                    && *allowed == 3
                    && *actual == 0
            }),
        "expected the padded entry to be reported stale, got {:?}",
        outcome.diff.stale
    );
}
