//! Workspace walking and rule dispatch: which rules run on which files.
//!
//! The scan covers the root crate (`src/`) and every crate under
//! `crates/`. Vendored stand-ins (`vendor/`), integration tests,
//! benches, and examples are out of scope — the ratchet protects the
//! code that serves traffic, not the code that exercises it.
//!
//! Scanning is two-phase. Phase one loads and lexes every in-scope file
//! and runs the per-file lexical rules. Phase two runs the
//! interprocedural analysis ([`crate::summary`]) over the serve-path
//! crates as a whole — lock-order cycles and blocking-under-lock need
//! the cross-file call graph — and merges its findings back into the
//! per-file reports, honoring `// lint: allow(RULE)` suppressions.

use crate::baseline::Counts;
use crate::lexer::{lex, Token};
use crate::rules::{self, Finding};
use std::path::{Path, PathBuf};

/// Crates on the 24×7 serve path: panic-ratchet, lock-hold, and the
/// interprocedural concurrency rules apply to their non-test code.
/// `obs` is additionally exempt from the `instant-in-loop` timing rule
/// — it is the timing layer.
pub const SERVE_PATH_CRATES: &[&str] =
    &["server", "query", "core", "store", "build", "text", "obs"];

/// Crates that are binaries/harnesses: exempt from the library-hygiene
/// rules (stdio printing, `Box<dyn Error>` signatures).
pub const BIN_CRATES: &[&str] = &["cli", "bench", "lint"];

/// Crates whose non-test code must route every filesystem call through
/// the `Vfs` abstraction (`crates/store/src/vfs.rs`), so the fault-sweep
/// harness can fail each syscall site: direct `std::fs` / `File::` /
/// `OpenOptions` use is ratcheted to zero outside the VFS module itself.
pub const VFS_ONLY_CRATES: &[&str] = &["store", "build"];

/// One loaded, lexed source file — the unit both scan phases work on.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the baseline key).
    pub rel: String,
    /// Name of the crate the file belongs to (`hopi` for the root).
    pub crate_name: String,
    /// Bare file name (`vfs.rs`).
    pub file_name: String,
    /// `lib.rs`/`main.rs` directly under `src/`.
    pub is_crate_root: bool,
    /// `main.rs` or anything under `src/bin/`.
    pub is_bin_root: bool,
    /// Raw source text.
    pub text: String,
    /// Lexed token stream.
    pub tokens: Vec<Token>,
    /// Per-token test mask (`#[cfg(test)]` / `#[test]` items).
    pub mask: Vec<bool>,
}

/// All findings of one scanned file.
#[derive(Clone, Debug)]
pub struct FileFindings {
    /// Workspace-relative path with `/` separators (the baseline key).
    pub path: String,
    /// Findings in source order.
    pub findings: Vec<Finding>,
}

/// Loads every in-scope `.rs` file under `root`, lexed and masked, in
/// deterministic (crate, path) order.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        load_crate(root, "hopi", &root_src, &mut out)?;
    }
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no crates/ directory under {} — wrong --root?",
            root.display()
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if src.is_dir() {
            load_crate(root, &name, &src, &mut out)?;
        }
    }
    Ok(out)
}

/// Indices of the serve-path files in a loaded workspace — the scope of
/// the interprocedural analysis.
pub fn serve_indices(files: &[SourceFile]) -> Vec<usize> {
    files
        .iter()
        .enumerate()
        .filter(|(_, f)| SERVE_PATH_CRATES.contains(&f.crate_name.as_str()))
        .map(|(i, _)| i)
        .collect()
}

/// Scans the workspace rooted at `root` and returns per-file findings
/// for every in-scope `.rs` file (files with no findings included, so
/// callers can report coverage).
pub fn scan_workspace(root: &Path) -> Result<Vec<FileFindings>, String> {
    let files = load_workspace(root)?;
    let mut per_file: Vec<Vec<Finding>> = files.iter().map(scan_file).collect();
    for (idx, finding) in crate::summary::interproc_findings(&files, &serve_indices(&files)) {
        if allowed(&files[idx], &finding) {
            continue;
        }
        per_file[idx].push(finding);
    }
    Ok(files
        .iter()
        .zip(per_file)
        .map(|(f, mut findings)| {
            findings.sort_by_key(|f| (f.line, f.rule));
            FileFindings {
                path: f.rel.clone(),
                findings,
            }
        })
        .collect())
}

/// Is this finding suppressed by a `// lint: allow(RULE)` comment (or
/// `allow(RULE-A, RULE-B)` list) on its line or the line above? Only
/// the interprocedural rules support allow-comments — the lexical
/// rules ratchet through the baseline.
fn allowed(file: &SourceFile, finding: &Finding) -> bool {
    let mut lines = file
        .text
        .lines()
        .skip((finding.line as usize).saturating_sub(2));
    let above = lines.next().unwrap_or("");
    let at = if finding.line > 1 {
        lines.next().unwrap_or("")
    } else {
        above
    };
    line_allows(above, finding.rule) || line_allows(at, finding.rule)
}

fn line_allows(line: &str, rule: &str) -> bool {
    let Some(pos) = line.find("lint: allow(") else {
        return false;
    };
    let rest = &line[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].split(',').any(|r| r.trim() == rule)
}

/// Aggregates findings into baseline counts (files with no findings are
/// omitted).
pub fn counts(reports: &[FileFindings]) -> Counts {
    let mut c = Counts::new();
    for report in reports {
        for f in &report.findings {
            *c.entry(report.path.clone())
                .or_default()
                .entry(f.rule.to_string())
                .or_insert(0) += 1;
        }
    }
    c
}

/// The per-file lexical rules for one loaded file.
fn scan_file(file: &SourceFile) -> Vec<Finding> {
    let serve = SERVE_PATH_CRATES.contains(&file.crate_name.as_str());
    let bin_crate = BIN_CRATES.contains(&file.crate_name.as_str());
    let tokens = &file.tokens;
    let mask = &file.mask;
    let lines: Vec<&str> = file.text.lines().collect();

    let mut findings = Vec::new();
    if serve {
        findings.extend(rules::panic_findings(tokens, mask, &lines));
        findings.extend(rules::lock_findings(tokens, mask, &lines));
        if file.crate_name != "obs" {
            findings.extend(rules::instant_in_loop_findings(tokens, mask, &lines));
        }
    }
    if VFS_ONLY_CRATES.contains(&file.crate_name.as_str()) && file.file_name != "vfs.rs" {
        findings.extend(rules::direct_io_findings(tokens, mask, &lines));
    }
    if file.is_crate_root {
        findings.extend(rules::forbid_unsafe_finding(tokens));
    }
    if !bin_crate && !file.is_bin_root {
        findings.extend(rules::print_findings(tokens, mask, &lines));
        findings.extend(rules::box_dyn_error_findings(tokens, mask, &lines));
    }
    findings
}

fn load_crate(
    root: &Path,
    crate_name: &str,
    src: &Path,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let mut files = Vec::new();
    collect_rs_files(src, &mut files)?;
    files.sort();
    for file in files {
        let rel = relative_path(root, &file);
        let file_name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let is_crate_root =
            file.parent() == Some(src) && matches!(file_name.as_str(), "lib.rs" | "main.rs");
        let in_bin_dir = file
            .strip_prefix(src)
            .ok()
            .is_some_and(|p| p.starts_with("bin"));
        let is_bin_root = in_bin_dir || file_name == "main.rs";
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let tokens = lex(&text);
        let mask = rules::test_mask(&tokens);
        out.push(SourceFile {
            rel,
            crate_name: crate_name.to_string(),
            file_name,
            is_crate_root,
            is_bin_root,
            text,
            tokens,
            mask,
        });
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across
/// platforms, so baselines are portable).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
