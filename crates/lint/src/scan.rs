//! Workspace walking and rule dispatch: which rules run on which files.
//!
//! The scan covers the root crate (`src/`) and every crate under
//! `crates/`. Vendored stand-ins (`vendor/`), integration tests,
//! benches, and examples are out of scope — the ratchet protects the
//! code that serves traffic, not the code that exercises it.

use crate::baseline::Counts;
use crate::lexer::lex;
use crate::rules::{self, Finding};
use std::path::{Path, PathBuf};

/// Crates on the 24×7 serve path: panic-ratchet and lock-hold rules
/// apply to their non-test code. `obs` is additionally exempt from the
/// `instant-in-loop` timing rule — it is the timing layer.
pub const SERVE_PATH_CRATES: &[&str] =
    &["server", "query", "core", "store", "build", "text", "obs"];

/// Crates that are binaries/harnesses: exempt from the library-hygiene
/// rules (stdio printing, `Box<dyn Error>` signatures).
pub const BIN_CRATES: &[&str] = &["cli", "bench", "lint"];

/// Crates whose non-test code must route every filesystem call through
/// the `Vfs` abstraction (`crates/store/src/vfs.rs`), so the fault-sweep
/// harness can fail each syscall site: direct `std::fs` / `File::` /
/// `OpenOptions` use is ratcheted to zero outside the VFS module itself.
pub const VFS_ONLY_CRATES: &[&str] = &["store", "build"];

/// All findings of one scanned file.
#[derive(Clone, Debug)]
pub struct FileFindings {
    /// Workspace-relative path with `/` separators (the baseline key).
    pub path: String,
    /// Findings in source order.
    pub findings: Vec<Finding>,
}

/// Scans the workspace rooted at `root` and returns per-file findings
/// for every in-scope `.rs` file (files with no findings included, so
/// callers can report coverage).
pub fn scan_workspace(root: &Path) -> Result<Vec<FileFindings>, String> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        scan_crate(root, "hopi", &root_src, &mut out)?;
    }
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no crates/ directory under {} — wrong --root?",
            root.display()
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = dir.join("src");
        if src.is_dir() {
            scan_crate(root, &name, &src, &mut out)?;
        }
    }
    Ok(out)
}

/// Aggregates findings into baseline counts (files with no findings are
/// omitted).
pub fn counts(reports: &[FileFindings]) -> Counts {
    let mut c = Counts::new();
    for report in reports {
        for f in &report.findings {
            *c.entry(report.path.clone())
                .or_default()
                .entry(f.rule.to_string())
                .or_insert(0) += 1;
        }
    }
    c
}

fn scan_crate(
    root: &Path,
    crate_name: &str,
    src: &Path,
    out: &mut Vec<FileFindings>,
) -> Result<(), String> {
    let mut files = Vec::new();
    collect_rs_files(src, &mut files)?;
    files.sort();
    let serve = SERVE_PATH_CRATES.contains(&crate_name);
    let bin_crate = BIN_CRATES.contains(&crate_name);
    for file in files {
        let rel = relative_path(root, &file);
        let is_crate_root = file.parent() == Some(src)
            && matches!(
                file.file_name().and_then(|n| n.to_str()),
                Some("lib.rs" | "main.rs")
            );
        let in_bin_dir = file
            .strip_prefix(src)
            .ok()
            .is_some_and(|p| p.starts_with("bin"));
        let is_bin_root =
            in_bin_dir || file.file_name().and_then(|n| n.to_str()) == Some("main.rs");
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let tokens = lex(&text);
        let mask = rules::test_mask(&tokens);
        let lines: Vec<&str> = text.lines().collect();

        let mut findings = Vec::new();
        if serve {
            findings.extend(rules::panic_findings(&tokens, &mask, &lines));
            findings.extend(rules::lock_findings(&tokens, &mask, &lines));
            if crate_name != "obs" {
                findings.extend(rules::instant_in_loop_findings(&tokens, &mask, &lines));
            }
        }
        if VFS_ONLY_CRATES.contains(&crate_name)
            && file.file_name().and_then(|n| n.to_str()) != Some("vfs.rs")
        {
            findings.extend(rules::direct_io_findings(&tokens, &mask, &lines));
        }
        if is_crate_root {
            findings.extend(rules::forbid_unsafe_finding(&tokens));
        }
        if !bin_crate && !is_bin_root {
            findings.extend(rules::print_findings(&tokens, &mask, &lines));
            findings.extend(rules::box_dyn_error_findings(&tokens, &mask, &lines));
        }
        findings.sort_by_key(|f| (f.line, f.rule));
        out.push(FileFindings {
            path: rel,
            findings,
        });
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across
/// platforms, so baselines are portable).
fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
