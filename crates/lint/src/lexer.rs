//! A hand-rolled Rust lexer — just enough fidelity for rule matching.
//!
//! The rules in [`crate::rules`] pattern-match token sequences, so the
//! lexer's one job is to never mis-tokenize the constructs that would
//! make a textual grep lie: string literals (including raw strings with
//! arbitrarily many `#`s and byte/C-string prefixes) whose *contents*
//! must never produce tokens, nested block comments, char literals vs
//! lifetimes, and raw identifiers. Everything else is deliberately
//! coarse: operators come out as single-character [`Tok::Punct`] tokens
//! and numeric literals collapse into one [`Tok::Num`].

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `fn`, `r#match` → `match`).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A numeric literal (`42`, `0xFF`, `1.5e-3`).
    Num,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Tokenizes `src`, dropping whitespace and comments.
///
/// The scan is byte-oriented: every byte the lexer dispatches on (`"`,
/// `'`, `/`, …) is ASCII and cannot appear inside a multi-byte UTF-8
/// sequence, so literal contents are skipped safely. Non-ASCII bytes
/// outside literals are treated as identifier characters.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if ident_start(c) => self.ident_or_prefixed_literal(),
                c => {
                    self.push(Tok::Punct(c as char));
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.push(Token {
            tok,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b'\n' {
                return; // the newline itself is handled by `run`
            }
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1usize;
        while let Some(&c) = self.b.get(self.i) {
            if c == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if c == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if c == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.i += 1;
            }
        }
    }

    /// A plain (escaped) string literal, cursor on the opening `"`.
    fn string(&mut self) {
        let start_line = self.line;
        self.i += 1;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'\\' => {
                    // Backslash-newline line continuation: the escaped
                    // char may itself be the newline.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Token {
            tok: Tok::Str,
            line: start_line,
        });
    }

    /// A raw string literal, cursor on the first `#` or the `"`. The
    /// closing quote must be followed by exactly as many `#`s as opened.
    fn raw_string(&mut self) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while let Some(&c) = self.b.get(self.i) {
            if c == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if c == b'"' && self.b[self.i + 1..].iter().take(hashes).all(|&h| h == b'#') {
                let have = self.b[self.i + 1..]
                    .iter()
                    .take_while(|&&h| h == b'#')
                    .count();
                if have >= hashes {
                    self.i += 1 + hashes;
                    break;
                }
                self.i += 1;
            } else {
                self.i += 1;
            }
        }
        self.out.push(Token {
            tok: Tok::Str,
            line: start_line,
        });
    }

    fn char_or_lifetime(&mut self) {
        // `'` then: escape → char; ident-start then `'` → char ('a');
        // ident-start then more → lifetime ('static).
        match self.peek(1) {
            Some(b'\\') => {
                self.i += 3; // skip ', \, and the escape head
                while let Some(&c) = self.b.get(self.i) {
                    self.i += 1;
                    if c == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Char);
            }
            Some(c) if ident_start(c) => {
                let mut j = self.i + 1;
                while self.b.get(j).is_some_and(|&c| ident_continue(c)) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.push(Tok::Char);
                    self.i = j + 1;
                } else {
                    self.push(Tok::Lifetime);
                    self.i = j;
                }
            }
            _ => {
                // Non-ident char literal ('+', '✓') — scan to the close.
                self.i += 1;
                while let Some(&c) = self.b.get(self.i) {
                    self.i += 1;
                    if c == b'\'' {
                        break;
                    }
                }
                self.push(Tok::Char);
            }
        }
    }

    fn number(&mut self) {
        self.push(Tok::Num);
        self.i += 1;
        while let Some(&c) = self.b.get(self.i) {
            if c == b'.' {
                // `1..n` is a range, `1.max(2)` a method call — only a
                // digit continues the literal.
                if !self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    return;
                }
                self.i += 1;
            } else if (c == b'e' || c == b'E')
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).is_some_and(|d| d.is_ascii_digit())
            {
                self.i += 3;
            } else if c.is_ascii_alphanumeric() || c == b'_' {
                self.i += 1;
            } else {
                return;
            }
        }
    }

    /// An identifier — unless it is a literal prefix (`r"`, `br#"`, `b'`,
    /// `c"`) or a raw identifier (`r#ident`).
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let mut j = self.i;
        while self.b.get(j).is_some_and(|&c| ident_continue(c)) {
            j += 1;
        }
        let word = &self.b[start..j];
        let next = self.b.get(j).copied();
        let is_str_prefix = matches!(word, b"r" | b"b" | b"br" | b"rb" | b"c" | b"cr");
        if is_str_prefix && next == Some(b'"') {
            self.i = j;
            if word[0] == b'r' || word.get(1) == Some(&b'r') {
                self.raw_string();
            } else {
                self.string();
            }
            return;
        }
        if is_str_prefix && next == Some(b'#') {
            // `r#"…"#` / `br#"…"#` raw strings, or `r#ident`.
            let after_hashes = self.b[j..].iter().take_while(|&&c| c == b'#').count() + j;
            if self.b.get(after_hashes) == Some(&b'"') {
                self.i = j;
                self.raw_string();
                return;
            }
            if word == b"r" && self.b.get(j + 1).is_some_and(|&c| ident_start(c)) {
                // Raw identifier: emit the bare name (`r#match` → `match`).
                let mut k = j + 1;
                while self.b.get(k).is_some_and(|&c| ident_continue(c)) {
                    k += 1;
                }
                let name = String::from_utf8_lossy(&self.b[j + 1..k]).into_owned();
                self.push(Tok::Ident(name));
                self.i = k;
                return;
            }
        }
        if word == b"b" && next == Some(b'\'') {
            self.i = j;
            self.char_or_lifetime();
            return;
        }
        let name = String::from_utf8_lossy(word).into_owned();
        self.push(Tok::Ident(name));
        self.i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // `unwrap()` inside raw strings of every flavor must not tokenize.
        let src =
            r###"let a = r"x.unwrap()"; let b = r#"y.unwrap()"#; let c = br##"panic!("z")"##;"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn plain_strings_and_escapes() {
        let ids = idents(r#"call("has \" quote and unwrap() inside", other)"#);
        assert_eq!(ids, vec!["call", "other"]);
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("a /* outer /* inner panic!() */ still comment */ b");
        assert_eq!(ids, vec!["a", "b"]);
        // Unterminated inner nesting swallows the rest.
        assert_eq!(idents("a /* /* */ x"), vec!["a"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks: Vec<Tok> = lex("'a' 'static x.f::<'b>() '\\n' b'q'")
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(toks[0], Tok::Char);
        assert_eq!(toks[1], Tok::Lifetime);
        assert!(toks.contains(&Tok::Lifetime));
        assert_eq!(toks.iter().filter(|t| **t == Tok::Char).count(), 3);
    }

    #[test]
    fn raw_identifiers_unwrap_to_bare_names() {
        assert_eq!(idents("r#match r#fn normal"), vec!["match", "fn", "normal"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "a\n\"two\nline\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // `b` after the embedded newline
    }

    #[test]
    fn backslash_newline_continuation_counts_its_line() {
        let toks = lex("let a = \"one \\\ntwo\";\nb");
        assert_eq!(toks.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let ids = idents("for i in 0..n { 1.5e-3; x[1]; 2.max(y) }");
        assert!(ids.contains(&"n".to_string()));
        assert!(ids.contains(&"max".to_string()));
    }
}
