//! # hopi-lint — workspace static analysis with a ratcheting baseline
//!
//! The compiler and clippy cannot enforce HOPI's deployment invariants:
//! that the 24×7 serve path (server → query eval → snapshot → WAL)
//! never panics on a malformed request or a poisoned lock, and that no
//! lock guard is held across an fsync (the group-commit latency bug
//! class). This crate is a zero-dependency static-analysis pass that
//! does — it lexes the workspace's Rust sources directly (raw strings,
//! nested block comments, `#[cfg(test)]` tracking; no syn, consistent
//! with the vendored-deps policy) and checks them against the rule
//! catalog in [`rules`].
//!
//! Existing debt is frozen in `lint_baseline.toml` as per-`(file, rule)`
//! counts; [`check`] fails on any count above its baseline (new debt)
//! *or* below it (stale allowance — regenerate so new debt cannot hide
//! under the old number). The baseline therefore only ratchets down.
//!
//! ```text
//! cargo run -p hopi-lint -- --check             # CI entry point
//! cargo run -p hopi-lint -- --list              # every finding, with lines
//! cargo run -p hopi-lint -- --update-baseline   # after paying debt down
//! ```

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod summary;

use baseline::{Counts, Diff};
use scan::FileFindings;
use std::path::Path;

/// Everything `--check` needs to report and exit.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Per-file findings from the scan.
    pub reports: Vec<FileFindings>,
    /// Aggregated counts of the scan.
    pub actual: Counts,
    /// Drift against the baseline.
    pub diff: Diff,
}

impl CheckOutcome {
    /// Did the check pass (no new findings, no stale entries)?
    pub fn is_clean(&self) -> bool {
        self.diff.is_clean()
    }

    /// Total findings in the scan (baselined ones included).
    pub fn total_findings(&self) -> usize {
        self.reports.iter().map(|r| r.findings.len()).sum()
    }

    /// Renders the failure report as GitHub Actions workflow commands
    /// (`::error file=…,line=…::…`), so a failing CI lint job annotates
    /// the offending lines directly in the diff view.
    pub fn render_github_annotations(&self) -> String {
        let mut out = String::new();
        for (file, rule, _, _) in &self.diff.new {
            for report in self.reports.iter().filter(|r| &r.path == file) {
                for f in report.findings.iter().filter(|f| f.rule == rule) {
                    // Workflow commands treat `%`, `\r`, `\n` as
                    // terminators; the excerpt must be escaped.
                    let msg = f
                        .excerpt
                        .replace('%', "%25")
                        .replace('\r', "%0D")
                        .replace('\n', "%0A");
                    out.push_str(&format!(
                        "::error file={file},line={}::[{rule}] {msg}\n",
                        f.line
                    ));
                }
            }
        }
        for (file, rule, allowed, actual) in &self.diff.stale {
            out.push_str(&format!(
                "::error file={file},line=1::[{rule}] stale baseline entry: allows {allowed} but \
                 only {actual} remain — run --update-baseline\n"
            ));
        }
        out
    }

    /// Renders the failure report: one line per offending source line of
    /// each drifted `(file, rule)`, then the stale entries.
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for (file, rule, actual, allowed) in &self.diff.new {
            out.push_str(&format!(
                "new findings: {file} rule `{rule}`: {actual} found, baseline allows {allowed}\n"
            ));
            for report in self.reports.iter().filter(|r| &r.path == file) {
                for f in report.findings.iter().filter(|f| f.rule == rule) {
                    out.push_str(&format!("    {file}:{} {}\n", f.line, f.excerpt));
                }
            }
        }
        for (file, rule, allowed, actual) in &self.diff.stale {
            out.push_str(&format!(
                "stale baseline entry: {file} rule `{rule}`: baseline allows {allowed} but only \
                 {actual} remain — run `cargo run -p hopi-lint -- --update-baseline` to ratchet\n"
            ));
        }
        out
    }
}

/// Scans `root` and diffs against the baseline at `baseline_path`
/// (a missing baseline file means "no debt allowed").
pub fn check(root: &Path, baseline_path: &Path) -> Result<CheckOutcome, String> {
    let reports = scan::scan_workspace(root)?;
    let actual = scan::counts(&reports);
    let base = load_baseline(baseline_path)?;
    let diff = baseline::diff(&actual, &base);
    Ok(CheckOutcome {
        reports,
        actual,
        diff,
    })
}

/// Renders the interprocedural view of the workspace at `root`: every
/// serve-path function with its resolved callees, reachable lock keys,
/// and blocking-chain summary (`--dump-callgraph`).
pub fn dump_callgraph(root: &Path) -> Result<String, String> {
    let files = scan::load_workspace(root)?;
    let serve = scan::serve_indices(&files);
    Ok(summary::dump(&files, &serve))
}

/// Reads and parses a baseline file; `Ok(empty)` when it does not exist.
pub fn load_baseline(path: &Path) -> Result<Counts, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Counts::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Regenerates the baseline from a fresh scan. Refuses to grow any
/// `(file, rule)` entry over the existing baseline unless `force` —
/// growth means new debt, and new debt is what the ratchet exists to
/// stop. Returns the rendered document that was written.
pub fn update_baseline(root: &Path, baseline_path: &Path, force: bool) -> Result<String, String> {
    let reports = scan::scan_workspace(root)?;
    let actual = scan::counts(&reports);
    let old = load_baseline(baseline_path)?;
    // A missing baseline is the initial freeze — there is no ratchet to
    // protect yet, so growth-from-nothing is expected.
    let grown = if baseline_path.exists() {
        baseline::grown(&old, &actual)
    } else {
        Vec::new()
    };
    if !grown.is_empty() && !force {
        let mut msg =
            String::from("refusing to grow the baseline (fix the findings, or pass --force):\n");
        for (file, rule, was, now) in grown {
            msg.push_str(&format!("    {file} rule `{rule}`: {was} -> {now}\n"));
        }
        return Err(msg);
    }
    let text = baseline::render(&actual);
    std::fs::write(baseline_path, &text)
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(text)
}
