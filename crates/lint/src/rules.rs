//! The rule engine: test-region masking plus the project-invariant
//! checks that run over a file's token stream.
//!
//! Four rule families (see DESIGN.md "Enforced invariants"):
//!
//! * **Panic ratchet** — `unwrap` / `expect` / `panic!` / `unreachable!`
//!   and slice indexing in non-test serve-path code. Findings are
//!   baselined per `(file, rule)` count; the baseline only shrinks.
//! * **Lock-hold discipline** — a lock guard (`.lock()` / `.read()` /
//!   `.write()` with no arguments) still live when an fsync-class call
//!   (`sync_data`, `sync_all`, `sync_parent_dir`, `atomic_write_file`,
//!   `fsync`) executes in the same scope: the WAL group-commit bug class.
//! * **Crate hygiene** — crate roots carry `#![forbid(unsafe_code)]`,
//!   library code does not print to stdio, and public signatures do not
//!   use `Box<dyn … Error>` where a `HopiError`-family type belongs.
//! * **Timing discipline** — no raw `Instant::now()` in serve-path loop
//!   bodies; hot-path timing goes through `hopi_obs::Stopwatch`/`Span`.
//! * **VFS discipline** — no direct `std::fs` / `File::` / `OpenOptions`
//!   calls in the durability crates outside the VFS module itself: every
//!   syscall site must go through `Vfs` so fault injection covers it.

use crate::lexer::{Tok, Token};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (the baseline key).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// Rule names of the panic-freedom ratchet.
pub const PANIC_RULES: &[&str] = &["unwrap", "expect", "panic", "unreachable", "slice-index"];

/// Every rule the engine can emit, for documentation and validation.
pub const ALL_RULES: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "slice-index",
    "lock-across-sync",
    "missing-forbid-unsafe",
    "print-in-lib",
    "box-dyn-error",
    "instant-in-loop",
    "direct-io",
    "blocking-under-lock",
    "lock-order",
];

/// One paragraph per rule for `hopi-lint --explain RULE`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "unwrap" | "expect" | "panic" | "unreachable" => {
            "Panic ratchet: `.unwrap()`, `.expect(…)`, `panic!`, and `unreachable!` in \
             non-test serve-path code. The 24×7 serve path must turn malformed input and \
             poisoned locks into typed errors, never a worker-killing panic. Existing debt \
             is frozen per (file, rule) in lint_baseline.toml and may only shrink."
        }
        "slice-index" => {
            "Panic ratchet: index expressions (`v[i]`, `map[&k]`) in non-test serve-path \
             code. Out-of-range indexing panics the worker; prefer `get()` / iterators and \
             handle the None arm. Frozen debt ratchets down via lint_baseline.toml."
        }
        "lock-across-sync" => {
            "Lock-hold discipline (same scope): a guard bound from `.lock()` / `.read()` / \
             `.write()` or `lock_recover(…)` is still live when an fsync-class call \
             (sync_data, sync_all, sync_parent_dir, atomic_write_file, fsync) executes in \
             the same lexical scope. This is the WAL group-commit latency bug class: every \
             waiter queues behind a disk flush."
        }
        "blocking-under-lock" => {
            "Interprocedural lock-hold discipline: a blocking operation (file I/O, fsync, \
             socket read/write/accept, channel recv, thread::sleep, Condvar wait, join) is \
             reachable through any chain of workspace calls while a lock guard is live. \
             Generalizes lock-across-sync to arbitrary call depth using per-function \
             summaries propagated over the approximate call graph. Sanctioned sites (the \
             group-commit leader fsync, the checkpoint writer) carry a one-line \
             `// lint: allow(blocking-under-lock)` annotation on or above the flagged line."
        }
        "lock-order" => {
            "Deadlock freedom: the workspace-wide lock-acquisition-order graph (keyed by \
             lock field path, e.g. `OnlineHopi.engine` → `Wal.inner`) must stay acyclic, \
             in the spirit of kernel lockdep. An edge A → B is recorded whenever a \
             function acquires B while holding A, directly or through calls; any cycle is \
             a potential deadlock and is reported once with the full witness chain of \
             functions and acquisition sites. `// lint: allow(lock-order)` suppresses a \
             witness edge that is known-safe (e.g. guarded by a total external order)."
        }
        "missing-forbid-unsafe" => {
            "Crate hygiene: every crate root carries `#![forbid(unsafe_code)]`. The \
             workspace's safety argument is that there is no unsafe code to audit."
        }
        "print-in-lib" => {
            "Crate hygiene: library code must not print to stdio (`println!`, `eprintln!`, \
             `dbg!`, …). Observability goes through hopi-obs; binaries are exempt."
        }
        "box-dyn-error" => {
            "Crate hygiene: `Box<dyn … Error>` in library signatures erases the error \
             taxonomy. Use the typed `HopiError` family so callers can branch on failure \
             class (and the degraded-mode server can pick the right status code)."
        }
        "instant-in-loop" => {
            "Timing discipline: a raw `Instant::now()` inside a serve-path loop body is \
             either an unrecorded measurement or a per-iteration clock read that belongs \
             outside the loop. Hot-path timing goes through `hopi_obs::Stopwatch`/`Span`, \
             which also feed the latency histograms."
        }
        "direct-io" => {
            "VFS discipline: the durability crates (store, build) must route every \
             filesystem call through the `Vfs` abstraction so the fault-injection sweep \
             can fail each syscall site. Direct `std::fs` / `File::` / `OpenOptions` use \
             outside the VFS module itself is ratcheted to zero."
        }
        _ => return None,
    })
}

/// fsync-class calls that must not run under a live lock guard.
pub(crate) const SYNC_FNS: &[&str] = &[
    "sync_data",
    "sync_all",
    "sync_parent_dir",
    "atomic_write_file",
    "fsync",
];

/// Keywords that, before a `[`, mean "array literal / pattern", not an
/// index expression. Value-like words (`self`, `true`) are deliberately
/// absent: `self[i]` *is* indexing.
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "become", "box", "break", "const", "continue", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "try", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

pub(crate) fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

pub(crate) fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i) {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// Marks every token that belongs to test-only code: items annotated
/// with an attribute mentioning `test` (`#[cfg(test)]`, `#[test]`,
/// `#[cfg(any(test, …))]`) and `mod tests { … }` blocks.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_punct(tokens, i, '#') && is_punct(tokens, i + 1, '[') {
            let (attr_end, has_test) = scan_attr(tokens, i + 1);
            if has_test {
                // Skip any further stacked attributes, then mask through
                // the end of the annotated item.
                let mut j = attr_end;
                while is_punct(tokens, j, '#') && is_punct(tokens, j + 1, '[') {
                    j = scan_attr(tokens, j + 1).0;
                }
                let end = scan_item(tokens, j);
                for slot in mask.iter_mut().take(end).skip(i) {
                    *slot = true;
                }
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        if ident_at(tokens, i) == Some("mod")
            && ident_at(tokens, i + 1) == Some("tests")
            && is_punct(tokens, i + 2, '{')
        {
            let end = match_brace(tokens, i + 2);
            for slot in mask.iter_mut().take(end).skip(i) {
                *slot = true;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans an attribute starting at its `[`; returns (index past the
/// matching `]`, does any identifier inside equal `test`).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, has_test);
                }
            }
            Tok::Ident(s) if s == "test" => has_test = true,
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), has_test)
}

/// The index just past the item starting at `start`: through a balanced
/// `{ … }` body, or past the first `;` outside parens/brackets.
fn scan_item(tokens: &[Token], start: usize) -> usize {
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => return match_brace(tokens, i),
            Tok::Punct(';') if paren == 0 && bracket == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// The index just past the `}` matching the `{` at `open`.
pub(crate) fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

pub(crate) fn excerpt(lines: &[&str], line: u32) -> String {
    let text = lines.get(line as usize - 1).copied().unwrap_or("").trim();
    let mut s: String = text.chars().take(120).collect();
    if s.len() < text.len() {
        s.push('…');
    }
    s
}

/// The panic-freedom ratchet: `.unwrap()`, `.expect(`, `panic!`,
/// `unreachable!`, and index expressions in non-test code.
pub fn panic_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        match &t.tok {
            Tok::Ident(name) if (name == "unwrap" || name == "expect") => {
                let prev_dot = i > 0 && is_punct(tokens, i - 1, '.');
                if prev_dot && is_punct(tokens, i + 1, '(') {
                    let rule = if name == "unwrap" { "unwrap" } else { "expect" };
                    out.push(Finding {
                        rule,
                        line: t.line,
                        excerpt: excerpt(lines, t.line),
                    });
                }
            }
            Tok::Ident(name)
                if (name == "panic" || name == "unreachable") && is_punct(tokens, i + 1, '!') =>
            {
                let rule = if name == "panic" {
                    "panic"
                } else {
                    "unreachable"
                };
                out.push(Finding {
                    rule,
                    line: t.line,
                    excerpt: excerpt(lines, t.line),
                });
            }
            Tok::Punct('[') if i > 0 => {
                let indexes = match &tokens[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_KEYWORDS.contains(&prev.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
                    _ => false,
                };
                if indexes {
                    out.push(Finding {
                        rule: "slice-index",
                        line: t.line,
                        excerpt: excerpt(lines, t.line),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Lock-hold discipline: a guard bound from a no-argument `.lock()` /
/// `.read()` / `.write()` that is still live (same scope, not yet
/// `drop`ped) when an fsync-class call executes.
pub fn lock_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    struct Guard {
        name: String,
        depth: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        match &tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(name) if name == "drop" && is_punct(tokens, i + 1, '(') => {
                if let Some(dropped) = ident_at(tokens, i + 2) {
                    if is_punct(tokens, i + 3, ')') {
                        guards.retain(|g| g.name != dropped);
                    }
                }
            }
            Tok::Ident(name)
                if SYNC_FNS.contains(&name.as_str()) && is_punct(tokens, i + 1, '(') =>
            {
                if let Some(g) = guards.last() {
                    out.push(Finding {
                        rule: "lock-across-sync",
                        line: tokens[i].line,
                        excerpt: format!(
                            "guard `{}` held across {}(): {}",
                            g.name,
                            name,
                            excerpt(lines, tokens[i].line)
                        ),
                    });
                }
            }
            // Binding or reassignment: `let [mut] g = m.lock()…;` or
            // `g = m.lock()…;` (re-arming after a `drop`). Field stores
            // (`s.g = …`) are excluded — the guard escapes local scope
            // and this heuristic cannot track it.
            Tok::Ident(name)
                if is_punct(tokens, i + 1, '=')
                    && !is_punct(tokens, i + 2, '=')
                    && !matches!(
                        tokens.get(i.wrapping_sub(1)),
                        Some(Token {
                            tok: Tok::Punct('.'),
                            ..
                        })
                    ) =>
            {
                let end = statement_end(tokens, i + 2);
                if acquires_guard(tokens, i + 2, end) && !guards.iter().any(|g| g.name == *name) {
                    guards.push(Guard {
                        name: name.clone(),
                        depth,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Index just past the `;` ending the statement starting at `start`
/// (braces inside the statement — closures, blocks — are balanced over).
pub(crate) fn statement_end(tokens: &[Token], start: usize) -> usize {
    let mut brace = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => {
                if brace == 0 {
                    return i; // end of enclosing block: statement over
                }
                brace -= 1;
            }
            Tok::Punct(';') if brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Does `tokens[start..end]` contain a no-argument `.lock()` / `.read()`
/// / `.write()` call (the guard-returning shapes of `Mutex`, `RwLock`,
/// and parking_lot), or a call to a `lock_recover`-style poison-recovery
/// wrapper (which returns the guard without a visible `.lock()`)?
fn acquires_guard(tokens: &[Token], start: usize, end: usize) -> bool {
    let mut i = start;
    while i + 1 < end.min(tokens.len()) {
        if is_punct(tokens, i, '.')
            && matches!(ident_at(tokens, i + 1), Some("lock" | "read" | "write"))
            && is_punct(tokens, i + 2, '(')
            && is_punct(tokens, i + 3, ')')
        {
            return true;
        }
        if ident_at(tokens, i) == Some("lock_recover")
            && is_punct(tokens, i + 1, '(')
            && !is_punct(tokens, i.wrapping_sub(1), '.')
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Crate hygiene for a crate-root file: `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe_finding(tokens: &[Token]) -> Option<Finding> {
    let mut i = 0;
    while i + 6 < tokens.len() {
        if is_punct(tokens, i, '#')
            && is_punct(tokens, i + 1, '!')
            && is_punct(tokens, i + 2, '[')
            && ident_at(tokens, i + 3) == Some("forbid")
            && is_punct(tokens, i + 4, '(')
            && ident_at(tokens, i + 5) == Some("unsafe_code")
        {
            return None;
        }
        i += 1;
    }
    Some(Finding {
        rule: "missing-forbid-unsafe",
        line: 1,
        excerpt: "crate root lacks #![forbid(unsafe_code)]".into(),
    })
}

/// Crate hygiene: stdio printing in library code.
pub fn print_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if matches!(
                name.as_str(),
                "println" | "eprintln" | "print" | "eprint" | "dbg"
            ) && is_punct(tokens, i + 1, '!')
            {
                out.push(Finding {
                    rule: "print-in-lib",
                    line: t.line,
                    excerpt: excerpt(lines, t.line),
                });
            }
        }
    }
    out
}

/// Serve-path timing discipline: a raw `Instant::now()` inside a loop
/// body. Hot loops must time through `hopi_obs::Stopwatch` / `Span`
/// (which also feed the histograms) — a bare `Instant::now()` in a loop
/// is either an unrecorded measurement or a per-iteration clock read
/// that belongs outside the loop. The `obs` crate itself is exempt at
/// the dispatch layer: it is where the clock reads are supposed to live.
pub fn instant_in_loop_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    // Mark every token inside a `loop` / `while` / `for` body.
    let mut in_loop = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !mask[i] && matches!(ident_at(tokens, i), Some("loop" | "while" | "for")) {
            if let Some(open) = loop_body_open(tokens, i + 1) {
                let end = match_brace(tokens, open);
                for slot in in_loop.iter_mut().take(end).skip(open) {
                    *slot = true;
                }
            }
        }
        i += 1;
    }
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !in_loop[i] {
            continue;
        }
        if ident_at(tokens, i) == Some("Instant")
            && is_punct(tokens, i + 1, ':')
            && is_punct(tokens, i + 2, ':')
            && ident_at(tokens, i + 3) == Some("now")
            && is_punct(tokens, i + 4, '(')
        {
            out.push(Finding {
                rule: "instant-in-loop",
                line: t.line,
                excerpt: excerpt(lines, t.line),
            });
        }
    }
    out
}

/// The `{` opening the body of a loop whose keyword precedes `start`:
/// the first `{` at paren/bracket depth 0 (skipping over the header's
/// `while` condition or `for … in …` iterator expression).
fn loop_body_open(tokens: &[Token], start: usize) -> Option<usize> {
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut i = start;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
            // A `;` or `}` before the body brace means this was not a
            // loop header after all (e.g. `loop` as a macro ident).
            Tok::Punct(';') | Tok::Punct('}') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// VFS discipline: direct filesystem calls in non-test code of the
/// durability crates, which must route all I/O through the `Vfs`
/// abstraction so the fault-sweep harness can fail every syscall site.
/// Fires on `fs::…` paths (which covers `std::fs::…`), bare `File::…`
/// calls, and any `OpenOptions` use. A `File`/`OpenOptions` preceded by
/// `::` is part of a longer path whose `fs` segment already fired — not
/// counted again, so one call site is one finding.
pub fn direct_io_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let path_continues = is_punct(tokens, i + 1, ':') && is_punct(tokens, i + 2, ':');
        let after_path_sep = i >= 2 && is_punct(tokens, i - 1, ':') && is_punct(tokens, i - 2, ':');
        let fires = match name.as_str() {
            "fs" => path_continues,
            "File" | "OpenOptions" => !after_path_sep,
            _ => false,
        };
        if fires {
            out.push(Finding {
                rule: "direct-io",
                line: t.line,
                excerpt: excerpt(lines, t.line),
            });
        }
    }
    out
}

/// Crate hygiene: `Box<dyn … Error …>` in library code, where a typed
/// `HopiError`-family error belongs.
pub fn box_dyn_error_findings(tokens: &[Token], mask: &[bool], lines: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if let Tok::Ident(name) = &t.tok {
            if name == "Box"
                && is_punct(tokens, i + 1, '<')
                && ident_at(tokens, i + 2) == Some("dyn")
            {
                let ends_with_error = tokens[i + 3..]
                    .iter()
                    .take(8)
                    .any(|t| matches!(&t.tok, Tok::Ident(s) if s.ends_with("Error")));
                if ends_with_error {
                    out.push(Finding {
                        rule: "box-dyn-error",
                        line: t.line,
                        excerpt: excerpt(lines, t.line),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<(String, u32)> {
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        let mut all = panic_findings(&tokens, &mask, &lines);
        all.extend(lock_findings(&tokens, &mask, &lines));
        all.into_iter()
            .map(|f| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_panic_unreachable() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a > b { panic!(\"boom\") } else { unreachable!() }\n}\n";
        let got = findings(src);
        assert!(got.contains(&("unwrap".into(), 2)));
        assert!(got.contains(&("expect".into(), 3)));
        assert!(got.contains(&("panic".into(), 4)));
        assert!(got.contains(&("unreachable".into(), 4)));
    }

    #[test]
    fn unwrap_or_family_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn raw_string_and_comment_contents_do_not_fire() {
        let src = "fn f() {\n    let s = r#\"x.unwrap() and panic!(\"no\")\"#;\n    // a comment: .unwrap()\n    /* nested /* .expect(\"x\") */ panic! */\n    let _ = s;\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn cfg_test_items_and_mod_tests_are_masked() {
        let src = "fn live() { }\n#[cfg(test)]\nmod checks {\n    fn t() { None::<u32>.unwrap(); }\n}\nmod tests {\n    fn t2() { panic!(\"x\") }\n}\n#[cfg(test)]\nfn helper(v: Vec<u32>) -> u32 { v[0] }\nfn tail(v: &[u32]) -> u32 { v[1] }\n";
        let got = findings(src);
        assert_eq!(got, vec![("slice-index".to_string(), 11)]);
    }

    #[test]
    fn slice_index_heuristics() {
        // Indexing fires; array literals, patterns, attributes, and
        // macro bracket args do not.
        let src = "#[derive(Debug)]\nstruct S;\nfn f(v: &[u32], m: &std::collections::HashMap<u32,u32>) -> u32 {\n    let a = [1, 2, 3];\n    let [x, y] = [a[0], v[1]];\n    let z = vec![9];\n    for q in [x, y] { let _ = q; }\n    m[&0] + z[0] + f(v, m)[..][0]\n}\n";
        let got: Vec<u32> = findings(src)
            .into_iter()
            .filter(|(r, _)| r == "slice-index")
            .map(|(_, l)| l)
            .collect();
        // a[0], v[1] on line 5; m[&0], z[0], [..] and [0] on line 8.
        assert_eq!(got, vec![5, 5, 8, 8, 8, 8]);
    }

    #[test]
    fn lock_across_sync_fires_and_respects_drop() {
        let src = "fn bad(m: &std::sync::Mutex<std::fs::File>) {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    g.sync_data().ok();\n}\nfn good(m: &std::sync::Mutex<std::fs::File>, f: &std::fs::File) {\n    let g = m.lock().unwrap_or_else(|e| e.into_inner());\n    drop(g);\n    f.sync_data().ok();\n}\nfn scoped(m: &std::sync::Mutex<u32>, f: &std::fs::File) {\n    { let _g = m.lock().unwrap_or_else(|e| e.into_inner()); }\n    f.sync_all().ok();\n}\nfn reads_are_not_guards(mut s: impl std::io::Read, f: &std::fs::File) {\n    let mut buf = [0u8; 4];\n    let _n = s.read(&mut buf);\n    f.sync_all().ok();\n}\n";
        let got: Vec<(String, u32)> = findings(src)
            .into_iter()
            .filter(|(r, _)| r == "lock-across-sync")
            .collect();
        assert_eq!(got, vec![("lock-across-sync".to_string(), 3)]);
    }

    #[test]
    fn lock_recover_wrapper_is_a_guard_acquisition() {
        let src = "fn bad(m: &std::sync::Mutex<std::fs::File>) {\n    let g = lock_recover(m);\n    g.sync_data().ok();\n}\nfn good(m: &std::sync::Mutex<std::fs::File>, f: &std::fs::File) {\n    let g = lock_recover(m);\n    drop(g);\n    f.sync_all().ok();\n}\n";
        let got: Vec<(String, u32)> = findings(src)
            .into_iter()
            .filter(|(r, _)| r == "lock-across-sync")
            .collect();
        assert_eq!(got, vec![("lock-across-sync".to_string(), 3)]);
    }

    #[test]
    fn instant_in_loop_flags_clock_reads_in_loop_bodies() {
        let src = "use std::time::Instant;\nfn serve() {\n    let started = Instant::now();\n    loop {\n        let t = Instant::now();\n        let _ = (started, t);\n    }\n    while ready() {\n        handle(Instant::now());\n    }\n    for conn in conns() {\n        let _ = (conn, Instant::now());\n    }\n}\n";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        let got: Vec<u32> = instant_in_loop_findings(&tokens, &mask, &lines)
            .into_iter()
            .map(|f| f.line)
            .collect();
        // Line 3's Instant::now() is outside any loop and must not fire.
        assert_eq!(got, vec![5, 9, 12]);
    }

    #[test]
    fn instant_in_loop_ignores_headers_tests_and_stopwatch() {
        let src = "fn ok() {\n    // for x in [Instant::now()] { } — comments don't fire\n    for i in [1, 2] {\n        let sw = hopi_obs::Stopwatch::start();\n        let _ = (i, sw);\n    }\n}\n#[cfg(test)]\nfn timed() {\n    loop {\n        let _ = std::time::Instant::now();\n        break;\n    }\n}\n";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        assert!(instant_in_loop_findings(&tokens, &mask, &lines).is_empty());
    }

    #[test]
    fn direct_io_flags_fs_calls_once_per_site() {
        let src = "use std::fs::File;\nfn load(p: &std::path::Path) -> std::io::Result<Vec<u8>> {\n    let _f = File::open(p)?;\n    let _o = std::fs::OpenOptions::new().append(true).open(p)?;\n    std::fs::rename(p, p)?;\n    fs::read(p)\n}\n";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        let got: Vec<u32> = direct_io_findings(&tokens, &mask, &lines)
            .into_iter()
            .map(|f| f.line)
            .collect();
        // One finding per site: the `use`, File::open, the OpenOptions
        // path (counted at its `fs` segment), fs::rename, fs::read.
        assert_eq!(got, vec![1, 3, 4, 5, 6]);
    }

    #[test]
    fn direct_io_ignores_vfs_idents_tests_and_strings() {
        let src = "fn ok(vfs: &dyn Vfs, f: &mut dyn VfsFile) {\n    let _ = vfs.exists(std::path::Path::new(\"std::fs::File\"));\n    f.sync_data().ok();\n    // comment: std::fs::File::open\n}\n#[cfg(test)]\nmod checks {\n    fn t() { let _ = std::fs::read(\"x\"); }\n}\n";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        assert!(direct_io_findings(&tokens, &mask, &lines).is_empty());
    }

    #[test]
    fn hygiene_rules() {
        let with = lex("#![forbid(unsafe_code)]\nfn a() {}\n");
        assert!(forbid_unsafe_finding(&with).is_none());
        let without = lex("//! doc\nfn a() {}\n");
        assert!(forbid_unsafe_finding(&without).is_some());

        let src = "fn log() { println!(\"x\"); }\npub fn open() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }\n";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(print_findings(&tokens, &mask, &lines).len(), 1);
        assert_eq!(box_dyn_error_findings(&tokens, &mask, &lines).len(), 1);
    }
}
