//! Symbol table and approximate call graph over the lexed workspace.
//!
//! The interprocedural rules ([`crate::summary`]) need to know, for
//! every non-test function on the serve path, *where it is* (file,
//! line, body token range, enclosing `impl` type) and *who it may
//! call*. Rust name resolution is out of reach for a zero-dependency
//! lexer, so the graph is approximate by design, erring toward extra
//! edges (a missed deadlock is worse than an extra witness to review):
//!
//! * a call site is an identifier followed by `(` that is not a
//!   keyword, macro, or one of the lock/blocking primitives the
//!   summary pass consumes directly;
//! * candidates are every workspace function with the same name,
//!   narrowed by the `Type::` qualifier when present, by method-ness
//!   (`.name(` prefers `self` methods), and by argument count when an
//!   exact arity match exists (counting top-level commas — closures
//!   with multi-parameter pipes can overcount, in which case the
//!   narrowing falls back to all same-name candidates).

use crate::lexer::{Tok, Token};
use crate::rules::{ident_at, is_punct, match_brace};

/// One function definition found in a scanned file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Index of the source file in the scan's file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type (`impl Wal` / `impl Vfs for StdVfs` →
    /// `Wal` / `StdVfs`), used to key `self.field` lock paths.
    pub self_type: Option<String>,
    /// Whether the first parameter is `self` (any receiver shape).
    pub has_self: bool,
    /// Parameter count excluding `self`.
    pub arity: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index just past the body's closing `}`.
    pub body_end: usize,
}

impl FnItem {
    /// Display name: `Type::name` for methods, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Extracts every non-test function item (with a body) from one file's
/// token stream. Nested functions are folded into their enclosing item:
/// the body range of the outer function covers them, which is the
/// attribution the summary pass wants.
pub fn extract_fns(tokens: &[Token], mask: &[bool], file: usize) -> Vec<FnItem> {
    let mut out = Vec::new();
    // (token index past the impl block, self type) — innermost last.
    let mut impls: Vec<(usize, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while impls.last().is_some_and(|(end, _)| i >= *end) {
            impls.pop();
        }
        if mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        match ident_at(tokens, i) {
            Some("impl") => {
                if let Some((open, ty)) = impl_header(tokens, i + 1) {
                    impls.push((match_brace(tokens, open), ty));
                    i = open + 1;
                    continue;
                }
            }
            // Trait blocks scope their default methods the same way;
            // the self type is the trait's own name.
            Some("trait") => {
                if let Some((open, _)) = impl_header(tokens, i + 1) {
                    let name = ident_at(tokens, i + 1).map(str::to_string);
                    impls.push((match_brace(tokens, open), name));
                    i = open + 1;
                    continue;
                }
            }
            Some("fn") => {
                let self_type = impls.last().and_then(|(_, t)| t.clone());
                if let Some(item) = parse_fn(tokens, i, file, self_type) {
                    let next = item.body_end.max(i + 1);
                    out.push(item);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses an `impl` header starting just past the keyword. Returns the
/// opening-brace token index and the implementing type: the last
/// identifier at angle-depth 0 (restarting after `for`, stopping at
/// `where`), so `impl<T> fmt::Display for Wrapper<T> where …` → Wrapper.
fn impl_header(tokens: &[Token], start: usize) -> Option<(usize, Option<String>)> {
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut collecting = true;
    let mut i = start;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') if !is_punct(tokens, i.wrapping_sub(1), '-') => angle -= 1,
            Tok::Punct('{') if angle <= 0 => return Some((i, ty)),
            // `impl Trait for Type;` does not exist; a stray `;` means
            // this was not an impl block after all.
            Tok::Punct(';') if angle <= 0 => return None,
            Tok::Ident(s) if angle <= 0 && collecting => match s.as_str() {
                "for" => ty = None,
                "where" => collecting = false,
                "dyn" | "mut" | "const" | "unsafe" => {}
                _ => ty = Some(s.clone()),
            },
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses a `fn` item at `at` (the keyword). `None` for fn-pointer
/// types (`fn(u8) -> u8`) and bodyless trait declarations.
fn parse_fn(tokens: &[Token], at: usize, file: usize, self_type: Option<String>) -> Option<FnItem> {
    let name = ident_at(tokens, at + 1)?.to_string();
    let mut i = at + 2;
    if is_punct(tokens, i, '<') {
        i = skip_angles(tokens, i);
    }
    if !is_punct(tokens, i, '(') {
        return None;
    }
    let (params_end, has_self, arity) = parse_params(tokens, i);
    // Scan the return type / where clause: the first `{` at depth 0
    // opens the body; a `;` first means declaration-only.
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = params_end;
    let body_open = loop {
        match tokens.get(j).map(|t| &t.tok)? {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') if paren == 0 && bracket == 0 => break j,
            Tok::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    Some(FnItem {
        file,
        name,
        self_type,
        has_self,
        arity,
        line: tokens[at].line,
        body_open,
        body_end: match_brace(tokens, body_open),
    })
}

/// Index just past the `>` matching the `<` at `open`, treating `->`
/// arrows inside `Fn(…) -> …` bounds as non-closers.
fn skip_angles(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') if !is_punct(tokens, i.wrapping_sub(1), '-') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Walks a parameter list from its `(`; returns (index past `)`,
/// has-self, parameter count excluding self). Commas inside nested
/// parens, brackets, and generic angles do not count.
fn parse_params(tokens: &[Token], open: usize) -> (usize, bool, usize) {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut params = 0usize;
    let mut saw_tokens = false;
    let mut has_self = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('(') => {
                paren += 1;
                if paren > 1 {
                    saw_tokens = true;
                }
            }
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    if saw_tokens {
                        params += 1;
                    }
                    if has_self {
                        params = params.saturating_sub(1);
                    }
                    return (i + 1, has_self, params);
                }
                saw_tokens = true;
            }
            Tok::Punct('[') => {
                bracket += 1;
                saw_tokens = true;
            }
            Tok::Punct(']') => {
                bracket -= 1;
                saw_tokens = true;
            }
            Tok::Punct('<') => {
                angle += 1;
                saw_tokens = true;
            }
            Tok::Punct('>') => {
                if !is_punct(tokens, i.wrapping_sub(1), '-') {
                    angle -= 1;
                }
                saw_tokens = true;
            }
            Tok::Punct(',') if paren == 1 && bracket == 0 && angle <= 0 => {
                if saw_tokens {
                    params += 1;
                }
                saw_tokens = false;
            }
            Tok::Ident(s) => {
                if s == "self" && paren == 1 && params == 0 {
                    has_self = true;
                }
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
        i += 1;
    }
    (tokens.len(), has_self, params)
}

/// Name → candidate function indices, for call resolution.
pub struct SymbolTable {
    by_name: std::collections::BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the index over the full workspace function list.
    pub fn new(fns: &[FnItem]) -> SymbolTable {
        let mut by_name: std::collections::BTreeMap<String, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(idx);
        }
        SymbolTable { by_name }
    }

    /// Resolves a call to candidate definitions, narrowing in order by
    /// `Type::` qualifier, method-ness, then exact arity. Each narrowing
    /// step only applies when it leaves at least one candidate — an
    /// overcounted closure argument must widen, not empty, the set.
    pub fn resolve(
        &self,
        fns: &[FnItem],
        name: &str,
        qualifier: Option<&str>,
        is_method: bool,
        argc: usize,
    ) -> Vec<usize> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let mut cands: Vec<usize> = all.clone();
        if let Some(q) = qualifier {
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| fns[i].self_type.as_deref() == Some(q))
                .collect();
            if !narrowed.is_empty() {
                cands = narrowed;
            }
        }
        if is_method {
            let narrowed: Vec<usize> = cands.iter().copied().filter(|&i| fns[i].has_self).collect();
            if !narrowed.is_empty() {
                cands = narrowed;
            }
        }
        let exact: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].arity == argc)
            .collect();
        if !exact.is_empty() {
            cands = exact;
        }
        cands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn fns_of(src: &str) -> Vec<FnItem> {
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        extract_fns(&tokens, &mask, 0)
    }

    #[test]
    fn extracts_free_fns_and_methods() {
        let src = "fn free(a: u32, b: u32) -> u32 { a + b }\n\
                   struct W { n: u32 }\n\
                   impl W {\n    fn get(&self) -> u32 { self.n }\n\
                   fn set(&mut self, n: u32) { self.n = n; }\n}\n\
                   impl std::fmt::Display for W {\n\
                   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, \"{}\", self.n) }\n}\n";
        let fns = fns_of(src);
        let names: Vec<(String, Option<String>, bool, usize)> = fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone(), f.has_self, f.arity))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, false, 2),
                ("get".into(), Some("W".into()), true, 0),
                ("set".into(), Some("W".into()), true, 1),
                ("fmt".into(), Some("W".into()), true, 1),
            ]
        );
    }

    #[test]
    fn generics_where_clauses_and_decls() {
        let src = "trait T {\n    fn decl_only(&self);\n\
                   fn with_default(&self) -> u32 { 1 }\n}\n\
                   fn generic<F: Fn(u32) -> u32>(f: F, m: std::collections::HashMap<u32, u32>) -> u32 where F: Clone { f(m.len() as u32) }\n";
        let fns = fns_of(src);
        let names: Vec<(String, usize)> = fns.iter().map(|f| (f.name.clone(), f.arity)).collect();
        // decl_only has no body and is skipped; the HashMap<u32, u32>
        // comma must not inflate generic's arity.
        assert_eq!(
            names,
            vec![("with_default".into(), 0), ("generic".into(), 2)]
        );
        assert_eq!(fns[0].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn test_fns_are_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let fns = fns_of(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "live");
    }

    #[test]
    fn resolution_narrows_by_qualifier_method_and_arity() {
        let src = "struct A; struct B;\n\
                   impl A { fn go(&self, x: u32, y: u32) -> u32 { x + y } }\n\
                   impl B { fn go(&self, x: u32) -> u32 { x } }\n\
                   fn go() {}\n";
        let fns = fns_of(src);
        let table = SymbolTable::new(&fns);
        // Method call with two args → A::go only.
        let got = table.resolve(&fns, "go", None, true, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(fns[got[0]].self_type.as_deref(), Some("A"));
        // Qualified call → B::go even with a mismatched arity.
        let got = table.resolve(&fns, "go", Some("B"), false, 9);
        assert_eq!(got.len(), 1);
        assert_eq!(fns[got[0]].self_type.as_deref(), Some("B"));
        // Bare zero-arg call → the free fn.
        let got = table.resolve(&fns, "go", None, false, 0);
        assert_eq!(got.len(), 1);
        assert!(fns[got[0]].self_type.is_none());
        // Unknown names resolve to nothing.
        assert!(table.resolve(&fns, "missing", None, false, 0).is_empty());
    }
}
