//! `hopi-lint` — the CI entry point for the workspace invariants.
//!
//! ```text
//! hopi-lint [--check [--github]]      diff the scan against lint_baseline.toml
//! hopi-lint --list                    print every finding with its source line
//! hopi-lint --update-baseline [--force]
//! hopi-lint --dump-callgraph          serve-path functions, callees, lock/blocking summaries
//! hopi-lint --explain RULE            what a rule means and how to fix findings
//! hopi-lint --root DIR --baseline FILE   (defaults: ., ROOT/lint_baseline.toml)
//! ```
//!
//! Exit codes: 0 clean, 1 findings/stale baseline, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hopi-lint [--check [--github] | --list | --update-baseline [--force] \
                     | --dump-callgraph | --explain RULE] [--root DIR] [--baseline FILE]";

enum Mode {
    Check,
    List,
    Update,
    DumpCallgraph,
    Explain(String),
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut force = false;
    let mut github = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--list" => mode = Mode::List,
            "--update-baseline" => mode = Mode::Update,
            "--dump-callgraph" => mode = Mode::DumpCallgraph,
            "--explain" => match args.next() {
                Some(rule) => mode = Mode::Explain(rule),
                None => return usage_error("--explain needs a rule name"),
            },
            "--force" => force = true,
            "--github" => github = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage_error("--baseline needs a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.toml"));

    match mode {
        Mode::List => match hopi_lint::check(&root, &baseline_path) {
            Ok(outcome) => {
                for report in &outcome.reports {
                    for f in &report.findings {
                        println!("{}:{} [{}] {}", report.path, f.line, f.rule, f.excerpt);
                    }
                }
                println!(
                    "{} findings across {} scanned files",
                    outcome.total_findings(),
                    outcome.reports.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        Mode::Check => match hopi_lint::check(&root, &baseline_path) {
            Ok(outcome) if outcome.is_clean() => {
                println!(
                    "hopi-lint clean: {} findings across {} files, all baselined",
                    outcome.total_findings(),
                    outcome.reports.len()
                );
                ExitCode::SUCCESS
            }
            Ok(outcome) => {
                if github {
                    print!("{}", outcome.render_github_annotations());
                }
                eprint!("{}", outcome.render_failures());
                eprintln!(
                    "hopi-lint: {} new, {} stale — the serve path must not grow panic paths",
                    outcome.diff.new.len(),
                    outcome.diff.stale.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => io_error(&e),
        },
        Mode::Update => match hopi_lint::update_baseline(&root, &baseline_path, force) {
            Ok(text) => {
                let entries = text.lines().filter(|l| l.contains(" = ")).count();
                println!("wrote {} ({} entries)", baseline_path.display(), entries);
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        Mode::DumpCallgraph => match hopi_lint::dump_callgraph(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        Mode::Explain(rule) => match hopi_lint::rules::explain(&rule) {
            Some(text) => {
                println!("{rule}\n\n{text}");
                ExitCode::SUCCESS
            }
            None => {
                let known = hopi_lint::rules::ALL_RULES.join(", ");
                usage_error(&format!("unknown rule '{rule}' — known rules: {known}"))
            }
        },
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hopi-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("hopi-lint: {msg}");
    ExitCode::from(2)
}
