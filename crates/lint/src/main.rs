//! `hopi-lint` — the CI entry point for the workspace invariants.
//!
//! ```text
//! hopi-lint [--check]                 diff the scan against lint_baseline.toml
//! hopi-lint --list                    print every finding with its source line
//! hopi-lint --update-baseline [--force]
//! hopi-lint --root DIR --baseline FILE   (defaults: ., ROOT/lint_baseline.toml)
//! ```
//!
//! Exit codes: 0 clean, 1 findings/stale baseline, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hopi-lint [--check | --list | --update-baseline [--force]] \
                     [--root DIR] [--baseline FILE]";

enum Mode {
    Check,
    List,
    Update,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut force = false;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--list" => mode = Mode::List,
            "--update-baseline" => mode = Mode::Update,
            "--force" => force = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory"),
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => return usage_error("--baseline needs a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint_baseline.toml"));

    match mode {
        Mode::List => match hopi_lint::check(&root, &baseline_path) {
            Ok(outcome) => {
                for report in &outcome.reports {
                    for f in &report.findings {
                        println!("{}:{} [{}] {}", report.path, f.line, f.rule, f.excerpt);
                    }
                }
                println!(
                    "{} findings across {} scanned files",
                    outcome.total_findings(),
                    outcome.reports.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
        Mode::Check => match hopi_lint::check(&root, &baseline_path) {
            Ok(outcome) if outcome.is_clean() => {
                println!(
                    "hopi-lint clean: {} findings across {} files, all baselined",
                    outcome.total_findings(),
                    outcome.reports.len()
                );
                ExitCode::SUCCESS
            }
            Ok(outcome) => {
                eprint!("{}", outcome.render_failures());
                eprintln!(
                    "hopi-lint: {} new, {} stale — the serve path must not grow panic paths",
                    outcome.diff.new.len(),
                    outcome.diff.stale.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => io_error(&e),
        },
        Mode::Update => match hopi_lint::update_baseline(&root, &baseline_path, force) {
            Ok(text) => {
                let entries = text.lines().filter(|l| l.contains(" = ")).count();
                println!("wrote {} ({} entries)", baseline_path.display(), entries);
                ExitCode::SUCCESS
            }
            Err(e) => io_error(&e),
        },
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hopi-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("hopi-lint: {msg}");
    ExitCode::from(2)
}
