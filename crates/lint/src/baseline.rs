//! The ratcheting baseline: per-`(file, rule)` finding counts, stored
//! as a minimal TOML document (`lint_baseline.toml`).
//!
//! The contract is one-way: the checked-in baseline records *existing*
//! debt and may only shrink. `--check` fails on either direction of
//! drift — a count above its baseline is a **new finding**, a baseline
//! entry above the actual count is **stale** (debt was paid down but the
//! baseline was not regenerated, which would let new debt hide under the
//! old allowance). `--update-baseline` regenerates the file and refuses
//! to grow any entry unless forced.

use std::collections::BTreeMap;

/// `file → rule → count`, ordered for stable rendering.
pub type Counts = BTreeMap<String, BTreeMap<String, u32>>;

/// The drift between a scan and the baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Diff {
    /// `(file, rule, actual, allowed)` where `actual > allowed`.
    pub new: Vec<(String, String, u32, u32)>,
    /// `(file, rule, allowed, actual)` where `allowed > actual`.
    pub stale: Vec<(String, String, u32, u32)>,
}

impl Diff {
    /// No drift in either direction.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Compares a scan against the baseline (missing entries count 0 on
/// both sides).
pub fn diff(actual: &Counts, baseline: &Counts) -> Diff {
    let mut d = Diff::default();
    for (file, rules) in actual {
        for (rule, &n) in rules {
            let allowed = baseline
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if n > allowed {
                d.new.push((file.clone(), rule.clone(), n, allowed));
            }
        }
    }
    for (file, rules) in baseline {
        for (rule, &allowed) in rules {
            let n = actual
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if allowed > n {
                d.stale.push((file.clone(), rule.clone(), allowed, n));
            }
        }
    }
    d
}

/// Entries that grew from `old` to `new` — `(file, rule, old, new)`.
/// `--update-baseline` refuses these without `--force`.
pub fn grown(old: &Counts, new: &Counts) -> Vec<(String, String, u32, u32)> {
    let mut out = Vec::new();
    for (file, rules) in new {
        for (rule, &n) in rules {
            let was = old
                .get(file)
                .and_then(|r| r.get(rule))
                .copied()
                .unwrap_or(0);
            if n > was {
                out.push((file.clone(), rule.clone(), was, n));
            }
        }
    }
    out
}

/// Renders the baseline document. Deterministic: files and rules in
/// lexicographic order, one table per file.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# hopi-lint baseline — frozen panic/lock debt, per (file, rule) count.\n\
         # This file may only shrink. Regenerate after paying debt down:\n\
         #     cargo run -p hopi-lint -- --update-baseline\n\
         # New findings (counts above these) fail `hopi-lint --check` and CI.\n",
    );
    for (file, rules) in counts {
        if rules.is_empty() {
            continue;
        }
        out.push('\n');
        out.push_str(&format!("[\"{file}\"]\n"));
        for (rule, n) in rules {
            out.push_str(&format!("{rule} = {n}\n"));
        }
    }
    out
}

/// Parses the TOML subset written by [`render`]: `["path"]` tables with
/// `rule = count` entries, `#` comments, blank lines.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    let mut current: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("baseline line {lineno}: unterminated table header"))?
                .trim();
            let path = inner
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("baseline line {lineno}: table name must be quoted"))?;
            if path.is_empty() {
                return Err(format!("baseline line {lineno}: empty file path"));
            }
            counts.entry(path.to_string()).or_default();
            current = Some(path.to_string());
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("baseline line {lineno}: expected `rule = count`"))?;
        let rule = key.trim();
        let n: u32 = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {lineno}: count is not a non-negative integer"))?;
        let file = current
            .as_ref()
            .ok_or_else(|| format!("baseline line {lineno}: entry before any [\"file\"] table"))?;
        if !crate::rules::ALL_RULES.contains(&rule) {
            return Err(format!("baseline line {lineno}: unknown rule '{rule}'"));
        }
        if let Some(prev) = counts
            .get_mut(file)
            .and_then(|rules| rules.insert(rule.to_string(), n))
        {
            return Err(format!(
                "baseline line {lineno}: duplicate entry for {file}/{rule} (was {prev})"
            ));
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, u32)]) -> Counts {
        let mut c = Counts::new();
        for &(file, rule, n) in entries {
            c.entry(file.into()).or_default().insert(rule.into(), n);
        }
        c
    }

    #[test]
    fn render_parse_round_trip() {
        let c = counts(&[
            ("crates/core/src/cover.rs", "expect", 2),
            ("crates/core/src/cover.rs", "slice-index", 7),
            ("crates/store/src/wal.rs", "unwrap", 1),
        ]);
        let text = render(&c);
        assert_eq!(parse(&text).unwrap(), c);
        // Deterministic ordering.
        assert_eq!(text, render(&parse(&text).unwrap()));
    }

    #[test]
    fn diff_finds_new_and_stale() {
        let base = counts(&[("a.rs", "unwrap", 2), ("b.rs", "panic", 1)]);
        let actual = counts(&[("a.rs", "unwrap", 3), ("c.rs", "expect", 1)]);
        let d = diff(&actual, &base);
        assert_eq!(
            d.new,
            vec![
                ("a.rs".into(), "unwrap".into(), 3, 2),
                ("c.rs".into(), "expect".into(), 1, 0),
            ]
        );
        assert_eq!(d.stale, vec![("b.rs".into(), "panic".into(), 1, 0)]);
        assert!(diff(&base, &base).is_clean());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "unwrap = 1\n",                         // entry before table
            "[\"a.rs\"]\nunwrap = -1\n",            // negative count
            "[\"a.rs\"]\nunwrap 1\n",               // missing '='
            "[\"a.rs\"\nunwrap = 1\n",              // unterminated header
            "[a.rs]\nunwrap = 1\n",                 // unquoted path
            "[\"a.rs\"]\nnot-a-rule = 1\n",         // unknown rule
            "[\"a.rs\"]\nunwrap = 1\nunwrap = 2\n", // duplicate
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn grown_entries_detected() {
        let old = counts(&[("a.rs", "unwrap", 2)]);
        let new = counts(&[("a.rs", "unwrap", 1), ("a.rs", "panic", 1)]);
        assert_eq!(
            grown(&old, &new),
            vec![("a.rs".into(), "panic".into(), 0, 1)]
        );
        assert!(grown(&new, &new).is_empty());
    }
}
