//! Per-function lock/blocking summaries, fixpoint propagation, and the
//! two interprocedural rule families built on top of them.
//!
//! For every serve-path function the event scan records, in token
//! order: lock acquisitions (`.lock()` / `.read()` / `.write()` with
//! empty parens, and the workspace's `lock_recover(…)` poison-recovery
//! wrapper), guard lifetimes (named `let` bindings vs. temporaries held
//! to the end of their statement, `drop(g)`, scope exit), blocking
//! operations (fsync-class calls, `write_all`/`flush`/`read_exact`,
//! channel `recv`/`send`, `accept`, `thread::sleep`, `Condvar::wait`,
//! and anything under an `fs::` path), and call sites with the set of
//! guards held at each. Summaries then propagate over the approximate
//! call graph ([`crate::callgraph`]) to a fixpoint:
//!
//! * `can_block` — the shortest known chain of calls from this function
//!   to a blocking operation;
//! * `acquires_reach` — every lock key this function may acquire,
//!   directly or transitively, each with a witness chain.
//!
//! Two ratcheted rules come out of the fixpoint. **blocking-under-lock**
//! fires when a blocking operation is performed or transitively
//! reachable while any guard is live (fsync-class calls under a *named*
//! guard in the same scope stay with the older `lock-across-sync` rule
//! to avoid double findings). **lock-order** builds the global
//! acquisition-order graph over lock keys (`Wal.inner`,
//! `OnlineHopi.engine`, …) from both same-function nesting and
//! calls-while-holding; every cycle — a potential deadlock — is
//! reported once per strongly connected component with the full witness
//! chain. Both rules honor a `// lint: allow(RULE)` comment on the
//! finding line or the line above (applied by the scan merge).

use crate::callgraph::{extract_fns, FnItem, SymbolTable};
use crate::lexer::{Tok, Token};
use crate::rules::{
    excerpt, ident_at, is_punct, statement_end, Finding, NON_INDEX_KEYWORDS, SYNC_FNS,
};
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Methods that block the calling thread (beyond fsync, which
/// [`SYNC_FNS`] already names): file and socket I/O, channel waits,
/// thread joins. `read`/`write` block only when called *with*
/// arguments — the no-argument forms are `RwLock` guard acquisitions.
const BLOCKING_METHODS: &[&str] = &[
    "accept",
    "flush",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "send",
    "set_len",
    "sync_all",
    "sync_data",
    "write_all",
];

/// Free or path-qualified functions that block (`thread::sleep`, the
/// VFS fsync helpers). Any call under an `fs::` path qualifier is also
/// blocking regardless of name.
const BLOCKING_BARE: &[&str] = &[
    "atomic_write_file",
    "atomic_write_file_in",
    "fsync",
    "sleep",
    "sync_parent_dir",
    "sync_parent_dir_in",
];

/// Method names so common on std containers/iterators that resolving
/// them by name would alias unrelated workspace functions (e.g. a JSON
/// body's `.get(…)` must not resolve to the test client's network
/// `get`). Calls to these never produce call-graph edges.
const UBIQUITOUS_METHODS: &[&str] = &[
    "as_mut",
    "as_ref",
    "borrow",
    "clone",
    "cmp",
    "contains",
    "default",
    "eq",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "len",
    "next",
    "partial_cmp",
    "pop",
    "push",
    "remove",
    "to_owned",
    "to_string",
];

/// Combinators that transform an acquisition result without ending the
/// guard's life: `m.lock().unwrap_or_else(…)` still yields the guard.
const GUARD_ADAPTERS: &[&str] = &[
    "expect",
    "map_err",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
];

/// One step of a witness chain: a human-readable description anchored
/// to a source location.
#[derive(Clone, Debug)]
pub struct Step {
    /// What happens here (`` `Wal::append` holds Wal.inner, … ``).
    pub desc: String,
    /// Index into the scanned file list.
    pub file: usize,
    /// 1-based source line.
    pub line: u32,
}

type Chain = Vec<Step>;

/// A live guard during the event scan.
struct Guard {
    /// Lock key (`Wal.inner`); `None` for unkeyable receivers.
    key: Option<String>,
    /// `let` binding name, when the guard is named.
    binding: Option<String>,
    /// Brace depth at acquisition (guards die on scope exit).
    depth: i32,
    /// For temporaries: the token index at which the guard dies.
    temp_end: Option<usize>,
}

struct AcquireEv {
    key: Option<String>,
    line: u32,
    /// Keys held *before* this acquisition (named keys only).
    held: Vec<String>,
}

struct BlockEv {
    label: String,
    line: u32,
    /// Keys of every live guard (`?` for unkeyable ones).
    held: Vec<String>,
    /// Fsync-class op — same-scope named-guard findings belong to the
    /// older `lock-across-sync` rule, so the direct check skips these.
    sync_domain: bool,
}

struct CallEv {
    name: String,
    qualifier: Option<String>,
    is_method: bool,
    argc: usize,
    line: u32,
    held: Vec<String>,
}

#[derive(Default)]
struct FnEvents {
    acquires: Vec<AcquireEv>,
    blocks: Vec<BlockEv>,
    calls: Vec<CallEv>,
}

/// The fixpoint result for one function.
#[derive(Default)]
struct Summary {
    /// Chain to the nearest known blocking operation, if any.
    can_block: Option<Chain>,
    /// Lock keys acquired directly or transitively, with witnesses.
    reach: BTreeMap<String, Chain>,
}

/// The whole interprocedural analysis over the serve-path files of one
/// scan: extracted functions, resolved calls, per-function events and
/// fixpoint summaries.
pub struct Analysis {
    fns: Vec<FnItem>,
    events: Vec<FnEvents>,
    /// Per function: (event index into `calls`, resolved target fns).
    resolved: Vec<Vec<(usize, Vec<usize>)>>,
    summaries: Vec<Summary>,
}

/// Runs the analysis over `serve` (indices into `files` of serve-path
/// crate sources).
pub fn analyze(files: &[SourceFile], serve: &[usize]) -> Analysis {
    let mut fns = Vec::new();
    for &fi in serve {
        let f = &files[fi];
        fns.extend(extract_fns(&f.tokens, &f.mask, fi));
    }
    let table = SymbolTable::new(&fns);
    let events: Vec<FnEvents> = fns
        .iter()
        .map(|f| {
            let file = &files[f.file];
            scan_fn(&file.tokens, &file.mask, f)
        })
        .collect();
    let resolved: Vec<Vec<(usize, Vec<usize>)>> = fns
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            events[fi]
                .calls
                .iter()
                .enumerate()
                .map(|(ci, c)| {
                    let q_owned = match c.qualifier.as_deref() {
                        Some("Self") => f.self_type.clone(),
                        other => other.map(str::to_string),
                    };
                    // Lowercase qualifiers are module paths — resolve by
                    // name. Uppercase ones are types: require a matching
                    // workspace impl, so `Vec::new(…)` stays unresolved
                    // instead of aliasing every workspace `new`.
                    let strict_type = q_owned
                        .as_deref()
                        .is_some_and(|q| q.chars().next().is_some_and(|c| c.is_uppercase()));
                    let qualifier = if strict_type {
                        q_owned.as_deref()
                    } else {
                        None
                    };
                    let mut targets = table.resolve(&fns, &c.name, qualifier, c.is_method, c.argc);
                    if strict_type {
                        targets.retain(|&t| fns[t].self_type.as_deref() == qualifier);
                    }
                    // A bare unqualified call can never be an inherent
                    // method (Rust requires `self.` or `Type::`), so
                    // same-name methods must not alias it — better to
                    // leave it unresolved than to invent an edge.
                    if !c.is_method && qualifier.is_none() {
                        targets.retain(|&t| !fns[t].has_self);
                    }
                    (ci, targets)
                })
                .collect()
        })
        .collect();
    let summaries = fixpoint(files, &fns, &events, &resolved);
    Analysis {
        fns,
        events,
        resolved,
        summaries,
    }
}

/// The two interprocedural rule families, as `(file index, finding)`
/// pairs for the scan to merge. Deterministic order: functions in
/// extraction order, events in token order, lock-order cycles last.
pub fn interproc_findings(files: &[SourceFile], serve: &[usize]) -> Vec<(usize, Finding)> {
    let a = analyze(files, serve);
    let mut out = Vec::new();
    blocking_findings(files, &a, &mut out);
    lock_order_findings(files, &a, &mut out);
    out
}

fn blocking_findings(files: &[SourceFile], a: &Analysis, out: &mut Vec<(usize, Finding)>) {
    for (fi, f) in a.fns.iter().enumerate() {
        let file = &files[f.file];
        let lines: Vec<&str> = file.text.lines().collect();
        for b in &a.events[fi].blocks {
            if b.held.is_empty() || b.sync_domain {
                continue;
            }
            out.push((
                f.file,
                Finding {
                    rule: "blocking-under-lock",
                    line: b.line,
                    excerpt: format!(
                        "`{}` holds [{}] across blocking {}: {}",
                        f.display(),
                        b.held.join(", "),
                        b.label,
                        excerpt(&lines, b.line)
                    ),
                },
            ));
        }
        for (ci, targets) in &a.resolved[fi] {
            let c = &a.events[fi].calls[*ci];
            if c.held.is_empty() {
                continue;
            }
            let Some((t, chain)) = targets
                .iter()
                .find_map(|&t| a.summaries[t].can_block.as_ref().map(|ch| (t, ch)))
            else {
                continue;
            };
            let mut full = vec![Step {
                desc: format!("`{}` calls `{}`", f.display(), a.fns[t].display()),
                file: f.file,
                line: c.line,
            }];
            full.extend(chain.iter().cloned());
            out.push((
                f.file,
                Finding {
                    rule: "blocking-under-lock",
                    line: c.line,
                    excerpt: format!(
                        "`{}` holds [{}] across a call that can block: {}",
                        f.display(),
                        c.held.join(", "),
                        render_chain(files, &full)
                    ),
                },
            ));
        }
    }
}

/// An acquisition-order edge `from → to` with its witness chain.
struct Edge {
    from: String,
    to: String,
    chain: Chain,
}

fn lock_order_findings(files: &[SourceFile], a: &Analysis, out: &mut Vec<(usize, Finding)>) {
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push = |edges: &mut Vec<Edge>, e: Edge| {
        if seen.insert((e.from.clone(), e.to.clone())) {
            edges.push(e);
        }
    };
    for (fi, f) in a.fns.iter().enumerate() {
        for acq in &a.events[fi].acquires {
            let Some(to) = acq.key.as_ref().filter(|k| *k != "?") else {
                continue;
            };
            for from in named_keys(&acq.held) {
                push(
                    &mut edges,
                    Edge {
                        from: from.clone(),
                        to: to.clone(),
                        chain: vec![Step {
                            desc: format!("`{}` holds {from}, acquires {to}", f.display()),
                            file: f.file,
                            line: acq.line,
                        }],
                    },
                );
            }
        }
        for (ci, targets) in &a.resolved[fi] {
            let c = &a.events[fi].calls[*ci];
            let held = named_keys(&c.held);
            if held.is_empty() {
                continue;
            }
            for &t in targets {
                for (to, chain) in &a.summaries[t].reach {
                    for from in &held {
                        let mut full = vec![Step {
                            desc: format!(
                                "`{}` holds {from}, calls `{}`",
                                f.display(),
                                a.fns[t].display()
                            ),
                            file: f.file,
                            line: c.line,
                        }];
                        full.extend(chain.iter().cloned());
                        push(
                            &mut edges,
                            Edge {
                                from: (*from).clone(),
                                to: to.clone(),
                                chain: full,
                            },
                        );
                    }
                }
            }
        }
    }

    // Cycle detection over the key graph: a key is deadlock-capable iff
    // it can reach itself through at least one edge. Mutually-reachable
    // keys form one SCC and yield one finding, anchored at the first
    // edge of the cycle walk.
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        succ.entry(&e.from).or_default().insert(&e.to);
    }
    let reach_from = |start: &str| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = succ.get(start).into_iter().flatten().copied().collect();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                stack.extend(succ.get(n).into_iter().flatten().copied());
            }
        }
        seen
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in &edges {
        let r = reach_from(&e.from);
        if !r.contains(e.from.as_str()) {
            continue;
        }
        let scc: Vec<String> = r
            .iter()
            .filter(|&&n| n == e.from || reach_from(n).contains(e.from.as_str()))
            .map(|&n| n.to_string())
            .collect();
        // Only an edge that stays inside the SCC can start a cycle walk
        // (`engine → checkpoint_lock` is not part of an `engine →
        // engine` self-loop); a later in-SCC edge will report it.
        if !scc.contains(&e.to) {
            continue;
        }
        let mut key: Vec<String> = scc.clone();
        key.sort();
        if !reported.insert(key) {
            continue;
        }
        // Walk a concrete cycle through the SCC, starting from this
        // edge, preferring unvisited nodes and closing back on the
        // start. Bounded by the edge count, so malformed graphs cannot
        // spin.
        let mut cycle_edges: Vec<&Edge> = vec![e];
        let mut at = e.to.as_str();
        let mut visited: BTreeSet<&str> = BTreeSet::from([e.from.as_str(), e.to.as_str()]);
        while at != e.from && cycle_edges.len() <= edges.len() {
            let candidates: Vec<&Edge> = edges
                .iter()
                .filter(|x| x.from == at && scc.contains(&x.to))
                .collect();
            let next = candidates
                .iter()
                .find(|x| x.to == e.from)
                .or_else(|| candidates.iter().find(|x| !visited.contains(x.to.as_str())))
                .or_else(|| candidates.first());
            let Some(next) = next else { break };
            cycle_edges.push(next);
            visited.insert(next.to.as_str());
            at = &next.to;
        }
        let nodes: String = cycle_edges
            .iter()
            .map(|x| x.from.as_str())
            .chain([at])
            .collect::<Vec<_>>()
            .join(" → ");
        let witness: Vec<String> = cycle_edges
            .iter()
            .map(|x| render_chain(files, &x.chain))
            .collect();
        let anchor = &e.chain[0];
        out.push((
            anchor.file,
            Finding {
                rule: "lock-order",
                line: anchor.line,
                excerpt: format!("deadlock cycle {nodes}: {}", witness.join("; ")),
            },
        ));
    }
}

fn named_keys(held: &[String]) -> Vec<&String> {
    held.iter().filter(|k| k.as_str() != "?").collect()
}

fn render_chain(files: &[SourceFile], chain: &[Step]) -> String {
    chain
        .iter()
        .map(|s| format!("{} ({}:{})", s.desc, files[s.file].rel, s.line))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Renders the symbol table, call graph, and fixpoint summaries for
/// `--dump-callgraph`.
pub fn dump(files: &[SourceFile], serve: &[usize]) -> String {
    let a = analyze(files, serve);
    let mut out = String::new();
    for (fi, f) in a.fns.iter().enumerate() {
        out.push_str(&format!(
            "{}:{} `{}`/{}\n",
            files[f.file].rel,
            f.line,
            f.display(),
            f.arity
        ));
        let s = &a.summaries[fi];
        if !s.reach.is_empty() {
            let keys: Vec<&str> = s.reach.keys().map(String::as_str).collect();
            out.push_str(&format!("  locks: {}\n", keys.join(", ")));
        }
        if let Some(chain) = &s.can_block {
            out.push_str(&format!("  blocks: {}\n", render_chain(files, chain)));
        }
        let mut callees: Vec<String> = Vec::new();
        for (ci, targets) in &a.resolved[fi] {
            let c = &a.events[fi].calls[*ci];
            for &t in targets {
                let label = format!(
                    "`{}` ({}:{})",
                    a.fns[t].display(),
                    files[a.fns[t].file].rel,
                    a.fns[t].line
                );
                if !callees.contains(&label) {
                    callees.push(label);
                }
                let _ = c;
            }
        }
        if !callees.is_empty() {
            out.push_str(&format!("  calls: {}\n", callees.join(", ")));
        }
    }
    out.push_str(&format!("{} functions\n", a.fns.len()));
    out
}

fn fixpoint(
    files: &[SourceFile],
    fns: &[FnItem],
    events: &[FnEvents],
    resolved: &[Vec<(usize, Vec<usize>)>],
) -> Vec<Summary> {
    let mut sums: Vec<Summary> = fns
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let mut s = Summary::default();
            if let Some(b) = events[fi].blocks.first() {
                s.can_block = Some(vec![Step {
                    desc: format!("`{}` does {}", f.display(), b.label),
                    file: f.file,
                    line: b.line,
                }]);
            }
            for acq in &events[fi].acquires {
                if let Some(k) = acq.key.as_ref().filter(|k| *k != "?") {
                    s.reach.entry(k.clone()).or_insert_with(|| {
                        vec![Step {
                            desc: format!("`{}` acquires {k}", f.display()),
                            file: f.file,
                            line: acq.line,
                        }]
                    });
                }
            }
            s
        })
        .collect();
    // Both facts are set-once per (fn, key): monotone, so this
    // terminates once no iteration adds anything.
    loop {
        let mut changed = false;
        for fi in 0..fns.len() {
            let mut new_block: Option<Chain> = None;
            let mut new_reach: Vec<(String, Chain)> = Vec::new();
            for (ci, targets) in &resolved[fi] {
                let c = &events[fi].calls[*ci];
                for &t in targets {
                    let step = |what: &FnItem| Step {
                        desc: format!("`{}` calls `{}`", fns[fi].display(), what.display()),
                        file: fns[fi].file,
                        line: c.line,
                    };
                    if sums[fi].can_block.is_none() && new_block.is_none() {
                        if let Some(ch) = &sums[t].can_block {
                            let mut full = vec![step(&fns[t])];
                            full.extend(ch.iter().cloned());
                            new_block = Some(full);
                        }
                    }
                    for (k, ch) in &sums[t].reach {
                        if !sums[fi].reach.contains_key(k)
                            && !new_reach.iter().any(|(nk, _)| nk == k)
                        {
                            let mut full = vec![step(&fns[t])];
                            full.extend(ch.iter().cloned());
                            new_reach.push((k.clone(), full));
                        }
                    }
                }
            }
            if let Some(ch) = new_block {
                sums[fi].can_block = Some(ch);
                changed = true;
            }
            for (k, ch) in new_reach {
                sums[fi].reach.entry(k).or_insert(ch);
                changed = true;
            }
        }
        if !changed {
            let _ = files;
            return sums;
        }
    }
}

/// The event scan over one function body.
fn scan_fn(tokens: &[Token], mask: &[bool], f: &FnItem) -> FnEvents {
    let mut ev = FnEvents::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Active `let name =` / `name =` binding and the token index its
    // statement ends at, for naming the next acquisition.
    let mut pending: Option<(String, usize)> = None;
    let self_type = f.self_type.as_deref();
    let end = f.body_end.saturating_sub(1);
    let mut i = f.body_open + 1;
    while i < end {
        guards.retain(|g| g.temp_end.is_none_or(|te| i < te));
        if pending.as_ref().is_some_and(|(_, pe)| i >= *pe) {
            pending = None;
        }
        if mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        match &tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(name) => {
                scan_ident(
                    tokens,
                    i,
                    name,
                    self_type,
                    &mut guards,
                    &mut pending,
                    depth,
                    &mut ev,
                );
            }
            _ => {}
        }
        i += 1;
    }
    ev
}

#[allow(clippy::too_many_arguments)]
fn scan_ident(
    tokens: &[Token],
    i: usize,
    name: &str,
    self_type: Option<&str>,
    guards: &mut Vec<Guard>,
    pending: &mut Option<(String, usize)>,
    depth: i32,
    ev: &mut FnEvents,
) {
    let line = tokens[i].line;
    let prev_dot = is_punct(tokens, i.wrapping_sub(1), '.');
    let open = is_punct(tokens, i + 1, '(');
    let empty_args = open && is_punct(tokens, i + 2, ')');

    // `let name =` / `name =` arms the binding for the next acquisition
    // in the same statement.
    if name == "let" {
        let mut j = i + 1;
        if ident_at(tokens, j) == Some("mut") {
            j += 1;
        }
        if let Some(bind) = ident_at(tokens, j) {
            if is_punct(tokens, j + 1, '=') && !is_punct(tokens, j + 2, '=') {
                *pending = Some((bind.to_string(), statement_end(tokens, j + 2)));
            }
        }
        return;
    }
    if !prev_dot
        && is_punct(tokens, i + 1, '=')
        && !is_punct(tokens, i + 2, '=')
        && ident_at(tokens, i.wrapping_sub(1)) != Some("let")
    {
        *pending = Some((name.to_string(), statement_end(tokens, i + 2)));
        return;
    }

    // Guard acquisition, method form: `recv.lock()` / `.read()` /
    // `.write()` with empty parens.
    if prev_dot && matches!(name, "lock" | "read" | "write") && empty_args {
        let key = receiver_key(tokens, i - 1, self_type);
        acquire(tokens, i, i + 3, key, guards, pending, depth, ev);
        return;
    }
    // Guard acquisition, wrapper form: `lock_recover(&self.inner)`.
    if !prev_dot && name == "lock_recover" && open {
        let key = arg_key(tokens, i + 2, self_type);
        let after = match_paren(tokens, i + 1);
        acquire(tokens, i, after, key, guards, pending, depth, ev);
        return;
    }
    // `drop(g)` ends a named guard.
    if !prev_dot && name == "drop" && open {
        if let Some(dropped) = ident_at(tokens, i + 2) {
            if is_punct(tokens, i + 3, ')') {
                guards.retain(|g| g.binding.as_deref() != Some(dropped));
            }
        }
        return;
    }
    // `cv.wait(g)` blocks with `g` consumed (atomically released).
    if prev_dot && matches!(name, "wait" | "wait_timeout") && open {
        let mut j = i + 2;
        while is_punct(tokens, j, '&') || ident_at(tokens, j) == Some("mut") {
            j += 1;
        }
        let consumed = ident_at(tokens, j);
        ev.blocks.push(BlockEv {
            label: format!("Condvar::{name}"),
            line,
            held: held_keys(guards, consumed),
            sync_domain: false,
        });
        return;
    }
    // Blocking methods; `read`/`write` only with arguments (the empty
    // forms were consumed above), `join` only without (path `.join("x")`
    // is not a thread join).
    if prev_dot
        && open
        && (BLOCKING_METHODS.contains(&name)
            || (matches!(name, "read" | "write") && !empty_args)
            || (name == "join" && empty_args))
    {
        ev.blocks.push(BlockEv {
            label: name.to_string(),
            line,
            held: held_keys(guards, None),
            sync_domain: SYNC_FNS.contains(&name),
        });
        return;
    }
    // Bare/path-qualified blocking calls, and anything under `fs::`.
    let fs_qualified = is_punct(tokens, i.wrapping_sub(1), ':')
        && is_punct(tokens, i.wrapping_sub(2), ':')
        && ident_at(tokens, i.wrapping_sub(3)) == Some("fs");
    if !prev_dot && open && (BLOCKING_BARE.contains(&name) || fs_qualified) {
        ev.blocks.push(BlockEv {
            label: if fs_qualified {
                format!("fs::{name}")
            } else {
                name.to_string()
            },
            line,
            held: held_keys(guards, None),
            sync_domain: SYNC_FNS.contains(&name),
        });
        return;
    }
    // Everything else with parens is a call site (macros have a `!`
    // before the paren and fail the `open` check; nested `fn` items are
    // definitions, not calls).
    if open
        && !NON_INDEX_KEYWORDS.contains(&name)
        && !UBIQUITOUS_METHODS.contains(&name)
        && ident_at(tokens, i.wrapping_sub(1)) != Some("fn")
    {
        let qualifier = if !prev_dot
            && is_punct(tokens, i.wrapping_sub(1), ':')
            && is_punct(tokens, i.wrapping_sub(2), ':')
        {
            ident_at(tokens, i.wrapping_sub(3)).map(str::to_string)
        } else {
            None
        };
        ev.calls.push(CallEv {
            name: name.to_string(),
            qualifier,
            is_method: prev_dot,
            argc: count_args(tokens, i + 1),
            line,
            held: held_keys(guards, None),
        });
    }
}

/// Records an acquisition at `i` whose call expression ends at `after`,
/// decides the guard's lifetime, and pushes it.
#[allow(clippy::too_many_arguments)]
fn acquire(
    tokens: &[Token],
    i: usize,
    after: usize,
    key: Option<String>,
    guards: &mut Vec<Guard>,
    pending: &mut Option<(String, usize)>,
    depth: i32,
    ev: &mut FnEvents,
) {
    ev.acquires.push(AcquireEv {
        key: key.clone(),
        line: tokens[i].line,
        held: held_keys(guards, None),
    });
    // Skip result adapters (`.unwrap_or_else(…)` and friends); if yet
    // another method call follows, the guard is a temporary consumed by
    // that call chain and lives only to the end of the statement.
    let mut j = after;
    loop {
        if is_punct(tokens, j, '.')
            && ident_at(tokens, j + 1).is_some_and(|n| GUARD_ADAPTERS.contains(&n))
            && is_punct(tokens, j + 2, '(')
        {
            j = match_paren(tokens, j + 2);
            continue;
        }
        break;
    }
    let chained_on = is_punct(tokens, j, '.') && ident_at(tokens, j + 1).is_some();
    let binding = if chained_on {
        None
    } else {
        pending.take().map(|(n, _)| n)
    };
    let temp_end = if binding.is_some() {
        None
    } else {
        Some(statement_end(tokens, i))
    };
    guards.push(Guard {
        key,
        binding,
        depth,
        temp_end,
    });
}

/// Keys of every live guard, `?` standing in for unkeyable receivers;
/// `minus` (a consumed `Condvar::wait` guard binding) is excluded.
fn held_keys(guards: &[Guard], minus: Option<&str>) -> Vec<String> {
    guards
        .iter()
        .filter(|g| minus.is_none() || g.binding.as_deref() != minus)
        .map(|g| g.key.clone().unwrap_or_else(|| "?".to_string()))
        .collect()
}

/// The lock key of a method receiver, walking the `a.b.c` ident chain
/// backward from the `.` at `dot`. A leading `self` becomes the impl
/// type (`self.inner` in `impl Wal` → `Wal.inner`); call or index
/// results (`)`/`]`) are unkeyable → `None`.
fn receiver_key(tokens: &[Token], dot: usize, self_type: Option<&str>) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        match tokens.get(j.wrapping_sub(1)).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => {
                parts.push(s.clone());
                if is_punct(tokens, j.wrapping_sub(2), '.') && j >= 2 {
                    j -= 2;
                } else {
                    break;
                }
            }
            _ => return None,
        }
    }
    parts.reverse();
    if parts.first().map(String::as_str) == Some("self") {
        match self_type {
            Some(t) => parts[0] = t.to_string(),
            None => return None,
        }
    }
    Some(parts.join("."))
}

/// The lock key of a `lock_recover(&self.inner)`-style first argument:
/// skip `&`/`mut`, then read the forward ident chain.
fn arg_key(tokens: &[Token], start: usize, self_type: Option<&str>) -> Option<String> {
    let mut j = start;
    while is_punct(tokens, j, '&') || ident_at(tokens, j) == Some("mut") {
        j += 1;
    }
    let mut parts: Vec<String> = Vec::new();
    while let Some(s) = ident_at(tokens, j) {
        parts.push(s.to_string());
        if is_punct(tokens, j + 1, '.') && ident_at(tokens, j + 2).is_some() {
            j += 2;
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return None;
    }
    if parts.first().map(String::as_str) == Some("self") {
        match self_type {
            Some(t) => parts[0] = t.to_string(),
            None => return None,
        }
    }
    Some(parts.join("."))
}

/// Index just past the `)` matching the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Argument count of the call whose `(` is at `open`: top-level commas
/// plus one (zero for empty parens). Closures with multi-parameter
/// pipes can overcount — resolution treats arity as a preference, not
/// a requirement, for exactly this reason.
fn count_args(tokens: &[Token], open: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => {
                paren += 1;
                if paren > 1 {
                    any = true;
                }
            }
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    return if any { commas + 1 } else { 0 };
                }
                any = true;
            }
            Tok::Punct('[') => {
                bracket += 1;
                any = true;
            }
            Tok::Punct(']') => {
                bracket -= 1;
                any = true;
            }
            Tok::Punct('{') => {
                brace += 1;
                any = true;
            }
            Tok::Punct('}') => {
                brace -= 1;
                any = true;
            }
            Tok::Punct(',') if paren == 1 && bracket == 0 && brace == 0 => commas += 1,
            _ => any = true,
        }
        i += 1;
    }
    if any {
        commas + 1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn file(rel: &str, crate_name: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            file_name: rel.rsplit('/').next().unwrap_or(rel).to_string(),
            is_crate_root: false,
            is_bin_root: false,
            text: src.to_string(),
            tokens,
            mask,
        }
    }

    fn findings_of(src: &str) -> Vec<(String, u32)> {
        let files = vec![file("crates/server/src/lib.rs", "server", src)];
        interproc_findings(&files, &[0])
            .into_iter()
            .map(|(_, f)| (f.rule.to_string(), f.line))
            .collect()
    }

    #[test]
    fn direct_blocking_under_named_guard() {
        let src = "\
use std::sync::Mutex;
pub fn f(m: &Mutex<u32>, s: &std::net::TcpStream) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut s = s;
    std::io::Write::write_all(&mut s, b\"x\").ok();
    let _ = g;
}
";
        // `write_all` here is a path call, not a method — rewrite with a
        // method call to exercise the method path.
        let src2 = "\
pub fn f(m: &std::sync::Mutex<u32>, s: &mut std::net::TcpStream) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    s.write_all(b\"x\").ok();
    drop(g);
    s.write_all(b\"y\").ok();
}
";
        let _ = src;
        let got = findings_of(src2);
        assert_eq!(got, vec![("blocking-under-lock".to_string(), 3)]);
    }

    #[test]
    fn temp_guard_holds_to_statement_end() {
        let src = "\
pub fn w(rx: &std::sync::Mutex<std::sync::mpsc::Receiver<u32>>) -> Option<u32> {
    let next = {
        rx.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
    };
    next.ok()
}
";
        let got = findings_of(src);
        assert_eq!(got, vec![("blocking-under-lock".to_string(), 5)]);
    }

    #[test]
    fn transitive_blocking_and_negative_drop() {
        let src = "\
pub fn top(m: &std::sync::Mutex<u32>, f: &std::fs::File) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    mid(f);
    drop(g);
    mid(f);
}
fn mid(f: &std::fs::File) {
    bottom(f);
}
fn bottom(f: &std::fs::File) {
    let _ = f.sync_data();
}
";
        let got = findings_of(src);
        assert_eq!(got, vec![("blocking-under-lock".to_string(), 3)]);
    }

    #[test]
    fn sync_under_guard_stays_with_lock_across_sync() {
        let src = "\
pub fn f(m: &std::sync::Mutex<std::fs::File>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    g.sync_data().ok();
}
";
        assert!(findings_of(src).is_empty());
    }

    #[test]
    fn condvar_wait_releases_its_own_guard() {
        let src = "\
pub fn f(m: &std::sync::Mutex<u32>, cv: &std::sync::Condvar) {
    let mut g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    g = cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = g;
}
";
        assert!(findings_of(src).is_empty());
    }

    #[test]
    fn lock_order_cycle_with_witness() {
        let src = "\
pub fn a(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {
    let gx = x.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gy = y.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (gx, gy);
}
pub fn b(x: &std::sync::Mutex<u32>, y: &std::sync::Mutex<u32>) {
    let gy = y.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gx = x.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (gx, gy);
}
";
        let files = vec![file("crates/server/src/lib.rs", "server", src)];
        let got = interproc_findings(&files, &[0]);
        assert_eq!(got.len(), 1);
        let f = &got[0].1;
        assert_eq!(f.rule, "lock-order");
        assert_eq!(f.line, 3);
        assert!(f.excerpt.contains("x → y → x"), "{}", f.excerpt);
        assert!(
            f.excerpt.contains("`a` holds x, acquires y"),
            "{}",
            f.excerpt
        );
        assert!(
            f.excerpt.contains("`b` holds y, acquires x"),
            "{}",
            f.excerpt
        );
    }

    #[test]
    fn interprocedural_lock_order_edge() {
        let src = "\
pub struct S { inner: std::sync::Mutex<u32> }
impl S {
    pub fn outer(&self, other: &std::sync::Mutex<u32>) {
        let g = other.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.tick();
        let _ = g;
    }
    pub fn reverse(&self, other: &std::sync::Mutex<u32>) {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let h = other.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = (g, h);
    }
    fn tick(&self) {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = g;
    }
}
";
        let files = vec![file("crates/server/src/lib.rs", "server", src)];
        let got = interproc_findings(&files, &[0]);
        let rules: Vec<&str> = got.iter().map(|(_, f)| f.rule).collect();
        assert_eq!(rules, vec!["lock-order"]);
        // other → S.inner (via the call in `outer`), S.inner → other
        // (direct nesting in `reverse`).
        assert!(
            got[0].1.excerpt.contains("calls `S::tick`"),
            "{}",
            got[0].1.excerpt
        );
    }

    #[test]
    fn self_receivers_key_by_impl_type() {
        let src = "\
pub struct Wal { inner: std::sync::Mutex<u32> }
impl Wal {
    pub fn spin(&self) {
        let a = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = (a, b);
    }
}
";
        let files = vec![file("crates/server/src/lib.rs", "server", src)];
        let got = interproc_findings(&files, &[0]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.rule, "lock-order");
        assert!(
            got[0].1.excerpt.contains("Wal.inner → Wal.inner"),
            "{}",
            got[0].1.excerpt
        );
    }

    #[test]
    fn uppercase_qualifier_does_not_alias_workspace_fns() {
        let src = "\
pub struct Db;
impl Db {
    pub fn new() -> Db {
        std::thread::sleep(std::time::Duration::from_millis(1));
        Db
    }
}
pub fn f(m: &std::sync::Mutex<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let v: Vec<u32> = Vec::new();
    let _ = (g, v);
}
pub fn real(m: &std::sync::Mutex<u32>) -> Db {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let db = Db::new();
    drop(g);
    db
}
";
        let got = findings_of(src);
        // `Vec::new()` must not resolve to `Db::new` (which sleeps);
        // `Db::new()` under the guard in `real` must.
        assert_eq!(got, vec![("blocking-under-lock".to_string(), 15)]);
    }
}
