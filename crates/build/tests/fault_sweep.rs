//! The fault-sweep harness: every durability syscall site fails exactly
//! once.
//!
//! A counting run first executes a fixed durable workload through
//! [`FaultVfs::counting`], enumerating every durability-relevant
//! operation (write, fdatasync, fsync, truncate, rename, directory sync)
//! the workload performs. The sweep then replays the workload once per
//! enumerated op, injecting a failure at exactly that op — torn writes at
//! write sites, ENOSPC at sync sites, EIO elsewhere — and asserts the
//! robustness contract per injection:
//!
//! 1. every error surfaced to the caller is *typed* ([`HopiError::Persist`]
//!    or [`HopiError::Degraded`]), never a panic;
//! 2. after a failed mutation the engine still serves reads;
//! 3. reopening the directory with the real filesystem recovers, and
//!    every *acknowledged* mutation is present — verified structurally
//!    and against a transitive-closure oracle over the recovered graph.

use hopi_build::{
    DurableConfig, FaultKind, FaultOpKind, FaultVfs, Hopi, HopiError, OnlineHopi, SyncPolicy,
};
use hopi_graph::TransitiveClosure;
use hopi_xml::{Collection, XmlDocument};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hopi_fault_sweep_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two documents with a couple of elements each.
fn bootstrap() -> Collection {
    let mut c = Collection::new();
    for name in ["seed-a", "seed-b"] {
        let mut d = XmlDocument::new(name, "r");
        d.add_element(0, "s");
        c.add_document(d);
    }
    c
}

/// What the workload managed to get acknowledged before/despite the
/// injected fault.
#[derive(Debug, Default)]
struct Acked {
    /// Links whose insert was acknowledged.
    links: Vec<(u32, u32)>,
    /// Whether the (single) link delete was attempted, and whether it
    /// was acknowledged.
    delete_attempted: bool,
    delete_acked: bool,
    /// Document names whose insert was acknowledged.
    docs: Vec<String>,
}

/// Asserts a mutation error is one of the two typed shapes the engine is
/// allowed to surface under I/O failure.
fn assert_typed(e: &HopiError) {
    assert!(
        matches!(e, HopiError::Persist(_) | HopiError::Degraded(_)),
        "injected fault must surface as Persist or Degraded, got: {e}"
    );
}

/// Asserts the engine still answers reads (snapshot queries and probes)
/// after a write-path failure.
fn assert_reads_serve(online: &OnlineHopi) {
    online.read(|h| {
        let n = h.collection().elem_id_bound() as u32;
        for u in 0..n.min(4) {
            let _ = h.connected(u, u);
        }
        h.query("//r//s").expect("reads must survive a write fault");
    });
}

/// The fixed durable workload the sweep injects into: bootstrap, two
/// link mutations, two document inserts, and two checkpoints — together
/// they exercise every WAL append/sync path, the atomic checkpoint
/// write, and the log rotation.
///
/// Returns the acknowledged-mutation record, or the typed error when the
/// engine could not even be opened (fault during bootstrap).
fn run_workload(vfs: Arc<dyn hopi_build::Vfs>, dir: &Path) -> Result<Acked, HopiError> {
    let config = DurableConfig::new(dir).policy(SyncPolicy::PerOp).vfs(vfs);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap()))?;
    let mut acked = Acked::default();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });

    match online.insert_link(a, b) {
        Ok(_) => acked.links.push((a, b)),
        Err(e) => {
            assert_typed(&e);
            assert_reads_serve(&online);
        }
    }
    match online.insert_xml("w1", r#"<r><cite xlink:href="seed-a"/></r>"#) {
        Ok(_) => acked.docs.push("w1".into()),
        Err(e) => {
            assert_typed(&e);
            assert_reads_serve(&online);
        }
    }
    if let Err(e) = online.checkpoint() {
        assert_typed(&e);
        assert_reads_serve(&online);
    }
    match online.insert_xml("w2", "<r><s/></r>") {
        Ok(_) => acked.docs.push("w2".into()),
        Err(e) => {
            assert_typed(&e);
            assert_reads_serve(&online);
        }
    }
    // Only delete a link whose insert was acknowledged; deleting an
    // unacked link is a semantic error, not a durability probe.
    if acked.links.contains(&(a, b)) {
        acked.delete_attempted = true;
        match online.delete_link(a, b) {
            Ok(_) => acked.delete_acked = true,
            Err(e) => {
                assert_typed(&e);
                assert_reads_serve(&online);
            }
        }
    }
    if let Err(e) = online.checkpoint() {
        assert_typed(&e);
        assert_reads_serve(&online);
    }
    Ok(acked)
}

/// Post-recovery contract: every acked mutation present, and the index
/// answers exactly like a BFS/closure oracle over the recovered graph.
fn assert_recovered(recovered: &Hopi, acked: &Acked) {
    let c = recovered.collection();
    for name in &acked.docs {
        assert!(
            c.doc_ids()
                .any(|d| c.document(d).is_some_and(|doc| doc.name == *name)),
            "acked document '{name}' lost in recovery"
        );
    }
    for &(from, to) in &acked.links {
        if acked.delete_acked {
            assert!(
                !c.has_link(from, to),
                "acked delete of {from} → {to} lost in recovery"
            );
        } else if !acked.delete_attempted {
            assert!(
                c.has_link(from, to),
                "acked link {from} → {to} lost in recovery"
            );
        }
        // Delete attempted but errored: the link may legitimately be in
        // either state (the record may or may not have become durable).
    }
    // Index exactness: recovered 2-hop answers == closure oracle.
    let g = c.element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    let n = g.id_bound() as u32;
    for u in (0..n).filter(|&u| g.is_alive(u)) {
        for v in (0..n).filter(|&v| g.is_alive(v)) {
            assert_eq!(
                recovered.connected(u, v),
                tc.contains(u, v),
                "recovered index diverges from the closure oracle on ({u},{v})"
            );
        }
    }
}

/// The fault kind chosen per op class: the most adversarial shape each
/// site can encounter.
fn kind_for(op: FaultOpKind) -> FaultKind {
    match op {
        FaultOpKind::Write => FaultKind::Torn,
        FaultOpKind::SyncData | FaultOpKind::SyncAll => FaultKind::Enospc,
        FaultOpKind::SetLen | FaultOpKind::Rename | FaultOpKind::DirSync => FaultKind::Eio,
    }
}

#[test]
fn every_fault_point_fails_once_and_acked_writes_survive() {
    // Enumeration run: no faults, the journal lists every fault point.
    let dir = tempdir("enumerate");
    let counting = FaultVfs::counting();
    let acked =
        run_workload(Arc::new(counting.clone()), &dir).expect("fault-free workload must succeed");
    assert_eq!(acked.docs, vec!["w1".to_string(), "w2".to_string()]);
    assert!(acked.delete_acked);
    let ops = counting.ops();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        ops.len() >= 15,
        "expected a rich op surface (WAL appends, syncs, checkpoint \
         writes, renames, dir syncs), got {} ops",
        ops.len()
    );
    // The workload must traverse every op class the VFS counts.
    for class in [
        FaultOpKind::Write,
        FaultOpKind::SyncData,
        FaultOpKind::SyncAll,
        FaultOpKind::Rename,
        FaultOpKind::DirSync,
    ] {
        assert!(
            ops.iter().any(|o| o.op == class),
            "workload never exercises {class}; the sweep would miss that \
             syscall site"
        );
    }

    // The sweep: fail each enumerated op exactly once.
    for op in &ops {
        let dir = tempdir(&format!("inject_{}", op.index));
        let fault = FaultVfs::failing(op.index, kind_for(op.op));
        let outcome = run_workload(Arc::new(fault.clone()), &dir);
        assert!(
            fault.fired(),
            "op {} ({} on {}) never executed under injection — the \
             workload diverged from the enumeration",
            op.index,
            op.op,
            op.path.display()
        );
        match outcome {
            Ok(acked) => {
                // The engine survived the fault in-process. Its directory
                // must recover on the real filesystem with every acked
                // write intact.
                let recovered = Hopi::recover(&dir).unwrap_or_else(|e| {
                    panic!(
                        "recovery failed after injected {} on {} (op {}): {e}",
                        op.op,
                        op.path.display(),
                        op.index
                    )
                });
                assert_recovered(&recovered, &acked);
            }
            Err(e) => {
                // The fault hit during bootstrap: nothing was ever
                // acknowledged, so the only contract is a typed error.
                assert_typed(&e);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn wal_poisoning_degrades_writes_until_checkpoint_heals() {
    let dir = tempdir("degrade");
    // Enumerate just far enough to find the first WAL append after boot.
    let counting = FaultVfs::counting();
    {
        let config = DurableConfig::new(&dir)
            .policy(SyncPolicy::PerOp)
            .vfs(Arc::new(counting.clone()));
        let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
        drop(online);
    }
    let boot_ops = counting.op_count();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Fail the first post-boot durability op: the WAL append of the
    // first mutation.
    let fault = FaultVfs::failing(boot_ops + 1, FaultKind::Eio);
    let config = DurableConfig::new(&dir)
        .policy(SyncPolicy::PerOp)
        .vfs(Arc::new(fault.clone()));
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });

    // The poisoning write: a typed Persist error.
    let err = online.insert_link(a, b).unwrap_err();
    assert_typed(&err);
    assert!(fault.fired());
    assert!(!online.wal_stats().unwrap().healthy, "WAL must be poisoned");

    // Degraded mode: further writes are refused with Degraded — even
    // though the disk has healed — while reads keep serving.
    let err = online.insert_xml("refused", "<r/>").unwrap_err();
    assert!(
        matches!(err, HopiError::Degraded(_)),
        "poisoned WAL must refuse writes with Degraded, got: {err}"
    );
    assert_reads_serve(&online);

    // A successful checkpoint re-establishes the durable baseline.
    online
        .checkpoint()
        .expect("healed disk checkpoints cleanly");
    assert!(online.wal_stats().unwrap().healthy);
    online
        .insert_link(a, b)
        .expect("writes resume after checkpoint");
    let expected = online.read(|h| h.clone());
    drop(online);

    // And the post-heal ack survives recovery.
    let recovered = Hopi::recover(&dir).unwrap();
    assert!(recovered.collection().has_link(a, b));
    assert_eq!(
        recovered.collection().doc_id_bound(),
        expected.collection().doc_id_bound()
    );
    std::fs::remove_dir_all(&dir).ok();
}
