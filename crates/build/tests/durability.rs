//! Durability integration tests: WAL + checkpoint recovery on the engine
//! facade, including the torn-tail property test — a crash may cut the
//! log at *any* byte, and recovery must come back as exactly some prefix
//! of the applied mutations, verified against a closure oracle.

use hopi_build::{DurableConfig, Hopi, HopiError, OnlineHopi, SyncPolicy};
use hopi_graph::TransitiveClosure;
use hopi_maintenance::DocumentLinks;
use hopi_store::{Wal, WalRecord};
use hopi_xml::{Collection, XmlDocument};
use proptest::prelude::*;
use std::path::PathBuf;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hopi_durability_{name}_{}_{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Two documents with a couple of elements each.
fn bootstrap() -> Collection {
    let mut c = Collection::new();
    for name in ["seed-a", "seed-b"] {
        let mut d = XmlDocument::new(name, "r");
        d.add_element(0, "s");
        c.add_document(d);
    }
    c
}

/// Asserts `recovered` matches `expected` structurally and that its index
/// answers exactly like a BFS/closure oracle over its element graph.
fn assert_state_eq(recovered: &Hopi, expected: &Hopi) {
    let (rc, ec) = (recovered.collection(), expected.collection());
    assert_eq!(rc.doc_id_bound(), ec.doc_id_bound());
    assert_eq!(rc.elem_id_bound(), ec.elem_id_bound());
    let sorted = |c: &Collection| {
        let mut l: Vec<(u32, u32)> = c.links().iter().map(|l| (l.from, l.to)).collect();
        l.sort_unstable();
        l
    };
    assert_eq!(sorted(rc), sorted(ec));
    for d in ec.doc_ids() {
        assert_eq!(rc.document(d), ec.document(d), "doc {d}");
    }
    let g = rc.element_graph();
    let tc = TransitiveClosure::from_graph(&g);
    let n = g.id_bound() as u32;
    for u in (0..n).filter(|&u| g.is_alive(u)) {
        for v in (0..n).filter(|&v| g.is_alive(v)) {
            assert_eq!(
                recovered.connected(u, v),
                tc.contains(u, v),
                "recovered index diverges from the closure oracle on ({u},{v})"
            );
        }
    }
}

#[test]
fn acked_mutations_survive_without_checkpoint() {
    let dir = tempdir("no_ckpt");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });
    online.insert_link(a, b).unwrap();
    let d = online
        .insert_xml("fresh", r#"<r><cite xlink:href="seed-a"/></r>"#)
        .unwrap();
    online
        .modify_document(
            1,
            XmlDocument::new("seed-b2", "r"),
            &DocumentLinks::default(),
        )
        .unwrap();
    let expected = online.read(|h| h.clone());
    drop(online); // a kill -9 equivalent for in-memory state: no checkpoint ran

    let recovered = Hopi::recover(&dir).unwrap();
    assert_state_eq(&recovered, &expected);
    // The replayed document is queryable and linked.
    let root = recovered.collection().global_id(d, 0);
    assert!(recovered.connected(root, recovered.collection().global_id(0, 0)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncates_wal_and_recovery_combines_both() {
    let dir = tempdir("ckpt");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });
    online.insert_link(a, b).unwrap();
    let before = online.wal_stats().unwrap();
    assert_eq!(before.records_since_checkpoint, 1);
    assert_eq!(before.durable_seq, 1, "ack implies fsync");

    let ck = online.checkpoint().unwrap();
    assert_eq!(ck.seq, 1);
    assert!(ck.wal_bytes_truncated > 0);
    let after = online.wal_stats().unwrap();
    assert_eq!(after.records_since_checkpoint, 0);
    assert_eq!(after.last_checkpoint_seq, 1);

    // Post-checkpoint mutations land in the (rotated) WAL tail.
    online.delete_link(a, b).unwrap();
    online.insert_xml("tail-doc", "<r><p/></r>").unwrap();
    let expected = online.read(|h| h.clone());
    drop(online);

    let recovered = Hopi::recover(&dir).unwrap();
    assert_state_eq(&recovered, &expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_checkpoint_and_rotation_does_not_double_apply() {
    let dir = tempdir("rotation_crash");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });
    online.insert_link(a, b).unwrap();
    online.insert_xml("doc-x", "<r/>").unwrap();
    // Simulate the crash window: the checkpoint file becomes durable but
    // the WAL rotation never happens — restore the pre-rotation log.
    let wal_path = dir.join(hopi_build::WAL_FILE);
    let pre_rotation_wal = std::fs::read(&wal_path).unwrap();
    online.checkpoint().unwrap();
    let expected = online.read(|h| h.clone());
    drop(online);
    std::fs::write(&wal_path, &pre_rotation_wal).unwrap();

    // Recovery must skip the records the checkpoint already covers
    // (replaying the InsertDocument would mint a duplicate document).
    let recovered = Hopi::recover(&dir).unwrap();
    assert_state_eq(&recovered, &expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn update_batch_checkpoints_in_durable_mode() {
    let dir = tempdir("batch");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    online
        .update_batch(|h| {
            h.insert_xml("bulk-1", "<r><s/></r>").unwrap();
            h.insert_xml("bulk-2", r#"<r><cite xlink:href="bulk-1"/></r>"#)
                .unwrap();
        })
        .expect("durable batch checkpoints cleanly");
    let stats = online.wal_stats().unwrap();
    assert_eq!(
        stats.records_since_checkpoint, 0,
        "a durable batch is captured by a checkpoint"
    );
    let expected = online.read(|h| h.clone());
    drop(online);
    let recovered = Hopi::recover(&dir).unwrap();
    assert_state_eq(&recovered, &expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_group_committed_acks_all_survive() {
    let dir = tempdir("group");
    let config = DurableConfig::new(&dir).policy(SyncPolicy::GroupCommit);
    // Enough single-element documents for distinct cross links.
    let mut c = Collection::new();
    for i in 0..32 {
        c.add_document(XmlDocument::new(format!("d{i}"), "r"));
    }
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(c)).unwrap();
    let acked: Vec<(u32, u32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let online = online.clone();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..6u32 {
                        let from = (t * 6 + i) % 32;
                        let to = (from + 7 + t) % 32;
                        if from != to && online.insert_link(from, to).is_ok() {
                            mine.push((from, to));
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert!(!acked.is_empty());
    drop(online);
    let recovered = Hopi::recover(&dir).unwrap();
    for (from, to) in acked {
        assert!(
            recovered.collection().has_link(from, to),
            "acked link {from} → {to} lost"
        );
        assert!(recovered.connected(from, to));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_only_restore_keeps_new_acks_recoverable() {
    // An operator restores only checkpoint.hopi from backup (no wal.log).
    // The recreated log must start at the checkpoint's sequence — a base
    // of 0 would make the *next* recovery skip fresh records as "already
    // inside the checkpoint" and silently drop acknowledged mutations.
    let dir = tempdir("ckpt_only");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    let (a, b) = online.read(|h| {
        (
            h.collection().global_id(0, 1),
            h.collection().global_id(1, 0),
        )
    });
    online.insert_link(a, b).unwrap();
    online.checkpoint().unwrap(); // checkpoint seq 1
    drop(online);
    std::fs::remove_file(dir.join(hopi_build::WAL_FILE)).unwrap();

    let online = OnlineHopi::open_durable(&config, Hopi::builder(), None).unwrap();
    assert_eq!(online.wal_stats().unwrap().last_checkpoint_seq, 1);
    online.insert_xml("post-restore", "<r/>").unwrap();
    assert_eq!(online.wal_stats().unwrap().records_since_checkpoint, 1);
    let expected = online.read(|h| h.clone());
    drop(online);

    let recovered = Hopi::recover(&dir).unwrap();
    assert_state_eq(&recovered, &expected);
    assert!(
        recovered.collection().doc_ids().any(|d| recovered
            .collection()
            .document(d)
            .is_some_and(|doc| doc.name == "post-restore")),
        "acked post-restore insert must survive"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_open_is_refused_while_lock_held_and_released_on_drop() {
    let dir = tempdir("dirlock");
    let config = DurableConfig::new(&dir);
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
    // A second engine on the same directory would share the WAL — one
    // side's rotation would strand the other's acked writes. Refused.
    assert!(OnlineHopi::open_durable(&config, Hopi::builder(), None).is_err());
    assert!(Hopi::recover(&dir).is_err());
    drop(online); // dropping the engine releases the flock
                  // The lock file persisting is irrelevant — only the held OS lock
                  // matters, and the kernel drops it with the process (kill -9
                  // included), so a leftover file never blocks a restart.
    assert!(dir.join(hopi_build::LOCK_FILE).exists());
    let online = OnlineHopi::open_durable(&config, Hopi::builder(), None).unwrap();
    assert!(online.is_durable());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_refuses_wal_without_checkpoint() {
    let dir = tempdir("orphan_wal");
    std::fs::write(dir.join(hopi_build::WAL_FILE), b"HOPW").unwrap();
    assert!(matches!(
        Hopi::recover(&dir),
        Err(HopiError::Persist(_)) | Err(HopiError::Xml(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Torn-tail property test.
// ---------------------------------------------------------------------

/// Applies one WAL record to a plain engine — the oracle replay used to
/// compute "the state after exactly k durable mutations".
fn apply_record_oracle(h: &mut Hopi, rec: WalRecord) {
    match rec {
        WalRecord::InsertLink { from, to } => {
            h.insert_link(from, to).unwrap();
        }
        WalRecord::DeleteLink { from, to } => {
            h.delete_link(from, to).unwrap();
        }
        WalRecord::InsertDocument {
            doc,
            outgoing,
            incoming,
        } => {
            h.insert_document(doc, &DocumentLinks { outgoing, incoming })
                .unwrap();
        }
        WalRecord::DeleteDocument { doc } => {
            h.delete_document(doc).unwrap();
        }
        WalRecord::ModifyDocument {
            doc,
            new_doc,
            outgoing,
            incoming,
        } => {
            h.modify_document(doc, new_doc, &DocumentLinks { outgoing, incoming })
                .unwrap();
        }
    }
}

/// Interprets one fuzzed op against the durable engine; invalid picks
/// simply fail and append nothing, which is part of the contract.
fn apply_fuzzed_op(online: &OnlineHopi, kind: u8, a: u32, b: u32, fresh_names: &mut u32) {
    let docs: Vec<u32> = online.read(|h| h.collection().doc_ids().collect());
    match kind % 5 {
        0 => {
            *fresh_names += 1;
            let _ = online.insert_xml(&format!("fuzz-{fresh_names}"), "<r><s/></r>");
        }
        1 => {
            if docs.len() >= 2 {
                let (da, db) = (docs[a as usize % docs.len()], docs[b as usize % docs.len()]);
                if da != db {
                    let (f, t) = online.read(|h| {
                        (
                            h.collection().global_id(da, 0),
                            h.collection().global_id(db, 0),
                        )
                    });
                    let _ = online.insert_link(f, t);
                }
            }
        }
        2 => {
            let links: Vec<(u32, u32)> = online.read(|h| {
                h.collection()
                    .links()
                    .iter()
                    .map(|l| (l.from, l.to))
                    .collect()
            });
            if !links.is_empty() {
                let (f, t) = links[a as usize % links.len()];
                let _ = online.delete_link(f, t);
            }
        }
        3 => {
            if docs.len() > 2 {
                let _ = online.delete_document(docs[a as usize % docs.len()]);
            }
        }
        _ => {
            if !docs.is_empty() {
                *fresh_names += 1;
                let mut doc = XmlDocument::new(format!("mod-{fresh_names}"), "r");
                doc.add_element(0, "s");
                let _ = online.modify_document(
                    docs[a as usize % docs.len()],
                    doc,
                    &DocumentLinks::default(),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Run a random mutation sequence through the WAL, cut the log at an
    /// arbitrary byte, recover, and check the result equals the state
    /// after exactly the mutations whose records survived the cut — and
    /// that its index matches the closure oracle.
    #[test]
    fn torn_tail_recovers_exact_prefix(
        ops in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 1..10),
        cut_frac in 0u32..1000,
    ) {
        let dir = tempdir("torn");
        let config = DurableConfig::new(&dir).policy(SyncPolicy::Never);
        let online = OnlineHopi::open_durable(&config, Hopi::builder(), Some(bootstrap())).unwrap();
        let mut fresh_names = 0u32;
        for &(kind, a, b) in &ops {
            apply_fuzzed_op(&online, kind, a, b, &mut fresh_names);
        }
        drop(online);

        let wal_path = dir.join(hopi_build::WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let (_, all_records) = Wal::open(&wal_path).unwrap();

        // Frame boundaries → how many records survive a cut at byte `cut`.
        let mut boundaries = vec![16usize];
        let mut pos = 16usize;
        while pos + 8 <= full.len() {
            let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 8 + len;
            boundaries.push(pos);
        }
        let cut = 16 + (cut_frac as usize * (full.len() - 16)) / 1000;
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let surviving = boundaries.iter().filter(|&&bnd| bnd <= cut).count() - 1;

        let recovered = Hopi::recover(&dir).unwrap();

        // Oracle: bootstrap + exactly the surviving records.
        let mut oracle = Hopi::build(bootstrap()).unwrap();
        for (_, rec) in all_records.into_iter().take(surviving) {
            apply_record_oracle(&mut oracle, rec);
        }
        let rc = recovered.collection();
        let oc = oracle.collection();
        prop_assert_eq!(rc.doc_id_bound(), oc.doc_id_bound());
        prop_assert_eq!(rc.elem_id_bound(), oc.elem_id_bound());
        let sorted = |c: &Collection| {
            let mut l: Vec<(u32, u32)> = c.links().iter().map(|l| (l.from, l.to)).collect();
            l.sort_unstable();
            l
        };
        prop_assert_eq!(sorted(rc), sorted(oc));
        // Index exactness against the closure oracle.
        let g = rc.element_graph();
        let tc = TransitiveClosure::from_graph(&g);
        let n = g.id_bound() as u32;
        for u in (0..n).filter(|&u| g.is_alive(u)) {
            for v in (0..n).filter(|&v| g.is_alive(v)) {
                prop_assert_eq!(recovered.connected(u, v), tc.contains(u, v));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
