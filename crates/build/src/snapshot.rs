//! [`HopiSnapshot`]: an immutable, self-contained serving view of a
//! [`Hopi`](crate::Hopi) engine.
//!
//! The paper's 24×7 scenario (§1.1) is read-dominated: millions of probes
//! against an index that changes comparatively rarely. A snapshot packages
//! everything query evaluation needs — the cover frozen into CSR form
//! ([`hopi_core::FrozenCover`]), the tag index, and the collection metadata
//! — behind an `Arc`, so any number of reader threads share one immutable
//! structure with **no lock held during query evaluation**.
//! [`crate::OnlineHopi`] swaps a fresh snapshot in after each mutation
//! batch or background rebuild (epoch style): in-flight readers keep the
//! epoch they started with, new readers pick up the new one.

use crate::error::HopiError;
use crate::facade::QueryOptions;
use hopi_core::{DistanceCover, FrozenCover};
use hopi_obs::Stopwatch;
use hopi_partition::BuildReport;
use hopi_query::{
    evaluate_ranked_with_text, parse_path, PlanCounters, PlanCounts, QueryPlanReport, RankedMatch,
    TagIndex,
};
use hopi_text::{FrozenTextIndex, TextSource};
use hopi_xml::{Collection, ElemId};
use std::sync::Arc;

/// Wall-clock milliseconds of each phase that produced the snapshot's
/// index: the paper's §4 partition → per-partition covers → cover join
/// pipeline, plus the CSR freeze performed at capture time. Rebuilds
/// (`POST /admin/rebuild`) refresh these; `/stats` exposes them so the
/// cost balance between phases is observable in production, not just in
/// the bench harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildPhaseTimings {
    /// Partitioning the collection graph (§4.3 partitioner).
    pub partition_ms: u64,
    /// Building per-partition covers (§3.3).
    pub covers_ms: u64,
    /// Joining covers across partitions (§4.1).
    pub join_ms: u64,
    /// Freezing the cover into serving CSR form at capture.
    pub freeze_ms: u64,
    /// Build total (partition + covers + join) plus the freeze.
    pub total_ms: u64,
}

impl BuildPhaseTimings {
    pub(crate) fn from_report(report: &BuildReport, freeze_ms: u64) -> Self {
        BuildPhaseTimings {
            partition_ms: report.partition_ms,
            covers_ms: report.covers_ms,
            join_ms: report.join_ms,
            freeze_ms,
            total_ms: report.total_ms + freeze_ms,
        }
    }
}

/// A point-in-time summary of a serving snapshot (see
/// [`HopiSnapshot::stats`] / [`crate::OnlineHopi::snapshot_stats`]): the
/// epoch it was published at plus the sizes a monitoring endpoint wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotStats {
    /// The serving epoch this snapshot was published at. Epochs are
    /// assigned by [`crate::OnlineHopi`] and strictly increase with every
    /// published snapshot; direct [`crate::Hopi::snapshot`] captures are
    /// epoch 0.
    pub epoch: u64,
    /// Live documents at capture time.
    pub documents: usize,
    /// Live elements at capture time.
    pub elements: usize,
    /// Inter-document links at capture time.
    pub links: usize,
    /// Nodes covered by the frozen cover (element-id bound).
    pub nodes: usize,
    /// Cover size `|L|` of the frozen cover.
    pub cover_entries: usize,
    /// Whether the snapshot answers [`HopiSnapshot::distance`] /
    /// [`HopiSnapshot::query_ranked`].
    pub distance_aware: bool,
    /// Per-strategy `//`-step execution totals of the engine this snapshot
    /// was captured from (shared counters: queries against *any* snapshot
    /// of the engine tally here, so `/stats` scrapes see plan choices
    /// move).
    pub plan: PlanCounts,
    /// Distinct terms in the frozen term index.
    pub text_vocabulary: usize,
    /// Postings (term, element) entries in the frozen term index.
    pub text_postings: usize,
    /// Bytes of the frozen posting buffers (ids + frequencies).
    pub text_postings_bytes: usize,
    /// Elements carrying text at capture time.
    pub text_indexed_elements: usize,
    /// Per-phase wall times of the build that produced this snapshot's
    /// index (partition / covers / join / freeze).
    pub build: BuildPhaseTimings,
}

/// A point-in-time, immutable serving view of an engine: frozen cover +
/// tag index + collection. Obtained from [`crate::Hopi::snapshot`] (or
/// continuously refreshed by [`crate::OnlineHopi`]).
///
/// ```
/// use hopi_build::Hopi;
///
/// let hopi = Hopi::builder().parse([
///     ("a", r#"<r><cite xlink:href="b"/></r>"#),
///     ("b", "<r><sec/></r>"),
/// ])?;
/// let snap = hopi.snapshot();
///
/// // Same answers as the live engine, from flat CSR arrays.
/// let a = snap.resolve("a", "")?;
/// assert_eq!(snap.query("//r//sec")?, hopi.query("//r//sec")?);
/// assert!(snap.connected(a, snap.query("//sec")?[0]));
/// # Ok::<(), hopi_build::HopiError>(())
/// ```
#[derive(Clone, Debug)]
pub struct HopiSnapshot {
    collection: Collection,
    frozen: FrozenCover,
    /// Distance-annotated frozen cover, when the engine is distance-aware.
    frozen_distance: Option<FrozenCover>,
    /// The mutable-form distance cover, kept for ranked evaluation.
    ranked: Option<DistanceCover>,
    tags: TagIndex,
    /// Frozen term-level inverted index behind an `Arc`, swapped in with
    /// each published epoch (content predicates consult it).
    text: Arc<FrozenTextIndex>,
    options: QueryOptions,
    /// The serving epoch this snapshot was published at (see
    /// [`SnapshotStats::epoch`]).
    epoch: u64,
    /// Engine-shared per-strategy execution counters (every query against
    /// this snapshot tallies its `//`-step plans here).
    plan_counters: Arc<PlanCounters>,
    /// Phase timings of the build behind this snapshot (see
    /// [`BuildPhaseTimings`]).
    build: BuildPhaseTimings,
}

impl HopiSnapshot {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        collection: &Collection,
        cover: &hopi_core::TwoHopCover,
        distance: Option<&DistanceCover>,
        tags: &TagIndex,
        text: Arc<FrozenTextIndex>,
        options: QueryOptions,
        epoch: u64,
        plan_counters: Arc<PlanCounters>,
        report: &BuildReport,
    ) -> Self {
        // The freeze is itself a build phase worth watching: CSR packing
        // is linear but runs on every publish.
        let sw = Stopwatch::start();
        let frozen = FrozenCover::from_cover(cover);
        let frozen_distance = distance.map(FrozenCover::from_distance_cover);
        let freeze_ms = sw.elapsed().as_millis() as u64;
        HopiSnapshot {
            collection: collection.clone(),
            frozen,
            frozen_distance,
            ranked: distance.cloned(),
            tags: tags.clone(),
            text,
            options,
            epoch,
            plan_counters,
            build: BuildPhaseTimings::from_report(report, freeze_ms),
        }
    }

    /// The connection test `u →* v` (reflexive), allocation-free.
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.frozen.connected(u, v)
    }

    /// Batched connection probes (§3.4-style join kernel): `out[i]` answers
    /// `pairs[i]`, reusing the caller's buffer across batches.
    pub fn connected_many(&self, pairs: &[(ElemId, ElemId)], out: &mut Vec<bool>) {
        self.frozen.connected_many(pairs, out);
    }

    /// Shortest link distance `u →* v` (`None` = unreachable). Needs a
    /// snapshot of a distance-aware engine.
    pub fn distance(&self, u: ElemId, v: ElemId) -> Result<Option<u32>, HopiError> {
        let frozen = self
            .frozen_distance
            .as_ref()
            .ok_or(HopiError::DistanceDisabled)?;
        Ok(frozen.distance(u, v))
    }

    /// Everything `u` reaches (descendants-or-self), sorted.
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.frozen.descendants(u)
    }

    /// Everything reaching `u` (ancestors-or-self), sorted.
    pub fn ancestors(&self, u: ElemId) -> Vec<ElemId> {
        self.frozen.ancestors(u)
    }

    /// Evaluates a path expression against the frozen cover. Same answers
    /// as [`crate::Hopi::query`] on the engine the snapshot was taken
    /// from. Runs on the calling thread's reusable evaluator, so
    /// steady-state serving evaluates `//` steps without allocating; the
    /// planner's strategy choices are tallied into the engine-shared plan
    /// counters.
    pub fn query(&self, expr: &str) -> Result<Vec<ElemId>, HopiError> {
        crate::facade::run_query(
            &self.collection,
            &self.frozen,
            &self.tags,
            &self.options,
            &self.plan_counters,
            Some(self.text.as_ref()),
            expr,
        )
    }

    /// Like [`HopiSnapshot::query`], but also returns the EXPLAIN-style
    /// per-step plan report.
    pub fn query_explained(&self, expr: &str) -> Result<(Vec<ElemId>, QueryPlanReport), HopiError> {
        crate::facade::run_query_explained(
            &self.collection,
            &self.frozen,
            &self.tags,
            &self.options,
            &self.plan_counters,
            Some(self.text.as_ref()),
            expr,
        )
    }

    /// Distance-ranked path evaluation (paper §5.1), with BM25 content
    /// fusion from the final step's predicate. Needs a snapshot of a
    /// distance-aware engine.
    pub fn query_ranked(&self, expr: &str) -> Result<Vec<RankedMatch>, HopiError> {
        let cover = self.ranked.as_ref().ok_or(HopiError::DistanceDisabled)?;
        let parsed = parse_path(expr)?;
        let mut matches = evaluate_ranked_with_text(
            &self.collection,
            cover,
            &self.tags,
            &parsed,
            Some(self.text.as_ref()),
        );
        if let Some(k) = self.options.top_k {
            matches.truncate(k);
        }
        Ok(matches)
    }

    /// Resolves a `docname` / `docname#anchor` reference to an element id.
    pub fn resolve(&self, doc: &str, anchor: &str) -> Result<ElemId, HopiError> {
        self.collection
            .resolve_ref(doc, anchor)
            .ok_or_else(|| HopiError::UnresolvedRef {
                doc: doc.to_string(),
                anchor: anchor.to_string(),
            })
    }

    /// The snapshotted collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The frozen cover (expert escape hatch — e.g. for
    /// [`hopi_store::save_frozen`] or custom probe loops).
    pub fn frozen(&self) -> &FrozenCover {
        &self.frozen
    }

    /// The distance-annotated frozen cover, when distance-aware.
    pub fn frozen_distance(&self) -> Option<&FrozenCover> {
        self.frozen_distance.as_ref()
    }

    /// The snapshotted tag index.
    pub fn tags(&self) -> &TagIndex {
        &self.tags
    }

    /// The frozen term-level inverted index (shared across snapshot
    /// epochs; expert escape hatch).
    pub fn text(&self) -> &Arc<FrozenTextIndex> {
        &self.text
    }

    /// Cover size `|L|` of the frozen cover (matches the engine's
    /// [`crate::Stats::cover_entries`] at capture time).
    pub fn cover_entries(&self) -> usize {
        self.frozen.size()
    }

    /// The serving epoch this snapshot was published at.
    /// [`crate::OnlineHopi`] assigns strictly increasing epochs with every
    /// published snapshot; direct [`crate::Hopi::snapshot`] captures are
    /// epoch 0.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary of this snapshot for observability endpoints.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epoch: self.epoch,
            documents: self.collection.doc_count(),
            elements: self.collection.element_count(),
            links: self.collection.links().len(),
            nodes: self.frozen.num_nodes(),
            cover_entries: self.frozen.size(),
            distance_aware: self.frozen_distance.is_some(),
            plan: self.plan_counters.counts(),
            text_vocabulary: self.text.vocab_len(),
            text_postings: self.text.stats().postings,
            text_postings_bytes: self.text.postings_bytes(),
            text_indexed_elements: self.text.indexed_elements(),
            build: self.build,
        }
    }

    /// The query tunables captured with the snapshot.
    pub fn query_options(&self) -> &QueryOptions {
        &self.options
    }
}
