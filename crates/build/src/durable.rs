//! Durable operation: checkpoints + write-ahead log for the serving
//! engine.
//!
//! The paper's §1.1 index runs 24×7 and absorbs updates without
//! interrupting query service — which also means a crash must not lose
//! mutations the service acknowledged. This module supplies the
//! machinery [`crate::OnlineHopi`] uses in durable mode:
//!
//! * every mutation is appended to a [`Wal`] (as a
//!   [`hopi_store::WalRecord`], the persisted twin of
//!   `hopi_maintenance::CollectionUpdate`) **while the engine write lock
//!   is held**, so log order always equals apply order, and is
//!   acknowledged only after the record is fsynced — by default through
//!   the WAL's *group commit*, where one fsync covers every record queued
//!   behind it;
//! * a **checkpoint** atomically persists collection + frozen cover +
//!   the covered WAL sequence number in one file
//!   ([`hopi_store::save_checkpoint`]) and rotates the log;
//! * **recovery** ([`recover_dir`]) loads the last checkpoint and
//!   replays the WAL tail past it, tolerating a torn final record (the
//!   WAL truncates it — such a record was never durable, hence never
//!   acknowledged).
//!
//! Crash-ordering argument: a mutation is acknowledged only after its
//! record is durable, records are applied at recovery in log order, and
//! the checkpoint file names the exact sequence number its state covers
//! (so a crash *between* checkpoint rename and log rotation merely
//! replays records the checkpoint already contains — replay skips them
//! by sequence number). At every instant the directory holds a complete
//! old state or a complete new state.

use crate::error::HopiError;
use crate::facade::{Hopi, HopiBuilder};
use hopi_maintenance::DocumentLinks;
use hopi_store::{
    load_checkpoint_in, save_checkpoint_in, PersistError, StoredIndex, SyncPolicy, Wal,
};
use hopi_store::{sync_parent_dir_in, StdVfs, Vfs, VfsFile, WalRecord};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// File holding the last checkpoint (collection + frozen cover + seq).
pub const CHECKPOINT_FILE: &str = "checkpoint.hopi";
/// The write-ahead log of mutations since the last checkpoint.
pub const WAL_FILE: &str = "wal.log";
/// Lock file (held via an OS advisory lock) preventing two engines from
/// sharing a state directory — rotation by one would strand the other's
/// acked writes on an unlinked inode.
pub const LOCK_FILE: &str = "lock";

/// Exclusive ownership of a durable state directory for as long as the
/// value lives: an OS advisory lock (`flock`) held on the open `lock`
/// file. The kernel releases it when the holding process dies — even on
/// kill -9 — so there is no stale-lock state, no pid bookkeeping, and no
/// steal race; a live holder (in any pid namespace) makes acquisition
/// fail. The file itself is never removed; only the held lock matters.
pub(crate) struct DirLock {
    /// Held open for the lock's lifetime; dropping releases the lock.
    _file: Box<dyn VfsFile>,
}

impl DirLock {
    pub(crate) fn acquire(vfs: &dyn Vfs, dir: &Path) -> Result<DirLock, HopiError> {
        let path = dir.join(LOCK_FILE);
        let mut file = vfs.open_lock(&path).map_err(PersistError::Io)?;
        match file.try_lock() {
            Ok(true) => {
                // The pid is written for `ls`-level diagnostics only.
                let _ = file.set_len(0);
                let _ = file.write_all(std::process::id().to_string().as_bytes());
                Ok(DirLock { _file: file })
            }
            Ok(false) => {
                let holder = vfs
                    .read(&path)
                    .map(|b| String::from_utf8_lossy(&b).trim().to_string())
                    .unwrap_or_default();
                Err(HopiError::Persist(PersistError::Format(format!(
                    "state directory is locked by a live engine (pid {holder}); two engines \
                     sharing one WAL would lose acknowledged writes ({})",
                    path.display()
                ))))
            }
            Err(e) => Err(HopiError::Persist(PersistError::Io(e))),
        }
    }
}

/// How a durable engine is opened (see
/// [`crate::OnlineHopi::open_durable`]).
#[derive(Clone)]
pub struct DurableConfig {
    /// Directory holding `checkpoint.hopi` and `wal.log`.
    pub dir: PathBuf,
    /// When appended records reach disk. [`SyncPolicy::GroupCommit`] is
    /// the durable default; [`SyncPolicy::PerOp`] is the naive baseline;
    /// [`SyncPolicy::Never`] trades durability for bulk-load speed.
    pub policy: SyncPolicy,
    /// The I/O backend every durability syscall goes through:
    /// [`hopi_store::StdVfs`] in production, [`hopi_store::FaultVfs`]
    /// under fault injection.
    pub vfs: Arc<dyn Vfs>,
}

impl std::fmt::Debug for DurableConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableConfig")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl DurableConfig {
    /// Group-commit durability in `dir` on the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableConfig {
            dir: dir.into(),
            policy: SyncPolicy::GroupCommit,
            vfs: StdVfs::arc(),
        }
    }

    /// Overrides the sync policy.
    pub fn policy(mut self, policy: SyncPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the I/O backend (fault injection in tests).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    pub(crate) fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    pub(crate) fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }
}

/// Observability snapshot of the durability state (surfaced at
/// `GET /stats` and `hopi serve --wal`).
#[derive(Clone, Copy, Debug)]
pub struct WalStats {
    /// WAL sequence number covered by the last checkpoint.
    pub last_checkpoint_seq: u64,
    /// Serving epoch at which the last checkpoint was taken (0 when no
    /// checkpoint has been taken in this process yet).
    pub last_checkpoint_epoch: u64,
    /// Sequence number of the last appended record.
    pub appended_seq: u64,
    /// Sequence number through which records are fsynced.
    pub durable_seq: u64,
    /// Records appended since the last checkpoint.
    pub records_since_checkpoint: u64,
    /// Current WAL file length in bytes.
    pub wal_bytes: u64,
    /// `false` after a WAL append/fsync failure: the in-memory state may
    /// be ahead of the log, and mutations are refused until a checkpoint
    /// re-establishes a durable baseline.
    pub healthy: bool,
}

/// Point-in-time copies of the WAL's durability histograms: the fsync
/// wall-time distribution and the records-per-group-commit batch sizes
/// (see [`hopi_store::WalMetrics`]). The distributions — not means —
/// are what show whether group commit amortizes under load; surfaced at
/// `GET /stats` and `/metrics`.
#[derive(Clone, Debug)]
pub struct WalHistograms {
    /// fsync (`sync_data`) wall time, microsecond buckets.
    pub fsync: hopi_obs::HistogramSnapshot,
    /// Records made durable per fsync.
    pub batch: hopi_obs::HistogramSnapshot,
}

/// Outcome of a checkpoint (see [`crate::OnlineHopi::checkpoint`]).
#[derive(Clone, Copy, Debug)]
pub struct CheckpointStats {
    /// WAL sequence number the checkpoint covers.
    pub seq: u64,
    /// WAL bytes truncated away by the rotation.
    pub wal_bytes_truncated: u64,
}

/// The durability state attached to a durable [`crate::OnlineHopi`].
pub(crate) struct Durability {
    wal: Wal,
    checkpoint_path: PathBuf,
    policy: SyncPolicy,
    last_checkpoint_seq: AtomicU64,
    last_checkpoint_epoch: AtomicU64,
    /// Set when an append or fsync failed: memory may be ahead of the
    /// log, so further mutations are refused until a checkpoint succeeds.
    failed: AtomicBool,
    /// Serializes whole checkpoints (save + rotate): two concurrent
    /// `/admin/checkpoint` calls must not interleave their file writes.
    checkpoint_lock: std::sync::Mutex<()>,
    /// The I/O backend checkpoints are written through.
    vfs: Arc<dyn Vfs>,
    /// Exclusive ownership of the state directory, released on drop.
    _lock: DirLock,
}

impl Durability {
    pub(crate) fn new(
        wal: Wal,
        checkpoint_path: PathBuf,
        policy: SyncPolicy,
        seq: u64,
        vfs: Arc<dyn Vfs>,
        lock: DirLock,
    ) -> Self {
        Durability {
            wal,
            checkpoint_path,
            policy,
            last_checkpoint_seq: AtomicU64::new(seq),
            last_checkpoint_epoch: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            checkpoint_lock: std::sync::Mutex::new(()),
            vfs,
            _lock: lock,
        }
    }

    /// Refuses mutations after a WAL failure (memory ahead of the log).
    pub(crate) fn check_healthy(&self) -> Result<(), HopiError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(HopiError::Degraded(
                "write-ahead log failed; serving reads only until a checkpoint succeeds".into(),
            ));
        }
        Ok(())
    }

    /// Appends (no fsync yet unless the policy is per-op). Call while
    /// holding the engine write lock.
    pub(crate) fn append(&self, rec: &WalRecord) -> Result<u64, HopiError> {
        self.wal.append(rec, self.policy).map_err(|e| {
            self.failed.store(true, Ordering::Release);
            HopiError::Persist(PersistError::Io(e))
        })
    }

    /// Group-commits through `seq` (no-op for per-op/never policies).
    pub(crate) fn commit(&self, seq: u64) -> Result<(), HopiError> {
        if self.policy != SyncPolicy::GroupCommit {
            return Ok(());
        }
        self.wal.commit(seq).map_err(|e| {
            self.failed.store(true, Ordering::Release);
            HopiError::Persist(PersistError::Io(e))
        })
    }

    /// Atomically persists the engine's state and rotates the log. The
    /// caller must hold the engine lock (read suffices: appends happen
    /// under the write lock) so the WAL sequence cannot move under us.
    ///
    /// A *failed* checkpoint poisons the durability layer: the on-disk
    /// state may no longer line up with memory (e.g. the checkpoint
    /// renamed but the rotation failed), so mutations are refused until
    /// a later checkpoint succeeds and re-establishes the baseline.
    pub(crate) fn checkpoint(
        &self,
        engine: &Hopi,
        epoch: u64,
    ) -> Result<CheckpointStats, HopiError> {
        // Poison recovery: the lock only serializes checkpoints, and the
        // `failed` flag already records a checkpoint that died mid-write.
        let _serialize = self
            .checkpoint_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = self.wal.appended_seq();
        let bytes_before = self.wal.len_bytes();
        // lint: allow(blocking-under-lock): sanctioned — the checkpoint write is exactly what checkpoint_lock serializes
        let result = save_checkpoint_in(
            &*self.vfs,
            &self.checkpoint_path,
            engine.collection(),
            &engine.freeze(),
            seq,
        )
        // lint: allow(blocking-under-lock): sanctioned — WAL rotation must stay inside the same checkpoint critical section
        .and_then(|()| self.wal.rotate(seq));
        if let Err(e) = result {
            self.failed.store(true, Ordering::Release);
            return Err(e.into());
        }
        self.last_checkpoint_seq.store(seq, Ordering::Release);
        self.last_checkpoint_epoch.store(epoch, Ordering::Release);
        // A fresh checkpoint covers everything, including mutations a
        // failed WAL could not log.
        self.failed.store(false, Ordering::Release);
        Ok(CheckpointStats {
            seq,
            wal_bytes_truncated: bytes_before.saturating_sub(self.wal.len_bytes()),
        })
    }

    pub(crate) fn histograms(&self) -> WalHistograms {
        WalHistograms {
            fsync: self.wal.metrics().fsync.snapshot(),
            batch: self.wal.metrics().batch.snapshot(),
        }
    }

    pub(crate) fn stats(&self) -> WalStats {
        let last = self.last_checkpoint_seq.load(Ordering::Acquire);
        let appended = self.wal.appended_seq();
        WalStats {
            last_checkpoint_seq: last,
            last_checkpoint_epoch: self.last_checkpoint_epoch.load(Ordering::Acquire),
            appended_seq: appended,
            durable_seq: self.wal.durable_seq(),
            records_since_checkpoint: appended.saturating_sub(last),
            wal_bytes: self.wal.len_bytes(),
            healthy: !self.failed.load(Ordering::Acquire),
        }
    }
}

/// Applies one recovered WAL record to an engine. Replay runs the same
/// §6 incremental algorithms the original mutation ran.
fn apply_record(engine: &mut Hopi, rec: WalRecord) -> Result<(), HopiError> {
    match rec {
        WalRecord::InsertLink { from, to } => engine.insert_link(from, to).map(|_| ()),
        WalRecord::DeleteLink { from, to } => engine.delete_link(from, to).map(|_| ()),
        WalRecord::InsertDocument {
            doc,
            outgoing,
            incoming,
        } => engine
            .insert_document(doc, &DocumentLinks { outgoing, incoming })
            .map(|_| ()),
        WalRecord::DeleteDocument { doc } => engine.delete_document(doc).map(|_| ()),
        WalRecord::ModifyDocument {
            doc,
            new_doc,
            outgoing,
            incoming,
        } => engine
            .modify_document(doc, new_doc, &DocumentLinks { outgoing, incoming })
            .map(|_| ()),
    }
}

/// Recovers an engine from a durable directory: loads the last
/// checkpoint, replays the WAL tail past its sequence number (a torn
/// final record is truncated, not an error), and returns the engine, the
/// reopened log, and the checkpoint sequence.
///
/// Only records with `seq > checkpoint.seq` are applied, so a crash
/// between checkpoint write and log rotation cannot double-apply.
pub(crate) fn recover_dir(
    config: &DurableConfig,
    builder: HopiBuilder,
) -> Result<(Hopi, Wal, u64), HopiError> {
    let ckpt = load_checkpoint_in(&*config.vfs, &config.checkpoint_path())?;
    let mut engine = builder.open_stored(ckpt.collection, StoredIndex::Frozen(ckpt.frozen))?;
    // A missing log (e.g. a checkpoint-only restore from backup) is
    // recreated at the *checkpoint's* sequence — a base of 0 would make
    // the next recovery skip every new record as "already inside the
    // checkpoint" and silently drop acknowledged mutations.
    let wal_path = config.wal_path();
    let (wal, records) = if config.vfs.exists(&wal_path) {
        Wal::open_in(config.vfs.clone(), &wal_path)?
    } else {
        (
            Wal::create_in(config.vfs.clone(), &wal_path, ckpt.seq)?,
            Vec::new(),
        )
    };
    if wal.base_seq() > ckpt.seq {
        return Err(HopiError::Persist(PersistError::Format(format!(
            "WAL starts after sequence {} but the checkpoint covers only {}: records are missing",
            wal.base_seq(),
            ckpt.seq
        ))));
    }
    for (seq, rec) in records {
        if seq <= ckpt.seq {
            continue; // already inside the checkpoint
        }
        apply_record(&mut engine, rec).map_err(|e| {
            HopiError::Persist(PersistError::Format(format!(
                "WAL record {seq} does not apply to the recovered state: {e}"
            )))
        })?;
    }
    Ok((engine, wal, ckpt.seq))
}

/// Initializes a fresh durable directory around an already-built engine:
/// writes the initial checkpoint (sequence 0) and creates an empty log.
pub(crate) fn init_dir(config: &DurableConfig, engine: &Hopi) -> Result<(Wal, u64), HopiError> {
    config
        .vfs
        .create_dir_all(&config.dir)
        .map_err(PersistError::Io)?;
    let wal_path = config.wal_path();
    if config.vfs.exists(&wal_path) && !config.vfs.exists(&config.checkpoint_path()) {
        // Our ordering always makes the checkpoint durable before the log
        // exists, so this state indicates tampering or corruption; refuse
        // to silently discard whatever the log holds.
        return Err(HopiError::Persist(PersistError::Format(
            "found a WAL without a checkpoint; remove wal.log to re-initialize".into(),
        )));
    }
    save_checkpoint_in(
        &*config.vfs,
        &config.checkpoint_path(),
        engine.collection(),
        &engine.freeze(),
        0,
    )?;
    let wal = Wal::create_in(config.vfs.clone(), &wal_path, 0)?;
    sync_parent_dir_in(&*config.vfs, &wal_path).map_err(PersistError::Io)?;
    Ok((wal, 0))
}

/// Is `dir` an initialized durable directory (has a checkpoint)?
pub fn is_durable_dir(dir: &Path) -> bool {
    dir.join(CHECKPOINT_FILE).exists()
}
