//! The workspace-wide error type of the public HOPI API.
//!
//! The expert layer underneath mixes panics, `Option`s and per-crate error
//! types; everything crossing the [`Hopi`](crate::Hopi) /
//! [`OnlineHopi`](crate::OnlineHopi) boundary is converted to [`HopiError`]
//! so callers match on one enum.

use hopi_xml::{DocId, ElemId};

/// Any error the public HOPI engine API can return.
#[derive(Debug)]
#[non_exhaustive]
pub enum HopiError {
    /// Malformed XML text.
    Xml(hopi_xml::parser::ParseError),
    /// Malformed path expression.
    Path(hopi_query::ParseError),
    /// A document id that is not (or no longer) live in the collection.
    UnknownDocument(DocId),
    /// An element id that is not (or no longer) live in the collection.
    UnknownElement(ElemId),
    /// A document-local element id outside the document's element range.
    InvalidLocalElement {
        /// The offending local id.
        local: u32,
        /// Number of elements in the document.
        len: usize,
    },
    /// A link whose endpoints lie in the same document (same-document
    /// references belong to the document's intra-links).
    SameDocumentLink {
        /// Link source.
        from: ElemId,
        /// Link target.
        to: ElemId,
    },
    /// A link that does not exist in the collection.
    UnknownLink {
        /// Link source.
        from: ElemId,
        /// Link target.
        to: ElemId,
    },
    /// An `href`/`idref` reference naming a document or anchor the
    /// collection does not contain.
    UnresolvedRef {
        /// Referenced document name.
        doc: String,
        /// Referenced anchor (empty = document root).
        anchor: String,
    },
    /// A document name that is already taken by a live document.
    DuplicateDocumentName(String),
    /// A distance query against an engine built without
    /// [`distance_aware`](crate::HopiBuilder::distance_aware).
    DistanceDisabled,
    /// A durability operation (checkpoint, WAL inspection) against an
    /// engine that was not opened in durable mode.
    DurabilityDisabled,
    /// The engine is serving in degraded (read-only) mode: the WAL or a
    /// checkpoint failed, so mutations are refused until a successful
    /// checkpoint re-establishes a durable baseline. Reads keep working.
    /// The server maps this to `503` with a `Retry-After` header.
    Degraded(String),
    /// Index persistence failed.
    Persist(hopi_store::PersistError),
}

impl std::fmt::Display for HopiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopiError::Xml(e) => write!(f, "XML parse error: {e}"),
            HopiError::Path(e) => write!(f, "path expression error: {e}"),
            HopiError::UnknownDocument(d) => write!(f, "unknown document id {d}"),
            HopiError::UnknownElement(e) => write!(f, "unknown element id {e}"),
            HopiError::InvalidLocalElement { local, len } => {
                write!(f, "local element {local} out of range (document has {len})")
            }
            HopiError::SameDocumentLink { from, to } => write!(
                f,
                "link {from} → {to} stays inside one document; use intra-document links"
            ),
            HopiError::UnknownLink { from, to } => write!(f, "no link {from} → {to}"),
            HopiError::UnresolvedRef { doc, anchor } if anchor.is_empty() => {
                write!(f, "unresolved reference to document '{doc}'")
            }
            HopiError::UnresolvedRef { doc, anchor } => {
                write!(f, "unresolved reference '{doc}#{anchor}'")
            }
            HopiError::DuplicateDocumentName(name) => {
                write!(f, "a live document named '{name}' already exists")
            }
            HopiError::DistanceDisabled => write!(
                f,
                "distance queries need an engine built with distance_aware(true)"
            ),
            HopiError::DurabilityDisabled => write!(
                f,
                "this engine was not opened in durable mode (no write-ahead log)"
            ),
            HopiError::Degraded(reason) => write!(f, "service degraded: {reason}"),
            HopiError::Persist(e) => write!(f, "persistence error: {e}"),
        }
    }
}

impl std::error::Error for HopiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HopiError::Xml(e) => Some(e),
            HopiError::Path(e) => Some(e),
            HopiError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hopi_xml::parser::ParseError> for HopiError {
    fn from(e: hopi_xml::parser::ParseError) -> Self {
        HopiError::Xml(e)
    }
}

impl From<hopi_query::ParseError> for HopiError {
    fn from(e: hopi_query::ParseError) -> Self {
        HopiError::Path(e)
    }
}

impl From<hopi_store::PersistError> for HopiError {
    fn from(e: hopi_store::PersistError) -> Self {
        HopiError::Persist(e)
    }
}

impl From<hopi_maintenance::LinkError> for HopiError {
    fn from(e: hopi_maintenance::LinkError) -> Self {
        match e {
            hopi_maintenance::LinkError::UnknownEndpoint(el) => HopiError::UnknownElement(el),
            hopi_maintenance::LinkError::SameDocument { from, to } => {
                HopiError::SameDocumentLink { from, to }
            }
        }
    }
}
