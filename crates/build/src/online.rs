//! [`OnlineHopi`]: the [`Hopi`] surface lifted into the 24×7 serving mode
//! of paper §1.1 — with **lock-free query serving**.
//!
//! The engine itself lives behind a reader/writer lock, but queries never
//! touch it: they run against an immutable [`HopiSnapshot`] (the cover
//! frozen into flat CSR arrays) published through an `Arc` that readers
//! clone in O(1). Mutations take the write lock briefly, apply the
//! incremental §6 algorithms, and publish a fresh snapshot before
//! releasing it (epoch style: in-flight queries finish on the epoch they
//! started with; new queries see the new one). Background rebuilds
//! ([`OnlineHopi::rebuild_in_background`]) build on a collection snapshot
//! outside any lock, replay the updates that arrived mid-build, swap the
//! fresh engine in atomically, and publish its snapshot.
//!
//! Consequences:
//!
//! * readers never block on writers or rebuilds — "indexes need to be
//!   built without interrupting the service of queries";
//! * every query runs on the cache-friendly frozen layout, not the
//!   pointer-chasing mutable cover;
//! * a reader holding an `Arc<HopiSnapshot>` (via [`OnlineHopi::snapshot`])
//!   gets repeatable reads across many calls for free.

use crate::error::HopiError;
use crate::facade::Hopi;
use crate::snapshot::{HopiSnapshot, SnapshotStats};
use hopi_maintenance::{
    collection_delta, delta_replays_exactly, CollectionUpdate, DeletionOutcome, DocumentLinks,
};
use hopi_partition::BuildReport;
use hopi_query::RankedMatch;
use hopi_xml::{DocId, ElemId, XmlDocument};
use parking_lot::RwLock;
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrently queryable HOPI engine: lock-free snapshot reads,
/// non-blocking rebuilds.
///
/// ```
/// use hopi_build::{Hopi, OnlineHopi};
///
/// let online = OnlineHopi::new(Hopi::builder().parse([
///     ("a", r#"<r><cite xlink:href="b"/></r>"#),
///     ("b", "<r><sec/></r>"),
/// ])?);
///
/// let snap = online.snapshot(); // Arc — no lock held while querying
/// let (a, b_sec) = (snap.resolve("a", "")?, snap.query("//r//sec")?[0]);
/// assert!(online.connected(a, b_sec));
/// # Ok::<(), hopi_build::HopiError>(())
/// ```
#[derive(Clone)]
pub struct OnlineHopi {
    /// The mutable engine; only maintenance takes this lock.
    engine: Arc<RwLock<Hopi>>,
    /// The published serving epoch. Readers hold this lock only long
    /// enough to clone the `Arc`; query evaluation runs lock-free.
    serving: Arc<RwLock<Arc<HopiSnapshot>>>,
    /// Monotonic epoch counter; bumped on every publish, so each published
    /// snapshot carries a strictly larger [`HopiSnapshot::epoch`] than the
    /// one it replaces (publishes are serialized by the engine write lock).
    epoch: Arc<AtomicU64>,
}

impl OnlineHopi {
    /// Wraps a built engine for concurrent use, publishing its first
    /// snapshot.
    pub fn new(hopi: Hopi) -> Self {
        let snapshot = hopi.snapshot();
        OnlineHopi {
            engine: Arc::new(RwLock::new(hopi)),
            serving: Arc::new(RwLock::new(snapshot)),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current serving snapshot (O(1): one `Arc` clone under a
    /// momentary lock). Hold it for repeatable reads across calls; drop it
    /// to pick up newer epochs via the convenience methods below.
    pub fn snapshot(&self) -> Arc<HopiSnapshot> {
        self.serving.read().clone()
    }

    /// Lock-free reachability query (current snapshot).
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.snapshot().connected(u, v)
    }

    /// Lock-free batched reachability probes (current snapshot): `out[i]`
    /// answers `pairs[i]` via the frozen §3.4-style join kernel, all on one
    /// epoch, reusing the caller's buffer across batches.
    pub fn connected_many(&self, pairs: &[(ElemId, ElemId)], out: &mut Vec<bool>) {
        self.snapshot().connected_many(pairs, out)
    }

    /// Lock-free shortest-link-distance query (current snapshot).
    pub fn distance(&self, u: ElemId, v: ElemId) -> Result<Option<u32>, HopiError> {
        self.snapshot().distance(u, v)
    }

    /// Lock-free descendant enumeration (current snapshot).
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.snapshot().descendants(u)
    }

    /// Lock-free path-expression evaluation (current snapshot).
    pub fn query(&self, expr: &str) -> Result<Vec<ElemId>, HopiError> {
        self.snapshot().query(expr)
    }

    /// Lock-free distance-ranked evaluation (current snapshot).
    pub fn query_ranked(&self, expr: &str) -> Result<Vec<RankedMatch>, HopiError> {
        self.snapshot().query_ranked(expr)
    }

    /// Current cover size (of the serving snapshot).
    pub fn size(&self) -> usize {
        self.snapshot().cover_entries()
    }

    /// The epoch of the current serving snapshot. Strictly increases with
    /// every published snapshot (mutation, `update_batch`, rebuild).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Summary of the current serving snapshot (epoch, cover size, node
    /// count, distance-awareness) for observability endpoints.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshot().stats()
    }

    /// Runs a closure against the live engine under the read lock — the
    /// escape hatch for reads that need the *mutable-layer* state (build
    /// reports, degradation, expert accessors). Plain queries should
    /// prefer [`OnlineHopi::snapshot`], which never blocks on writers.
    pub fn read<R>(&self, f: impl FnOnce(&Hopi) -> R) -> R {
        f(&self.engine.read())
    }

    /// Applies a batch of mutations under one write lock and publishes
    /// **one** fresh snapshot afterwards — cheaper than a snapshot refresh
    /// per call when loading many documents or links.
    pub fn update_batch<R>(&self, f: impl FnOnce(&mut Hopi) -> R) -> R {
        let mut guard = self.engine.write();
        let out = f(&mut guard);
        self.publish(&guard);
        out
    }

    /// Incremental document insertion (brief write lock + snapshot
    /// refresh).
    pub fn insert_document(
        &self,
        doc: XmlDocument,
        links: &DocumentLinks,
    ) -> Result<DocId, HopiError> {
        self.mutate(|h| h.insert_document(doc, links))
    }

    /// Parses and inserts one XML document (brief write lock + snapshot
    /// refresh).
    pub fn insert_xml(&self, name: &str, xml: &str) -> Result<DocId, HopiError> {
        self.mutate(|h| h.insert_xml(name, xml))
    }

    /// Incremental link insertion (brief write lock + snapshot refresh).
    /// Duplicates are a no-op returning `Ok(0)`.
    pub fn insert_link(&self, from: ElemId, to: ElemId) -> Result<usize, HopiError> {
        self.mutate(|h| h.insert_link(from, to))
    }

    /// Incremental document deletion (brief write lock + snapshot
    /// refresh).
    pub fn delete_document(&self, d: DocId) -> Result<DeletionOutcome, HopiError> {
        self.mutate(|h| h.delete_document(d))
    }

    /// Incremental link deletion (brief write lock + snapshot refresh).
    pub fn delete_link(&self, from: ElemId, to: ElemId) -> Result<DeletionOutcome, HopiError> {
        self.mutate(|h| h.delete_link(from, to))
    }

    /// Rebuilds in a background thread from a snapshot, then swaps the
    /// fresh engine in atomically. Queries are served from the old
    /// snapshot for the entire build; updates arriving mid-build are
    /// replayed onto the fresh engine before the swap. Returns a handle
    /// yielding the fresh build's report.
    pub fn rebuild_in_background(&self) -> std::thread::JoinHandle<BuildReport> {
        let this = self.clone();
        std::thread::spawn(move || this.rebuild_blocking())
    }

    /// The rebuild body (also callable synchronously): snapshot → build
    /// outside the lock → catch up on concurrent updates → swap + publish.
    pub fn rebuild_blocking(&self) -> BuildReport {
        // 1. Snapshot under the read lock.
        let (snapshot, builder) = {
            let guard = self.engine.read();
            let builder = Hopi::builder()
                .config(guard.config().clone())
                .query_options(*guard.query_options())
                .distance_aware(guard.stats().distance_entries.is_some());
            (guard.collection().clone(), builder)
        };
        let snapshot_docs: Vec<DocId> = snapshot.doc_ids().collect();
        let snapshot_links: FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();

        // 2. Build outside any lock.
        let mut fresh = builder
            .clone()
            .build(snapshot.clone())
            .expect("rebuilding a valid collection cannot fail");

        // 3. Swap under the write lock, replaying the delta between the
        // snapshot and the live collection onto the fresh engine. The
        // plan-strategy counters survive the swap: a rebuild changes the
        // cover, not the observability history.
        let mut guard = self.engine.write();
        let delta = collection_delta(&snapshot_docs, &snapshot_links, guard.collection());
        if !delta_replays_exactly(&snapshot, guard.collection(), &delta) {
            // Rare: the window contained updates whose replay would not
            // reproduce the live id assignment (a document created *and*
            // deleted mid-build, or a link between two mid-build
            // documents). Rebuild from the live collection — still a
            // consistent swap, just under the lock.
            let mut fallback = builder
                .build(guard.collection().clone())
                .expect("rebuilding a valid collection cannot fail");
            fallback.plan_counters = guard.plan_counters.clone();
            let report = fallback.report().clone();
            *guard = fallback;
            self.publish(&guard);
            return report;
        }
        fresh.plan_counters = guard.plan_counters.clone();
        let report = fresh.report().clone();
        for update in delta {
            let replayed = match update {
                CollectionUpdate::InsertLink(f, t) => fresh.insert_link(f, t).map(|_| ()),
                CollectionUpdate::InsertDocument(doc, links) => {
                    fresh.insert_document(doc, &links).map(|_| ())
                }
                CollectionUpdate::DeleteDocument(d) => fresh.delete_document(d).map(|_| ()),
            };
            replayed.expect("an exactly-replayable delta applies cleanly");
        }
        *guard = fresh;
        self.publish(&guard);
        report
    }

    /// Runs one mutation under the write lock; on success publishes a
    /// fresh snapshot before releasing it (so no query epoch can observe
    /// the mutation without its index updates).
    fn mutate<R>(&self, f: impl FnOnce(&mut Hopi) -> Result<R, HopiError>) -> Result<R, HopiError> {
        let mut guard = self.engine.write();
        let out = f(&mut guard)?;
        self.publish(&guard);
        Ok(out)
    }

    /// Publishes the engine's current state as the serving epoch. Caller
    /// holds the engine write lock, so the capture is consistent and epoch
    /// numbers are published in order; lock order is always engine →
    /// serving.
    fn publish(&self, engine: &Hopi) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let snapshot = engine.snapshot_at_epoch(epoch);
        *self.serving.write() = snapshot;
    }
}
