//! [`OnlineHopi`]: the [`Hopi`] surface lifted into the 24×7 serving mode
//! of `hopi_maintenance::online`.
//!
//! Paper §1.1: "indexes need to be built without interrupting the service
//! of queries". `OnlineHopi` is a cheaply clonable handle sharing one
//! engine behind a reader/writer lock: queries run concurrently under read
//! locks, incremental updates take the write lock briefly, and
//! [`OnlineHopi::rebuild_in_background`] rebuilds on a snapshot outside any
//! lock, replays the updates that arrived mid-build, and swaps the fresh
//! engine in atomically.

use crate::error::HopiError;
use crate::facade::Hopi;
use hopi_maintenance::{
    collection_delta, delta_replays_exactly, CollectionUpdate, DeletionOutcome, DocumentLinks,
};
use hopi_partition::BuildReport;
use hopi_query::RankedMatch;
use hopi_xml::{DocId, ElemId, XmlDocument};
use parking_lot::RwLock;
use rustc_hash::FxHashSet;
use std::sync::Arc;

/// A concurrently queryable HOPI engine with non-blocking rebuilds.
///
/// ```
/// use hopi_build::{Hopi, OnlineHopi};
///
/// let online = OnlineHopi::new(Hopi::builder().parse([
///     ("a", r#"<r><cite xlink:href="b"/></r>"#),
///     ("b", "<r><sec/></r>"),
/// ])?);
///
/// let (a, b_sec) = online.read(|h| {
///     (h.resolve("a", "").unwrap(), h.query("//r//sec").unwrap()[0])
/// });
/// assert!(online.connected(a, b_sec));
/// # Ok::<(), hopi_build::HopiError>(())
/// ```
#[derive(Clone)]
pub struct OnlineHopi {
    state: Arc<RwLock<Hopi>>,
}

impl OnlineHopi {
    /// Wraps a built engine for concurrent use.
    pub fn new(hopi: Hopi) -> Self {
        OnlineHopi {
            state: Arc::new(RwLock::new(hopi)),
        }
    }

    /// Concurrent reachability query.
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.state.read().connected(u, v)
    }

    /// Concurrent shortest-link-distance query.
    pub fn distance(&self, u: ElemId, v: ElemId) -> Result<Option<u32>, HopiError> {
        self.state.read().distance(u, v)
    }

    /// Concurrent descendant enumeration.
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.state.read().descendants(u)
    }

    /// Concurrent path-expression evaluation.
    pub fn query(&self, expr: &str) -> Result<Vec<ElemId>, HopiError> {
        self.state.read().query(expr)
    }

    /// Concurrent distance-ranked evaluation.
    pub fn query_ranked(&self, expr: &str) -> Result<Vec<RankedMatch>, HopiError> {
        self.state.read().query_ranked(expr)
    }

    /// Current cover size.
    pub fn size(&self) -> usize {
        self.state.read().index().size()
    }

    /// Runs a closure under the read lock for multi-call consistency.
    pub fn read<R>(&self, f: impl FnOnce(&Hopi) -> R) -> R {
        f(&self.state.read())
    }

    /// Incremental document insertion (brief write lock).
    pub fn insert_document(
        &self,
        doc: XmlDocument,
        links: &DocumentLinks,
    ) -> Result<DocId, HopiError> {
        self.state.write().insert_document(doc, links)
    }

    /// Parses and inserts one XML document (brief write lock).
    pub fn insert_xml(&self, name: &str, xml: &str) -> Result<DocId, HopiError> {
        self.state.write().insert_xml(name, xml)
    }

    /// Incremental link insertion (brief write lock).
    pub fn insert_link(&self, from: ElemId, to: ElemId) -> Result<usize, HopiError> {
        self.state.write().insert_link(from, to)
    }

    /// Incremental document deletion (brief write lock).
    pub fn delete_document(&self, d: DocId) -> Result<DeletionOutcome, HopiError> {
        self.state.write().delete_document(d)
    }

    /// Incremental link deletion (brief write lock).
    pub fn delete_link(&self, from: ElemId, to: ElemId) -> Result<DeletionOutcome, HopiError> {
        self.state.write().delete_link(from, to)
    }

    /// Rebuilds in a background thread from a snapshot, then swaps the
    /// fresh engine in atomically. Queries are served from the old engine
    /// for the entire build; updates arriving mid-build are replayed onto
    /// the fresh engine before the swap. Returns a handle yielding the
    /// fresh build's report.
    pub fn rebuild_in_background(&self) -> std::thread::JoinHandle<BuildReport> {
        let this = self.clone();
        std::thread::spawn(move || this.rebuild_blocking())
    }

    /// The rebuild body (also callable synchronously): snapshot → build
    /// outside the lock → catch up on concurrent updates → swap.
    pub fn rebuild_blocking(&self) -> BuildReport {
        // 1. Snapshot under the read lock.
        let (snapshot, builder) = {
            let guard = self.state.read();
            let builder = Hopi::builder()
                .config(guard.config().clone())
                .query_options(*guard.query_options())
                .distance_aware(guard.stats().distance_entries.is_some());
            (guard.collection().clone(), builder)
        };
        let snapshot_docs: Vec<DocId> = snapshot.doc_ids().collect();
        let snapshot_links: FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();

        // 2. Build outside any lock.
        let mut fresh = builder
            .clone()
            .build(snapshot.clone())
            .expect("rebuilding a valid collection cannot fail");

        // 3. Swap under the write lock, replaying the delta between the
        // snapshot and the live collection onto the fresh engine.
        let mut guard = self.state.write();
        let delta = collection_delta(&snapshot_docs, &snapshot_links, guard.collection());
        if !delta_replays_exactly(&snapshot, guard.collection(), &delta) {
            // Rare: the window contained updates whose replay would not
            // reproduce the live id assignment (a document created *and*
            // deleted mid-build, or a link between two mid-build
            // documents). Rebuild from the live collection — still a
            // consistent swap, just under the lock.
            let fallback = builder
                .build(guard.collection().clone())
                .expect("rebuilding a valid collection cannot fail");
            let report = fallback.report().clone();
            *guard = fallback;
            return report;
        }
        let report = fresh.report().clone();
        for update in delta {
            let replayed = match update {
                CollectionUpdate::InsertLink(f, t) => fresh.insert_link(f, t).map(|_| ()),
                CollectionUpdate::InsertDocument(doc, links) => {
                    fresh.insert_document(doc, &links).map(|_| ())
                }
                CollectionUpdate::DeleteDocument(d) => fresh.delete_document(d).map(|_| ()),
            };
            replayed.expect("an exactly-replayable delta applies cleanly");
        }
        *guard = fresh;
        report
    }
}
