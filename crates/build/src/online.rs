//! [`OnlineHopi`]: the [`Hopi`] surface lifted into the 24×7 serving mode
//! of paper §1.1 — with **lock-free query serving**.
//!
//! The engine itself lives behind a reader/writer lock, but queries never
//! touch it: they run against an immutable [`HopiSnapshot`] (the cover
//! frozen into flat CSR arrays) published through an `Arc` that readers
//! clone in O(1). Mutations take the write lock briefly, apply the
//! incremental §6 algorithms, and publish a fresh snapshot before
//! releasing it (epoch style: in-flight queries finish on the epoch they
//! started with; new queries see the new one). Background rebuilds
//! ([`OnlineHopi::rebuild_in_background`]) build on a collection snapshot
//! outside any lock, replay the updates that arrived mid-build, swap the
//! fresh engine in atomically, and publish its snapshot.
//!
//! Consequences:
//!
//! * readers never block on writers or rebuilds — "indexes need to be
//!   built without interrupting the service of queries";
//! * every query runs on the cache-friendly frozen layout, not the
//!   pointer-chasing mutable cover;
//! * a reader holding an `Arc<HopiSnapshot>` (via [`OnlineHopi::snapshot`])
//!   gets repeatable reads across many calls for free.

use crate::durable::{recover_dir, DirLock, Durability, DurableConfig};
use crate::error::HopiError;
use crate::facade::{Hopi, HopiBuilder};
use crate::snapshot::{HopiSnapshot, SnapshotStats};
use crate::{CheckpointStats, WalStats};
use hopi_maintenance::{
    collection_delta, delta_replays_exactly, CollectionUpdate, DeletionOutcome, DocumentLinks,
};
use hopi_partition::BuildReport;
use hopi_query::RankedMatch;
use hopi_store::WalRecord;
use hopi_xml::{Collection, DocId, ElemId, XmlDocument};
use parking_lot::RwLock;
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrently queryable HOPI engine: lock-free snapshot reads,
/// non-blocking rebuilds.
///
/// ```
/// use hopi_build::{Hopi, OnlineHopi};
///
/// let online = OnlineHopi::new(Hopi::builder().parse([
///     ("a", r#"<r><cite xlink:href="b"/></r>"#),
///     ("b", "<r><sec/></r>"),
/// ])?);
///
/// let snap = online.snapshot(); // Arc — no lock held while querying
/// let (a, b_sec) = (snap.resolve("a", "")?, snap.query("//r//sec")?[0]);
/// assert!(online.connected(a, b_sec));
/// # Ok::<(), hopi_build::HopiError>(())
/// ```
#[derive(Clone)]
pub struct OnlineHopi {
    /// The mutable engine; only maintenance takes this lock.
    engine: Arc<RwLock<Hopi>>,
    /// The published serving epoch. Readers hold this lock only long
    /// enough to clone the `Arc`; query evaluation runs lock-free.
    serving: Arc<RwLock<Arc<HopiSnapshot>>>,
    /// Monotonic epoch counter; bumped on every publish, so each published
    /// snapshot carries a strictly larger [`HopiSnapshot::epoch`] than the
    /// one it replaces (publishes are serialized by the engine write lock).
    epoch: Arc<AtomicU64>,
    /// Durable mode (write-ahead log + checkpoints); `None` for plain
    /// in-memory serving.
    durability: Option<Arc<Durability>>,
}

impl OnlineHopi {
    /// Wraps a built engine for concurrent use, publishing its first
    /// snapshot.
    pub fn new(hopi: Hopi) -> Self {
        let snapshot = hopi.snapshot();
        OnlineHopi {
            engine: Arc::new(RwLock::new(hopi)),
            serving: Arc::new(RwLock::new(snapshot)),
            epoch: Arc::new(AtomicU64::new(0)),
            durability: None,
        }
    }

    /// Opens a **durable** engine over a state directory holding
    /// `checkpoint.hopi` + `wal.log`.
    ///
    /// * If the directory has a checkpoint, the engine is recovered from
    ///   it and the WAL tail past it is replayed (a torn final record is
    ///   truncated, never an error) — `bootstrap` is ignored.
    /// * Otherwise a fresh engine is built from `bootstrap` (empty when
    ///   `None`), an initial checkpoint is written, and an empty log is
    ///   created.
    ///
    /// From then on every mutation is appended to the WAL under the
    /// engine write lock (log order = apply order) and acknowledged only
    /// once durable under the configured [`hopi_store::SyncPolicy`] —
    /// group commit by default, where one fsync covers every mutation
    /// queued behind it. [`OnlineHopi::checkpoint`] persists the full
    /// state atomically and truncates the log.
    ///
    /// ```no_run
    /// use hopi_build::{DurableConfig, Hopi, OnlineHopi};
    ///
    /// let config = DurableConfig::new("/var/lib/hopi");
    /// let online = OnlineHopi::open_durable(&config, Hopi::builder(), None)?;
    /// online.insert_xml("note", "<r/>")?; // durable once this returns
    /// # Ok::<(), hopi_build::HopiError>(())
    /// ```
    pub fn open_durable(
        config: &DurableConfig,
        builder: HopiBuilder,
        bootstrap: Option<Collection>,
    ) -> Result<Self, HopiError> {
        if crate::durable::is_durable_dir(&config.dir) {
            let lock = DirLock::acquire(&*config.vfs, &config.dir)?;
            let (engine, wal, seq) = recover_dir(config, builder)?;
            Ok(Self::with_durability(engine, wal, config, seq, lock))
        } else {
            Self::bootstrap_durable(config, builder.build(bootstrap.unwrap_or_default())?)
        }
    }

    /// Initializes a fresh durable state directory around an
    /// already-built engine (e.g. one opened from a prebuilt index file)
    /// and serves it durably. Refuses a directory that already holds a
    /// checkpoint — recover that with [`OnlineHopi::open_durable`]
    /// instead, so an existing durable state can never be silently
    /// overwritten.
    pub fn bootstrap_durable(config: &DurableConfig, engine: Hopi) -> Result<Self, HopiError> {
        if crate::durable::is_durable_dir(&config.dir) {
            return Err(HopiError::Persist(hopi_store::PersistError::Format(
                format!(
                    "{} already holds a durable checkpoint; open_durable recovers it",
                    config.dir.display()
                ),
            )));
        }
        config
            .vfs
            .create_dir_all(&config.dir)
            .map_err(|e| HopiError::Persist(hopi_store::PersistError::Io(e)))?;
        let lock = DirLock::acquire(&*config.vfs, &config.dir)?;
        let (wal, seq) = crate::durable::init_dir(config, &engine)?;
        Ok(Self::with_durability(engine, wal, config, seq, lock))
    }

    fn with_durability(
        engine: Hopi,
        wal: hopi_store::Wal,
        config: &DurableConfig,
        seq: u64,
        lock: DirLock,
    ) -> Self {
        let mut online = OnlineHopi::new(engine);
        online.durability = Some(Arc::new(Durability::new(
            wal,
            config.checkpoint_path(),
            config.policy,
            seq,
            config.vfs.clone(),
            lock,
        )));
        online
    }

    /// Is this engine running with a write-ahead log?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Durability observability (WAL length, last checkpoint, fsync
    /// horizon); `None` for a non-durable engine.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.stats())
    }

    /// Point-in-time copies of the WAL's fsync-latency and group-commit
    /// batch-size histograms; `None` for a non-durable engine.
    pub fn wal_histograms(&self) -> Option<crate::durable::WalHistograms> {
        self.durability.as_ref().map(|d| d.histograms())
    }

    /// Atomically persists the current state (collection + frozen cover +
    /// WAL sequence) and truncates the log. Blocks mutations for the
    /// duration (queries keep running on snapshots). Errors with
    /// [`HopiError::DurabilityDisabled`] on a non-durable engine.
    pub fn checkpoint(&self) -> Result<CheckpointStats, HopiError> {
        let durability = self
            .durability
            .as_ref()
            .ok_or(HopiError::DurabilityDisabled)?;
        // The read lock excludes writers (appends happen under the write
        // lock), freezing engine state and WAL sequence together.
        let guard = self.engine.read();
        // lint: allow(blocking-under-lock): sanctioned — an explicit checkpoint must write under the read lock to freeze state + WAL seq together
        durability.checkpoint(&guard, self.epoch.load(Ordering::Relaxed))
    }

    /// The current serving snapshot (O(1): one `Arc` clone under a
    /// momentary lock). Hold it for repeatable reads across calls; drop it
    /// to pick up newer epochs via the convenience methods below.
    pub fn snapshot(&self) -> Arc<HopiSnapshot> {
        self.serving.read().clone()
    }

    /// Lock-free reachability query (current snapshot).
    pub fn connected(&self, u: ElemId, v: ElemId) -> bool {
        self.snapshot().connected(u, v)
    }

    /// Lock-free batched reachability probes (current snapshot): `out[i]`
    /// answers `pairs[i]` via the frozen §3.4-style join kernel, all on one
    /// epoch, reusing the caller's buffer across batches.
    pub fn connected_many(&self, pairs: &[(ElemId, ElemId)], out: &mut Vec<bool>) {
        self.snapshot().connected_many(pairs, out)
    }

    /// Lock-free shortest-link-distance query (current snapshot).
    pub fn distance(&self, u: ElemId, v: ElemId) -> Result<Option<u32>, HopiError> {
        self.snapshot().distance(u, v)
    }

    /// Lock-free descendant enumeration (current snapshot).
    pub fn descendants(&self, u: ElemId) -> Vec<ElemId> {
        self.snapshot().descendants(u)
    }

    /// Lock-free path-expression evaluation (current snapshot).
    pub fn query(&self, expr: &str) -> Result<Vec<ElemId>, HopiError> {
        self.snapshot().query(expr)
    }

    /// Lock-free distance-ranked evaluation (current snapshot).
    pub fn query_ranked(&self, expr: &str) -> Result<Vec<RankedMatch>, HopiError> {
        self.snapshot().query_ranked(expr)
    }

    /// Current cover size (of the serving snapshot).
    pub fn size(&self) -> usize {
        self.snapshot().cover_entries()
    }

    /// The epoch of the current serving snapshot. Strictly increases with
    /// every published snapshot (mutation, `update_batch`, rebuild).
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }

    /// Summary of the current serving snapshot (epoch, cover size, node
    /// count, distance-awareness) for observability endpoints.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshot().stats()
    }

    /// Runs a closure against the live engine under the read lock — the
    /// escape hatch for reads that need the *mutable-layer* state (build
    /// reports, degradation, expert accessors). Plain queries should
    /// prefer [`OnlineHopi::snapshot`], which never blocks on writers.
    pub fn read<R>(&self, f: impl FnOnce(&Hopi) -> R) -> R {
        f(&self.engine.read())
    }

    /// Applies a batch of mutations under one write lock and publishes
    /// **one** fresh snapshot afterwards — cheaper than a snapshot refresh
    /// per call when loading many documents or links.
    ///
    /// In durable mode the closure's mutations cannot be logged
    /// individually (they are arbitrary), so the batch is made durable
    /// wholesale: a checkpoint is taken before this returns. A
    /// successful checkpoint also cures an earlier WAL failure (it
    /// captures the whole state). A failed one comes back as `Err` —
    /// the batch is applied in memory and published, but **not durable**
    /// — and leaves the durability layer poisoned, so subsequent
    /// mutations are refused until a checkpoint succeeds. On a
    /// non-durable engine this never errors.
    pub fn update_batch<R>(&self, f: impl FnOnce(&mut Hopi) -> R) -> Result<R, HopiError> {
        let mut guard = self.engine.write();
        let out = f(&mut guard);
        let checkpointed = match &self.durability {
            Some(d) => d
                // lint: allow(blocking-under-lock): sanctioned — a batch is durable-by-checkpoint, which must capture the engine it just mutated
                .checkpoint(&guard, self.epoch.load(Ordering::Relaxed))
                .map(|_| ()),
            None => Ok(()),
        };
        self.publish(&guard);
        checkpointed.map(|()| out)
    }

    /// Incremental document insertion (brief write lock + snapshot
    /// refresh).
    pub fn insert_document(
        &self,
        doc: XmlDocument,
        links: &DocumentLinks,
    ) -> Result<DocId, HopiError> {
        // Record built from the caller's inputs *before* taking the write
        // lock, so the clone does not lengthen the critical section.
        let rec = self
            .durability
            .is_some()
            .then(|| WalRecord::InsertDocument {
                doc: doc.clone(),
                outgoing: links.outgoing.clone(),
                incoming: links.incoming.clone(),
            });
        self.mutate(|h| {
            let id = h.insert_document(doc, links)?;
            Ok((id, rec))
        })
    }

    /// Parses and inserts one XML document (brief write lock + snapshot
    /// refresh).
    pub fn insert_xml(&self, name: &str, xml: &str) -> Result<DocId, HopiError> {
        let log = self.durability.is_some();
        self.mutate(|h| {
            let (doc, links) = h.prepare_xml(name, xml)?;
            let rec = log.then(|| WalRecord::InsertDocument {
                doc: doc.clone(),
                outgoing: links.outgoing.clone(),
                incoming: links.incoming.clone(),
            });
            let id = h.insert_document(doc, &links)?;
            Ok((id, rec))
        })
    }

    /// Incremental link insertion (brief write lock + snapshot refresh).
    /// Duplicates are a no-op returning `Ok(0)` — and append no WAL
    /// record, so a durable engine pays no fsync for them.
    pub fn insert_link(&self, from: ElemId, to: ElemId) -> Result<usize, HopiError> {
        self.mutate(|h| {
            let duplicate = h.collection().has_link(from, to);
            let out = h.insert_link(from, to)?;
            Ok((
                out,
                (!duplicate).then_some(WalRecord::InsertLink { from, to }),
            ))
        })
    }

    /// Incremental document deletion (brief write lock + snapshot
    /// refresh).
    pub fn delete_document(&self, d: DocId) -> Result<DeletionOutcome, HopiError> {
        self.mutate(|h| {
            let out = h.delete_document(d)?;
            Ok((out, Some(WalRecord::DeleteDocument { doc: d })))
        })
    }

    /// Incremental link deletion (brief write lock + snapshot refresh).
    pub fn delete_link(&self, from: ElemId, to: ElemId) -> Result<DeletionOutcome, HopiError> {
        self.mutate(|h| {
            let out = h.delete_link(from, to)?;
            Ok((out, Some(WalRecord::DeleteLink { from, to })))
        })
    }

    /// Replaces a document with a new version (drop + reinsert, paper
    /// §6.3; brief write lock + snapshot refresh). Returns the new
    /// document id.
    pub fn modify_document(
        &self,
        d: DocId,
        new_doc: XmlDocument,
        links: &DocumentLinks,
    ) -> Result<DocId, HopiError> {
        // Clone outside the write lock, as in `insert_document`.
        let rec = self
            .durability
            .is_some()
            .then(|| WalRecord::ModifyDocument {
                doc: d,
                new_doc: new_doc.clone(),
                outgoing: links.outgoing.clone(),
                incoming: links.incoming.clone(),
            });
        self.mutate(|h| {
            let id = h.modify_document(d, new_doc, links)?;
            Ok((id, rec))
        })
    }

    /// Rebuilds in a background thread from a snapshot, then swaps the
    /// fresh engine in atomically. Queries are served from the old
    /// snapshot for the entire build; updates arriving mid-build are
    /// replayed onto the fresh engine before the swap. Returns a handle
    /// yielding the fresh build's report.
    pub fn rebuild_in_background(&self) -> std::thread::JoinHandle<BuildReport> {
        let this = self.clone();
        std::thread::spawn(move || this.rebuild_blocking())
    }

    /// The rebuild body (also callable synchronously): snapshot → build
    /// outside the lock → catch up on concurrent updates → swap + publish.
    pub fn rebuild_blocking(&self) -> BuildReport {
        // 1. Snapshot under the read lock.
        let (snapshot, builder) = {
            let guard = self.engine.read();
            let builder = Hopi::builder()
                .config(guard.config().clone())
                .query_options(*guard.query_options())
                .distance_aware(guard.stats().distance_entries.is_some());
            (guard.collection().clone(), builder)
        };
        let snapshot_docs: Vec<DocId> = snapshot.doc_ids().collect();
        let snapshot_links: FxHashSet<(ElemId, ElemId)> =
            snapshot.links().iter().map(|l| (l.from, l.to)).collect();

        // 2. Build outside any lock. A failed build of the snapshot (it
        // was valid when captured) falls back to rebuilding from the
        // live collection under the lock rather than panicking the
        // rebuild thread.
        let mut fresh = match builder.clone().build(snapshot.clone()) {
            Ok(fresh) => fresh,
            Err(_) => {
                let mut guard = self.engine.write();
                return self.swap_fallback_rebuild(&mut guard, builder);
            }
        };

        // 3. Swap under the write lock, replaying the delta between the
        // snapshot and the live collection onto the fresh engine. The
        // plan-strategy counters survive the swap: a rebuild changes the
        // cover, not the observability history.
        let mut guard = self.engine.write();
        let delta = collection_delta(&snapshot_docs, &snapshot_links, guard.collection());
        if !delta_replays_exactly(&snapshot, guard.collection(), &delta) {
            // Rare: the window contained updates whose replay would not
            // reproduce the live id assignment (a document created *and*
            // deleted mid-build, or a link between two mid-build
            // documents). Rebuild from the live collection — still a
            // consistent swap, just under the lock.
            return self.swap_fallback_rebuild(&mut guard, builder);
        }
        fresh.plan_counters = guard.plan_counters.clone();
        let report = fresh.report().clone();
        for update in delta {
            // The replay target `fresh` is the in-memory `Hopi` being
            // built — it has no durability layer and no locks. The
            // name-approximate call graph aliases these methods with the
            // `OnlineHopi` wrappers of the same name, so each arm is
            // individually sanctioned.
            let replayed = match update {
                // lint: allow(blocking-under-lock, lock-order): replay onto the detached in-memory engine, not the online wrapper
                CollectionUpdate::InsertLink(f, t) => fresh.insert_link(f, t).map(|_| ()),
                // lint: allow(blocking-under-lock): replay onto the detached in-memory engine, not the online wrapper
                CollectionUpdate::DeleteLink(f, t) => fresh.delete_link(f, t).map(|_| ()),
                CollectionUpdate::InsertDocument(doc, links) => {
                    // lint: allow(blocking-under-lock): replay onto the detached in-memory engine, not the online wrapper
                    fresh.insert_document(doc, &links).map(|_| ())
                }
                // lint: allow(blocking-under-lock): replay onto the detached in-memory engine, not the online wrapper
                CollectionUpdate::DeleteDocument(d) => fresh.delete_document(d).map(|_| ()),
                CollectionUpdate::ModifyDocument(d, doc, links) => {
                    // lint: allow(blocking-under-lock): replay onto the detached in-memory engine, not the online wrapper
                    fresh.modify_document(d, doc, &links).map(|_| ())
                }
            };
            if replayed.is_err() {
                // A surprising delta must never panic the rebuild thread:
                // fall back to rebuilding from the live collection under
                // the lock (always consistent, just slower).
                return self.swap_fallback_rebuild(&mut guard, builder);
            }
        }
        *guard = fresh;
        self.publish(&guard);
        report
    }

    /// The in-lock fallback rebuild: build from the live collection,
    /// carry the plan counters over, swap, publish. If even the live
    /// collection fails to build, the engine keeps serving its current
    /// (consistent) index and the stale report says so — a rebuild is an
    /// optimization, never worth a panic.
    fn swap_fallback_rebuild(
        &self,
        guard: &mut parking_lot::RwLockWriteGuard<'_, Hopi>,
        builder: HopiBuilder,
    ) -> BuildReport {
        let Ok(mut fallback) = builder.build(guard.collection().clone()) else {
            return guard.report().clone();
        };
        fallback.plan_counters = guard.plan_counters.clone();
        let report = fallback.report().clone();
        **guard = fallback;
        self.publish(guard);
        report
    }

    /// Runs one mutation under the write lock; on success publishes a
    /// fresh snapshot before releasing it (so no query epoch can observe
    /// the mutation without its index updates).
    ///
    /// The durable write path threads through here: the closure returns
    /// the WAL record describing the mutation it applied, the record is
    /// appended **while the write lock is held** (log order = apply
    /// order), and after the lock is released the record is
    /// group-committed — this call does not return success until the
    /// mutation is durable, but the fsync it waits on is shared with
    /// every mutation queued behind it.
    fn mutate<R>(
        &self,
        f: impl FnOnce(&mut Hopi) -> Result<(R, Option<WalRecord>), HopiError>,
    ) -> Result<R, HopiError> {
        let mut guard = self.engine.write();
        if let Some(d) = &self.durability {
            d.check_healthy()?;
        }
        let (out, rec) = f(&mut guard)?;
        let committed_seq = match (&self.durability, rec) {
            (Some(d), Some(rec)) => {
                // lint: allow(blocking-under-lock): sanctioned — the WAL append must happen under the write lock so log order equals apply order; the fsync waits outside it
                let seq = match d.append(&rec) {
                    Ok(seq) => seq,
                    Err(e) => {
                        // The mutation is applied in memory but not
                        // logged; publish (readers may as well see it) and
                        // report the durability failure. `append` poisoned
                        // the layer, so no later ack can outrun this hole.
                        self.publish(&guard);
                        return Err(e);
                    }
                };
                Some(seq)
            }
            _ => None,
        };
        self.publish(&guard);
        drop(guard);
        if let (Some(d), Some(seq)) = (&self.durability, committed_seq) {
            d.commit(seq)?;
        }
        Ok(out)
    }

    /// Publishes the engine's current state as the serving epoch. Caller
    /// holds the engine write lock, so the capture is consistent and epoch
    /// numbers are published in order; lock order is always engine →
    /// serving.
    fn publish(&self, engine: &Hopi) {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let snapshot = engine.snapshot_at_epoch(epoch);
        *self.serving.write() = snapshot;
    }
}
