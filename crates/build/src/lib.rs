//! # hopi-build — the public face of the HOPI index
//!
//! This crate bundles the whole HOPI system (Schenkel, Theobald, Weikum;
//! ICDE 2005) behind one engine type:
//!
//! * [`Hopi`] — an XML collection plus its 2-hop connection index, built
//!   with [`Hopi::builder`] and driven through inherent methods for the
//!   entire lifecycle: `connected`/`distance`, `query`/`query_ranked`,
//!   `insert_document`/`delete_document`/`insert_link`/`delete_link`,
//!   `rebuild`, `save`/`open`, `stats`.
//! * [`HopiSnapshot`] — an immutable serving view ([`Hopi::snapshot`]):
//!   the cover frozen into flat CSR arrays plus tag index and collection,
//!   shared via `Arc` with no lock held during query evaluation.
//! * [`OnlineHopi`] — the same surface lifted into 24×7 serving (paper
//!   §1.1): queries run lock-free against the current snapshot, brief
//!   write-locked incremental updates refresh it, and background rebuilds
//!   swap in atomically.
//! * [`HopiError`] — the single error type crossing this boundary,
//!   replacing the expert layer's mix of panics, `Option`s and per-crate
//!   errors.
//! * **Durable mode** — [`OnlineHopi::open_durable`] adds a write-ahead
//!   log with group commit and atomic checkpoints: acknowledged mutations
//!   survive a crash, and [`Hopi::recover`] replays the WAL tail past the
//!   last checkpoint (tolerating a torn final record).
//!
//! ## Quickstart
//!
//! ```
//! use hopi_build::Hopi;
//!
//! let hopi = Hopi::builder().parse([
//!     ("paper-a", r#"<article><cite xlink:href="paper-b"/></article>"#),
//!     ("paper-b", r#"<article><sec id="s1"/></article>"#),
//! ])?;
//!
//! let a_root = hopi.resolve("paper-a", "")?;
//! let b_sec = hopi.resolve("paper-b", "s1")?;
//! assert!(hopi.connected(a_root, b_sec));
//! assert_eq!(hopi.query("//article//sec")?, vec![b_sec]);
//! # Ok::<(), hopi_build::HopiError>(())
//! ```
//!
//! ## The expert layer
//!
//! The low-level machinery stays available for code that needs to hold the
//! pieces separately: the build pipeline ([`build_index`], [`BuildConfig`],
//! [`JoinAlgorithm`], [`PartitionerChoice`]) from `hopi_partition`, the
//! index handle ([`HopiIndex`]) and the link-integration primitive
//! ([`old_join`]) from `hopi_core` — re-exported here under their
//! historical `hopi_build` paths. The facade is a thin, always-consistent
//! composition of exactly these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod error;
mod facade;
mod online;
mod snapshot;

pub use durable::{
    is_durable_dir, CheckpointStats, DurableConfig, WalStats, CHECKPOINT_FILE, LOCK_FILE, WAL_FILE,
};
pub use error::HopiError;
pub use facade::{Hopi, HopiBuilder, QueryOptions, Stats};
pub use online::OnlineHopi;
pub use snapshot::{HopiSnapshot, SnapshotStats};

// The WAL sync policy is part of the durable-open surface.
pub use hopi_store::SyncPolicy;

// Query-plan observability: the per-`//`-step strategy, counters, and
// EXPLAIN report types surfaced through [`Hopi::query_explained`],
// [`SnapshotStats::plan`], and the server's `/stats` + `/metrics`.
pub use hopi_query::{PlanCounters, PlanCounts, QueryPlanReport, Strategy};

// ---------------------------------------------------------------------
// The expert layer, re-exported under its historical paths.
// ---------------------------------------------------------------------

pub use hopi_core::old_join;
pub use hopi_core::HopiIndex;
pub use hopi_partition::pipeline::{
    build_index, BuildConfig, BuildReport, JoinAlgorithm, PartitionerChoice, PsgJoinReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_maintenance::DocumentLinks;
    use hopi_xml::XmlDocument;

    fn engine() -> Hopi {
        Hopi::builder()
            .parse([
                ("a", r#"<r><s/><cite xlink:href="b"/></r>"#),
                ("b", r#"<r><sec id="deep"><p/></sec></r>"#),
            ])
            .expect("valid fixture")
    }

    #[test]
    fn facade_composes_expert_layer() {
        let hopi = engine();
        // The facade's answers match a hand-rolled expert-layer pipeline.
        let (index, _) = build_index(hopi.collection(), &BuildConfig::default());
        let n = hopi.collection().elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(hopi.connected(u, v), index.connected(u, v));
            }
        }
    }

    #[test]
    fn lifecycle_round_trip() {
        let mut hopi = engine();
        let a = hopi.resolve("a", "").unwrap();
        let deep = hopi.resolve("b", "deep").unwrap();
        assert!(hopi.connected(a, deep));

        let mut doc = XmlDocument::new("c", "r");
        let child = doc.add_element(0, "x");
        let c = hopi
            .insert_document(
                doc,
                &DocumentLinks {
                    outgoing: vec![(child, a)],
                    incoming: vec![],
                },
            )
            .unwrap();
        let c_root = hopi.collection().global_id(c, 0);
        assert!(hopi.connected(c_root, deep), "new doc reaches b via a");
        hopi.delete_document(c).unwrap();
        assert!(hopi.query("//r//x").unwrap().is_empty());
    }

    #[test]
    fn errors_are_typed() {
        let mut hopi = engine();
        assert!(matches!(hopi.query("not-a-path"), Err(HopiError::Path(_))));
        assert!(matches!(
            hopi.delete_document(99),
            Err(HopiError::UnknownDocument(99))
        ));
        assert!(matches!(
            hopi.resolve("nope", ""),
            Err(HopiError::UnresolvedRef { .. })
        ));
        assert!(matches!(
            hopi.distance(0, 1),
            Err(HopiError::DistanceDisabled)
        ));
    }
}
