//! # hopi-build — the public face of the HOPI index
//!
//! This crate bundles the whole HOPI system (Schenkel, Theobald, Weikum;
//! ICDE 2005) behind one engine type:
//!
//! * [`Hopi`] — an XML collection plus its 2-hop connection index, built
//!   with [`Hopi::builder`] and driven through inherent methods for the
//!   entire lifecycle: `connected`/`distance`, `query`/`query_ranked`,
//!   `insert_document`/`delete_document`/`insert_link`/`delete_link`,
//!   `rebuild`, `save`/`open`, `stats`.
//! * [`HopiSnapshot`] — an immutable serving view ([`Hopi::snapshot`]):
//!   the cover frozen into flat CSR arrays plus tag index and collection,
//!   shared via `Arc` with no lock held during query evaluation.
//! * [`OnlineHopi`] — the same surface lifted into 24×7 serving (paper
//!   §1.1): queries run lock-free against the current snapshot, brief
//!   write-locked incremental updates refresh it, and background rebuilds
//!   swap in atomically.
//! * [`HopiError`] — the single error type crossing this boundary,
//!   replacing the expert layer's mix of panics, `Option`s and per-crate
//!   errors.
//! * **Durable mode** — [`OnlineHopi::open_durable`] adds a write-ahead
//!   log with group commit and atomic checkpoints: acknowledged mutations
//!   survive a crash, and [`Hopi::recover`] replays the WAL tail past the
//!   last checkpoint (tolerating a torn final record).
//!
//! ## Quickstart
//!
//! ```
//! use hopi_build::Hopi;
//!
//! let hopi = Hopi::builder().parse([
//!     ("paper-a", r#"<article><cite xlink:href="paper-b"/></article>"#),
//!     ("paper-b", r#"<article><sec id="s1"/></article>"#),
//! ])?;
//!
//! let a_root = hopi.resolve("paper-a", "")?;
//! let b_sec = hopi.resolve("paper-b", "s1")?;
//! assert!(hopi.connected(a_root, b_sec));
//! assert_eq!(hopi.query("//article//sec")?, vec![b_sec]);
//! # Ok::<(), hopi_build::HopiError>(())
//! ```
//!
//! ## The expert layer
//!
//! The low-level machinery stays available for code that needs to hold the
//! pieces separately: the build pipeline ([`build_index`], [`BuildConfig`],
//! [`JoinAlgorithm`], [`PartitionerChoice`]) from `hopi_partition`, the
//! index handle ([`HopiIndex`]) and the link-integration primitive
//! ([`old_join`]) from `hopi_core` — re-exported here under their
//! historical `hopi_build` paths. The facade is a thin, always-consistent
//! composition of exactly these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod error;
mod facade;
mod online;
mod snapshot;

pub use durable::{
    is_durable_dir, CheckpointStats, DurableConfig, WalHistograms, WalStats, CHECKPOINT_FILE,
    LOCK_FILE, WAL_FILE,
};
pub use error::HopiError;
pub use facade::{Hopi, HopiBuilder, QueryOptions, Stats};
pub use online::OnlineHopi;
pub use snapshot::{BuildPhaseTimings, HopiSnapshot, SnapshotStats};

// The WAL sync policy, on-disk format version, and the pluggable I/O
// backend (StdVfs in production, FaultVfs under fault injection) are
// part of the durable-open surface.
pub use hopi_store::{
    FaultKind, FaultOp, FaultOpKind, FaultVfs, StdVfs, SyncPolicy, Vfs, STORE_FORMAT_VERSION,
};

// Query-plan observability: the per-`//`-step strategy, counters, and
// EXPLAIN report types surfaced through [`Hopi::query_explained`],
// [`SnapshotStats::plan`], and the server's `/stats` + `/metrics`.
pub use hopi_query::{PlanCounters, PlanCounts, QueryPlanReport, Strategy};

// ---------------------------------------------------------------------
// The expert layer, re-exported under its historical paths.
// ---------------------------------------------------------------------

pub use hopi_core::old_join;
pub use hopi_core::HopiIndex;
pub use hopi_partition::pipeline::{
    build_index, BuildConfig, BuildReport, JoinAlgorithm, PartitionerChoice, PsgJoinReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use hopi_maintenance::DocumentLinks;
    use hopi_xml::XmlDocument;

    fn engine() -> Hopi {
        Hopi::builder()
            .parse([
                ("a", r#"<r><s/><cite xlink:href="b"/></r>"#),
                ("b", r#"<r><sec id="deep"><p/></sec></r>"#),
            ])
            .expect("valid fixture")
    }

    #[test]
    fn facade_composes_expert_layer() {
        let hopi = engine();
        // The facade's answers match a hand-rolled expert-layer pipeline.
        let (index, _) = build_index(hopi.collection(), &BuildConfig::default());
        let n = hopi.collection().elem_id_bound() as u32;
        for u in 0..n {
            for v in 0..n {
                assert_eq!(hopi.connected(u, v), index.connected(u, v));
            }
        }
    }

    #[test]
    fn lifecycle_round_trip() {
        let mut hopi = engine();
        let a = hopi.resolve("a", "").unwrap();
        let deep = hopi.resolve("b", "deep").unwrap();
        assert!(hopi.connected(a, deep));

        let mut doc = XmlDocument::new("c", "r");
        let child = doc.add_element(0, "x");
        let c = hopi
            .insert_document(
                doc,
                &DocumentLinks {
                    outgoing: vec![(child, a)],
                    incoming: vec![],
                },
            )
            .unwrap();
        let c_root = hopi.collection().global_id(c, 0);
        assert!(hopi.connected(c_root, deep), "new doc reaches b via a");
        hopi.delete_document(c).unwrap();
        assert!(hopi.query("//r//x").unwrap().is_empty());
    }

    #[test]
    fn content_queries_run_end_to_end() {
        let mut hopi = Hopi::builder()
            .distance_aware(true)
            .parse([
                (
                    "a",
                    r#"<r><s>xml indexing with hopi</s><cite xlink:href="b"/></r>"#,
                ),
                ("b", r#"<r><sec id="deep"><p>plain prose</p></sec></r>"#),
            ])
            .unwrap();

        // Boolean path with a content predicate, live engine.
        let s = hopi.query("//r//s[contains(., \"indexing\")]").unwrap();
        assert_eq!(s.len(), 1);
        assert!(hopi
            .query("//s[contains(., \"absent\")]")
            .unwrap()
            .is_empty());

        // Snapshot answers identically from the frozen term index.
        let snap = hopi.snapshot();
        assert_eq!(snap.query("//r//s[contains(., \"indexing\")]").unwrap(), s);
        let snap_stats = snap.stats();
        assert!(snap_stats.text_vocabulary >= 5);
        assert!(snap_stats.text_postings_bytes > 0);
        assert_eq!(snap_stats.text_indexed_elements, 2);

        // Ranked fusion: the matching element carries a text score.
        let ranked = hopi.query_ranked("//r//s[about(., \"xml hopi\")]").unwrap();
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].text_score > 0.0);
        assert!(ranked[0].score() > 1.0 / (1.0 + ranked[0].distance as f64));

        // Engine stats expose the term index.
        let stats = hopi.stats();
        assert_eq!(stats.text.indexed_elements, 2);
        assert!(stats.text.vocabulary >= 5);

        // Maintenance keeps the term index in lockstep.
        let mut doc = XmlDocument::new("c", "r");
        let x = doc.add_element(0, "x");
        doc.set_text(x, "fresh indexing material");
        let c = hopi
            .insert_document(doc, &DocumentLinks::default())
            .unwrap();
        assert_eq!(
            hopi.query("//x[contains(., \"indexing\")]").unwrap().len(),
            1
        );
        hopi.delete_document(c).unwrap();
        assert!(hopi
            .query("//x[contains(., \"indexing\")]")
            .unwrap()
            .is_empty());
        assert_eq!(hopi.stats().text.indexed_elements, 2);
    }

    #[test]
    fn errors_are_typed() {
        let mut hopi = engine();
        assert!(matches!(hopi.query("not-a-path"), Err(HopiError::Path(_))));
        assert!(matches!(
            hopi.delete_document(99),
            Err(HopiError::UnknownDocument(99))
        ));
        assert!(matches!(
            hopi.resolve("nope", ""),
            Err(HopiError::UnresolvedRef { .. })
        ));
        assert!(matches!(
            hopi.distance(0, 1),
            Err(HopiError::DistanceDisabled)
        ));
    }
}
